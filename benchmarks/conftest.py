"""Shared helpers for the per-figure benchmark harness.

Every file here regenerates one table or figure of the paper (quick-mode
problem sizes), asserts its qualitative claims, and prints the formatted
series so ``pytest benchmarks/ --benchmark-only -s`` reproduces the
evaluation section end to end.  Experiments run once per benchmark round
(``pedantic`` with one round) because a single run already takes seconds.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Benchmark a callable exactly once and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )

    return runner
