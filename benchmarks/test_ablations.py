"""Ablation benches over the substitutable model components (§3.3).

The paper's simulation architecture exists so components can be swapped
"to trade off issues of efficiency, accuracy, and detail"; these benches
sweep each choice and assert the directional expectations.
"""

from repro.experiments import ablations


def test_barrier_algorithms(run_once):
    res = run_once(ablations.barrier_algorithms, quick=True)
    print()
    print(res.format())
    top = max(res.series["linear"])
    assert res.series["hardware"][top] <= res.series["linear"][top]
    assert res.series["hardware"][top] <= res.series["log"][top]


def test_topologies(run_once):
    res = run_once(ablations.topologies, quick=True)
    print()
    print(res.format())
    top = max(res.series["bus"])
    # Bisection-1 bus degrades hardest under contention.
    assert res.series["bus"][top] >= res.series["crossbar"][top]
    assert res.series["bus"][top] >= res.series["fattree"][top]


def test_contention(run_once):
    res = run_once(ablations.contention, quick=True)
    print()
    print(res.format())
    top = max(res.series["off"])
    # Stronger contention -> slower; off is the floor.
    assert (
        res.series["off"][top]
        <= res.series["factor=0.5"][top]
        <= res.series["factor=1.0"][top]
        <= res.series["factor=2.0"][top]
    )


def test_poll_interval(run_once):
    res = run_once(ablations.poll_interval, quick=True)
    print()
    print(res.format())
    # All intervals complete; the sweep exposes the trade-off the paper
    # mentions (optimal interval is system- and problem-specific).
    assert len(res.series) == 4


def test_placement(run_once):
    res = run_once(ablations.placement, quick=True)
    print()
    print(res.format())
    for p in res.series["natural placement"]:
        assert (
            res.series["shuffled placement"][p]
            >= res.series["natural placement"][p]
        )


def test_noise_sensitivity(run_once):
    res = run_once(ablations.noise_sensitivity, quick=True)
    print()
    print(res.format())
    # Predictions must not amplify measurement noise: the spread at 10%
    # input noise stays under 2x the noise level.
    for note in res.notes:
        if note.startswith("noise=10%"):
            spread = float(note.split("spread ")[1].split("%")[0]) / 100.0
            assert spread < 0.20


def test_overhead_compensation(run_once):
    res = run_once(ablations.overhead_compensation, quick=True)
    print()
    print(res.format())
    clean = res.series["ideal time"][1]
    raw = res.series["ideal time"][2]
    comp = res.series["ideal time"][3]
    assert raw > clean  # instrumentation inflates the uncompensated ideal
    assert abs(comp - clean) < abs(raw - clean) * 0.1  # compensation works
