"""DES engine and pipeline throughput micro-benchmarks.

Not a paper figure: keeps an eye on the simulator's own performance
("the trade-off in accuracy can be found in the utility and *speed* of
extrapolation"), so regressions in the substrate show up here.
"""

from repro.core import presets
from repro.core.pipeline import extrapolate, measure
from repro.des import Environment, Store
from repro.experiments.paramsets import suite_configs
from repro.bench import BENCHMARKS


def test_event_loop_throughput(benchmark):
    def run():
        env = Environment()

        def ping(env, store_in, store_out, rounds):
            for _ in range(rounds):
                yield store_in.get()
                yield env.timeout(1.0)
                yield store_out.put(None)

        a, b = Store(env), Store(env)
        env.process(ping(env, a, b, 500))
        env.process(ping(env, b, a, 500))
        a.put(None)
        env.run(None)
        return env.processed_event_count

    events = benchmark(run)
    assert events > 1000


def test_timeout_only_fast_path_throughput(benchmark):
    """The run_batched fast path on the Timeout-only workload."""

    def run():
        env = Environment()

        def sleeper(env):
            for _ in range(2000):
                yield env.timeout(1.0)

        env.process(sleeper(env))
        env.run_batched()
        return env.processed_event_count

    events = benchmark(run)
    assert events > 2000


def test_profiled_run_collects_counters(run_once):
    """Profiling overhead stays bounded and the counters are complete."""
    from repro.perf.bench import simulator_replay

    def run():
        from repro.core import presets
        from repro.core.pipeline import measure
        from repro.core.translation import translate
        from repro.pcxx import Collection, make_distribution
        from repro.sim.simulator import Simulator

        def program(rt):
            n = rt.n_threads
            coll = Collection(
                "c", make_distribution(n, n, "block"), element_nbytes=64
            )
            for i in range(n):
                coll.poke(i, i)

            def body(ctx):
                for it in range(6):
                    yield from ctx.compute_us(100.0 * ((ctx.tid + it) % 3 + 1))
                    yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
                    yield from ctx.barrier()

            return body

        tp = translate(measure(program, 8, name="bench"))
        sim = Simulator(tp, presets.distributed_memory(), profile=True)
        sim.run()
        return sim

    sim = run_once(run)
    profile = sim.profile
    assert profile.counters.events_total == sim.env.processed_event_count
    assert profile.counters.events_total == simulator_replay(8)
    print(f"\n  {profile.format()}")


def test_full_pipeline_grid_16(run_once):
    cfg = suite_configs(quick=True)["grid"]
    maker = BENCHMARKS["grid"].make_program(cfg)

    def pipeline():
        trace = measure(maker(16), 16, name="grid", size_mode="actual")
        return extrapolate(trace, presets.distributed_memory())

    outcome = run_once(pipeline)
    assert outcome.predicted_time > 0
    print(
        f"\n  grid@16: {len(outcome.trace)} events -> "
        f"{outcome.result.network.messages} messages simulated"
    )
