"""DES engine and pipeline throughput micro-benchmarks.

Not a paper figure: keeps an eye on the simulator's own performance
("the trade-off in accuracy can be found in the utility and *speed* of
extrapolation"), so regressions in the substrate show up here.
"""

from repro.core import presets
from repro.core.pipeline import extrapolate, measure
from repro.des import Environment, Store
from repro.experiments.paramsets import suite_configs
from repro.bench import BENCHMARKS


def test_event_loop_throughput(benchmark):
    def run():
        env = Environment()

        def ping(env, store_in, store_out, rounds):
            for _ in range(rounds):
                yield store_in.get()
                yield env.timeout(1.0)
                yield store_out.put(None)

        a, b = Store(env), Store(env)
        env.process(ping(env, a, b, 500))
        env.process(ping(env, b, a, 500))
        a.put(None)
        env.run(None)
        return env.processed_event_count

    events = benchmark(run)
    assert events > 1000


def test_full_pipeline_grid_16(run_once):
    cfg = suite_configs(quick=True)["grid"]
    maker = BENCHMARKS["grid"].make_program(cfg)

    def pipeline():
        trace = measure(maker(16), 16, name="grid", size_mode="actual")
        return extrapolate(trace, presets.distributed_memory())

    outcome = run_once(pipeline)
    assert outcome.predicted_time > 0
    print(
        f"\n  grid@16: {len(outcome.trace)} events -> "
        f"{outcome.result.network.messages} messages simulated"
    )
