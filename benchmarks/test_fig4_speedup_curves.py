"""Figure 4 — speedup curves for all benchmarks.

Paper claims checked here:

* Embar delivers (near-)linear speedup;
* Cyclic and Poisson show reasonable speedup improvement;
* the other codes are more severely affected by communication or
  synchronisation costs;
* Grid and Mgrid show no improvement from 4 to 8 processors (the
  (BLOCK, BLOCK) idle-processor artifact).
"""

from repro.experiments import fig4


def test_fig4(run_once):
    res = run_once(fig4.run, quick=True)
    print()
    print(res.format())

    s = res.series
    top = 32
    # Embar near-linear: at least half the ideal slope at 32.
    assert s["embar"][top] > 16
    # Cyclic and Poisson: "reasonable speedup improvement".
    assert s["cyclic"][top] > 4
    assert s["poisson"][16] > 4
    # Severely affected codes stay well below the reasonable group.
    assert s["grid"][top] < s["cyclic"][top]
    assert s["mgrid"][top] < s["cyclic"][top]
    assert s["sparse"][top] < s["poisson"][16]
    # The 4->8 plateau for the (BLOCK, BLOCK) codes.
    for name in ("grid", "mgrid"):
        ratio = s[name][8] / s[name][4]
        assert ratio < 1.15, f"{name} should not improve 4->8 (got x{ratio:.2f})"
    # Speedup at 1 processor is 1 by construction.
    assert all(series[1] == 1.0 for series in s.values())
