"""Figure 5 — comparison of different Grid extrapolations.

The §4.1 performance-debugging narrative, asserted:

* the compiler-size baseline is the slowest — the 231456-byte recorded
  transfers swamp everything;
* raising bandwidth to 200 MB/s helps but does not reach the ideal;
* using the actual transfer sizes (2/128 B) recovers most of the gap —
  the real problem was the measurement abstraction, not the network;
* reducing start-up on top of actual sizes improves it further;
* the ideal environment bounds everything from below.
"""

from repro.experiments import fig5


def test_fig5(run_once):
    res = run_once(fig5.run, quick=True)
    print()
    print(res.format())

    top = 32
    base = res.series["base (compiler sizes)"][top]
    high_bw = res.series["200 MB/s bandwidth"][top]
    ideal = res.series["ideal (no comm/sync)"][top]
    actual = res.series["actual sizes (2/128 B)"][top]
    lowstart = res.series["actual + 10us startup"][top]

    assert ideal < lowstart < actual < base
    assert high_bw < base
    # Actual sizes beat even the 40x bandwidth increase: the diagnosis
    # was transfer size, not bandwidth.
    assert actual < high_bw
    # The improvement is dramatic (paper: whole-element transfers made
    # speedup level off at 4 processors).
    assert base / actual > 2.0
    # Trace statistics drove the diagnosis.
    assert any("min=2 B / max=128 B" in n for n in res.notes)
