"""Figure 6 — execution time and speedup with different MipsRatio.

Paper claims checked:

* (i) Embar execution time tracks MipsRatio (exactly 4x between 2.0 and
  0.5 where compute dominates);
* (ii) Cyclic speedup shows little effect of varying MipsRatio;
* (iv) Mgrid speedup responds strongly (its comp/comm ratio shifts).
"""

from repro.experiments import fig6


def spread(series_by_ratio, p):
    vals = [s[p] for s in series_by_ratio if p in s]
    return max(vals) / min(vals) - 1.0


def test_fig6(run_once):
    res = run_once(fig6.run, quick=True)
    print()
    print(res.format())

    # Embar: time scales with MipsRatio at P=1 (no communication).
    ratio = res.series["embar@x2.0"][1] / res.series["embar@x0.5"][1]
    assert abs(ratio - 4.0) < 0.05

    # Slower processors always mean longer embar times at every P.
    for p in res.series["embar@x1.0"]:
        assert (
            res.series["embar@x2.0"][p]
            > res.series["embar@x1.0"][p]
            > res.series["embar@x0.5"][p]
        )

    # Mgrid's speedup is far more MipsRatio-sensitive than Cyclic's.
    cyclic = [res.series[f"cyclic@x{r}"] for r in (2.0, 1.0, 0.5)]
    mgrid = [res.series[f"mgrid@x{r}"] for r in (2.0, 1.0, 0.5)]
    assert spread(mgrid, 32) > 2 * spread(cyclic, 32)

    # Slower processors improve *speedup* for the comm-bound code
    # (communication stays fixed while compute grows).
    assert res.series["mgrid@x2.0"][32] > res.series["mgrid@x0.5"][32]
