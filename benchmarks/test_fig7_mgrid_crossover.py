"""Figure 7 — effect of MipsRatio and CommStartupTime on Mgrid.

Paper claim: the processor count delivering minimum execution time
shifts to fewer processors when the target CPU is faster (MipsRatio
0.25 vs 1.0) — communication overhead starts dominating earlier.
"""

from repro.experiments import fig7


def test_fig7(run_once):
    res = run_once(fig7.run, quick=True)
    print()
    print(res.format())

    def best(ratio, startup):
        series = res.series[f"mips={ratio} startup={startup:g}us"]
        return min(series, key=series.get)

    for startup in (5.0, 100.0, 200.0):
        # The faster processor's optimum is at most the slower one's.
        assert best(0.25, startup) <= best(1.0, startup)

    # Higher start-up cost never helps.
    for ratio in (1.0, 0.25):
        for p in res.series[f"mips={ratio} startup=5us"]:
            assert (
                res.series[f"mips={ratio} startup=5us"][p]
                <= res.series[f"mips={ratio} startup=100us"][p]
                <= res.series[f"mips={ratio} startup=200us"][p]
            )

    # Faster CPU gives faster absolute times everywhere.
    for startup in (5.0, 100.0, 200.0):
        for p, t in res.series[f"mips=0.25 startup={startup:g}us"].items():
            assert t < res.series[f"mips=1.0 startup={startup:g}us"][p]
