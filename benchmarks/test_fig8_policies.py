"""Figure 8 — effects of the remote data request service policy.

Paper claims checked (CommStartupTime = 100 us):

* the no-interrupt curve performs the worst for both codes;
* for Grid, interrupt is the best policy;
* program execution characteristics determine how much the policy
  matters (the two codes respond differently).
"""

from repro.experiments import fig8


def test_fig8(run_once):
    res = run_once(fig8.run, quick=True)
    print()
    print(res.format())

    for bench in ("cyclic", "grid"):
        top = max(res.series[f"{bench}/interrupt"])
        times = {
            pol: res.series[f"{bench}/{pol}"][top]
            for pol in ("no-interrupt", "interrupt", "poll@100us", "poll@1000us")
        }
        worst = max(times, key=times.get)
        assert worst == "no-interrupt", f"{bench}: worst policy is {worst}"
        # Interrupt is (near-)best for Grid, as the paper observes.
        if bench == "grid":
            assert times["interrupt"] == min(times.values())
            # "only by a maximum of ~tens of percent": same order.
            assert times["no-interrupt"] < 2.0 * times["interrupt"]

    # Policies cannot matter at P=1 beyond poll overhead.
    one = {
        pol: res.series[f"cyclic/{pol}"][1]
        for pol in ("no-interrupt", "interrupt")
    }
    assert one["no-interrupt"] == one["interrupt"]
