"""Figure 9 / Table 3 — Matmul validation against the (simulated) CM-5.

Paper claims checked:

* the extrapolation, fed only 1-processor traces plus Table 3's CM-5
  parameters, matches the general shape of the measured curves;
* the relative ranking of the nine distributions is reasonably
  preserved (paper: "reasonably match the relative ranking");
* the predicted best choice is the measured best, or its measured time
  is within a few percent of the optimum (paper: within 3% at P=32).
"""

from repro.experiments import fig9, tables


def test_table3_preset(run_once):
    assert tables.table3_matches_paper()
    print()
    print(tables.table3())


def test_fig9(run_once):
    res = run_once(fig9.run, quick=True)
    print()
    print(res.table())
    for note in res.notes:
        print("  ", note)

    predicted, measured = res.predicted, res.measured
    for p, pred in predicted.items():
        meas = measured[p]
        agreement = fig9.ranking_agreement(pred, meas)
        assert agreement >= 0.6, f"P={p}: ranking agreement {agreement:.2f}"
        best_pred = min(pred, key=pred.get)
        best_meas = min(meas, key=meas.get)
        gap = meas[best_pred] / meas[best_meas] - 1.0
        assert gap <= 0.10, (
            f"P={p}: predicted best {best_pred} is {gap:.1%} from optimum"
        )
        # Shape: predicted and measured within an order of magnitude for
        # every distribution (a high-level simulation, not a cycle count).
        for dist in pred:
            ratio = pred[dist] / meas[dist]
            assert 0.2 < ratio < 5.0, f"P={p} {dist}: pred/meas {ratio:.2f}"
