"""The §6 multithreading extension bench: n threads on m processors."""

from repro.experiments import multithread_study


def test_multithread_study(run_once):
    res = run_once(multithread_study.run, quick=True)
    print()
    print(res.format())
    blk = res.series["block"]
    # The single-processor run serialises all compute: slowest by far.
    assert blk[1] == max(blk.values())
    # m=1 identical across schemes (no communication at all).
    assert blk[1] == res.series["cyclic"][1]
