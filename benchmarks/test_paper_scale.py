"""Paper-scale smoke run: Grid at the §4.1 problem size.

One full pipeline pass over `GridConfig.paper_like()` at 32 threads —
170k trace events, ~300k simulated messages — checking the trace
statistic the paper's diagnosis hinged on (around 650 barriers) and that
the pipeline holds up at realistic scale, not just quick-mode sizes.
"""

from repro.bench.grid import GridConfig, make_program
from repro.core import presets
from repro.core.pipeline import extrapolate, measure


def test_paper_scale_grid(run_once):
    cfg = GridConfig.paper_like()
    maker = make_program(cfg)

    def pipeline():
        trace = measure(maker(32), 32, name="grid", size_mode="actual")
        return trace, extrapolate(trace, presets.distributed_memory())

    trace, outcome = run_once(pipeline)
    print(
        f"\n  {len(trace)} events, {trace.barrier_count()} barriers, "
        f"{outcome.result.network.messages} messages simulated, "
        f"predicted {outcome.predicted_time / 1e6:.2f}s"
    )
    # The §4.1 statistic: "Grid does not have enough barriers (only 650)".
    assert 550 <= trace.barrier_count() <= 750
    # Actual transfer sizes are the 2/128-byte pair.
    assert outcome.trace_stats.remote_bytes_min == 2
    assert outcome.trace_stats.remote_bytes_max == 128
    # The suite discipline holds at scale too.
    assert trace.race_findings == []
    assert outcome.predicted_time > outcome.ideal_time
