"""Table 1 — parameters for the barrier model.

Checks the live defaults against the paper's example column and
micro-benchmarks one barrier episode under each algorithm.
"""

from repro.core import presets
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.experiments import tables
from repro.sim.simulator import simulate


def barrier_program(rt):
    def body(ctx):
        for _ in range(10):
            yield from ctx.compute_us(50.0)
            yield from ctx.barrier()

    return body


def test_table1_defaults_match_paper(run_once):
    assert run_once(tables.table1_matches_paper)
    print()
    print(tables.table1())


def test_barrier_cost_relations(run_once):
    """Hardware <= log/linear; Table 1's linear barrier is the ceiling."""
    tp = translate(measure(barrier_program, 16, name="barriers"))

    def run_all():
        out = {}
        for alg in ("linear", "log", "hardware"):
            params = presets.distributed_memory().with_(barrier={"algorithm": alg})
            out[alg] = simulate(tp, params).execution_time
        return out

    times = run_once(run_all)
    print()
    for alg, t in times.items():
        print(f"  {alg:8s} {t:10.1f} us for 10 episodes at P=16")
    assert times["hardware"] <= times["log"]
    assert times["hardware"] <= times["linear"]
