"""Table 2 — the pC++ benchmark codes used for the extrapolation studies.

Runs every suite benchmark once (8 threads, 1 virtual processor,
internal verification on) and benchmarks the measurement step.
"""

import pytest

from repro.bench import BENCHMARKS
from repro.core.pipeline import measure
from repro.experiments import tables
from repro.experiments.paramsets import suite_configs
from repro.trace.validate import validate_trace


def test_table2_listing(run_once):
    text = run_once(tables.table2)
    print()
    print(text)
    for name in ("embar", "cyclic", "sparse", "grid", "mgrid", "poisson", "sort"):
        assert name in text


@pytest.mark.parametrize("name", sorted(set(BENCHMARKS) - {"matmul"}))
def test_measure_benchmark(name, run_once):
    info = BENCHMARKS[name]
    cfg = suite_configs(quick=True)[name]
    maker = info.make_program(cfg)
    trace = run_once(measure, maker(8), 8, name=name)
    validate_trace(trace)
    print(f"\n  {name}: {len(trace)} events, {trace.barrier_count()} barriers")
