"""Extended validation bench: predicted vs reference machine for three
benchmarks (the Figure 9 methodology generalised)."""

from repro.experiments import validation


def test_validation_suite(run_once):
    res = run_once(validation.run, quick=True)
    print()
    print(res.format())
    for name in ("grid", "cyclic", "sort"):
        pred = res.series[f"{name} pred"]
        meas = res.series[f"{name} meas"]
        for p in pred:
            ratio = pred[p] / meas[p]
            assert 0.2 < ratio < 5.0, f"{name} P={p}: pred/meas {ratio:.2f}"
