#!/usr/bin/env python
"""Figure 4 at the terminal: speedup curves for the whole suite.

Runs every Table 2 benchmark through the extrapolation pipeline at
1..32 processors under the distributed-memory preset and renders the
speedup curves as an ASCII plot.

Run:  python examples/benchmark_suite_study.py [--paper]
"""

import sys

from repro.experiments import fig4


def main():
    quick = "--paper" not in sys.argv
    if not quick:
        print("paper-scale problem sizes; this takes a while ...")
    res = fig4.run(quick=quick)
    print(res.format())
    print()
    print("reading the curves:")
    print("  - embar rides the diagonal (compute-bound, one reduction);")
    print("  - cyclic and poisson climb but pay for their exchanges;")
    print("  - grid/mgrid flatten after 4 processors: the (BLOCK,BLOCK)")
    print("    distribution uses only isqrt(N)^2 processors, so N=8 runs")
    print("    on 4 workers with 4 idle — a program artifact that the")
    print("    extrapolation captures without touching a real machine.")


if __name__ == "__main__":
    main()
