#!/usr/bin/env python
"""Where do Table 3's numbers come from?  Calibrate, then predict.

The paper took its CM-5 parameters from published microbenchmark
studies.  With the reference machine standing in for the CM-5, this
example reproduces that workflow end to end:

1. probe the target with microbenchmarks (ping-pong at two payload
   sizes, barrier latency, floating-point rating);
2. fit the effective ByteTransferTime / CommStartupTime /
   BarrierModelTime / MipsRatio;
3. extrapolate a real program with the fitted parameter set;
4. compare the prediction against the target machine's "measurement".

Run:  python examples/calibrate_and_predict.py
"""

from repro import measure_and_extrapolate, presets
from repro.bench.grid import GridConfig, make_program
from repro.calibrate import calibrate
from repro.machine import run_on_machine
from repro.util.tables import format_table


def main():
    print("step 1+2: probing the reference machine and fitting parameters")
    params, report = calibrate()
    print(f"  {report.summary()}")
    print()

    cfg = GridConfig(patch_rows=4, patch_cols=4, m=8, iterations=4)
    maker = make_program(cfg)
    rows = []
    for n in (4, 8, 16):
        outcome = measure_and_extrapolate(
            maker(n), n, params, name="grid", size_mode="actual"
        )
        machine = run_on_machine(maker(n), n, name="grid")
        preset = measure_and_extrapolate(
            maker(n), n, presets.cm5(), name="grid", size_mode="actual"
        )
        rows.append(
            [
                n,
                outcome.predicted_time / 1000.0,
                preset.predicted_time / 1000.0,
                machine.execution_time / 1000.0,
                outcome.predicted_time / machine.execution_time,
            ]
        )
    print(
        format_table(
            [
                "P",
                "calibrated pred (ms)",
                "hand preset pred (ms)",
                "machine (ms)",
                "calib/meas",
            ],
            rows,
            title="Grid: calibrated prediction vs the reference machine",
        )
    )
    print()
    print("the fitted parameters came from four probe runs — no manual")
    print("spec sheet was consulted.")


if __name__ == "__main__":
    main()
