#!/usr/bin/env python
"""Inject faults into a run and let the diagnosis engine find them.

Three predictions of the same Embar trace: one clean, one with a
seeded compute straggler, one with seeded barrier delays.  The clean
run must diagnose empty; each faulty run must be flagged with a
correctly-typed finding — fault injection doubles as labeled ground
truth for the detectors (the same check CI's ``diagnose-smoke`` job
runs through ``extrap validate --diagnose``).

Run:  python examples/diagnose_faulty_run.py
"""

from dataclasses import replace

from repro import extrapolate, measure, presets
from repro.bench.embar import EmbarConfig, make_program
from repro.diagnose import diagnose
from repro.faults import FaultPlan

N = 8

PLANS = {
    "clean": None,
    # Low rate + high factor: a few processors run the same compute
    # actions 16x slower — the binomial skew a straggler detector sees.
    # (A plan slowing *every* processor equally is undetectable by
    # construction: nothing is slow relative to the fleet.)
    "straggler": FaultPlan(seed=7, straggler_rate=0.08, straggler_factor=16.0),
    # Occasional 50 ms barrier delays: one long wait episode for
    # everyone else, the signature the barrier detector keys on.
    "barrier delay": FaultPlan(
        seed=2, barrier_delay_rate=0.15, barrier_delay=50000.0
    ),
}


def main():
    trace = measure(make_program(EmbarConfig())(N), N, name="embar")
    base = presets.distributed_memory()

    for label, plan in PLANS.items():
        params = base if plan is None else replace(base, faults=plan)
        outcome = extrapolate(trace, params, observe=True)
        report = diagnose(outcome.result.timeline)
        print(f"=== {label} ===")
        print(report.format())
        print()

    print("the clean run is quiet; each fault is flagged and typed.")
    print("same reports via the CLI:")
    print("  extrap validate embar.jsonl --diagnose --faults plan.json --json")


if __name__ == "__main__":
    main()
