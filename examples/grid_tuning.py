#!/usr/bin/env python
"""Replaying the paper's §4.1 Grid performance-debugging session.

Grid (Jacobi on a 2-D patch grid) showed speedup levelling off after 4
processors.  The session, using *only* single-processor measurements:

1. baseline extrapolation — poor speedup, as observed;
2. hypothesis 1: bandwidth — raise links to 200 MB/s: helps somewhat;
3. hypothesis 2: synchronisation — trace statistics show too few
   barriers to matter;
4. extrapolate to an ideal (zero-cost) environment — near-perfect
   speedup, so the computation itself scales: something else is wrong;
5. inspect the trace: every remote transfer is recorded at the whole
   collection-element size (231456 bytes!) while the program actually
   moves 2- and 128-byte messages — a measurement abstraction, exactly
   what the paper found;
6. re-measure with actual sizes: the "bandwidth problem" evaporates.

Run:  python examples/grid_tuning.py
"""

from repro import extrapolate, measure, presets, translate
from repro.bench.grid import GridConfig, make_program
from repro.trace.stats import compute_stats
from repro.util.units import mbytes_per_s_to_us_per_byte

PROCESSORS = (1, 2, 4, 8, 16, 32)


def sweep(maker, params, size_mode):
    times = {}
    for p in PROCESSORS:
        trace = measure(maker(p), p, name="grid", size_mode=size_mode)
        times[p] = extrapolate(trace, params).predicted_time
    return times


def speedups(times):
    return {p: times[min(times)] / t for p, t in times.items()}


def show(label, times):
    s = speedups(times)
    cells = "  ".join(f"P{p}:{s[p]:5.2f}" for p in PROCESSORS)
    print(f"  {label:28s} {cells}")


def main():
    cfg = GridConfig(
        patch_rows=6, patch_cols=6, m=16, iterations=4, element_nbytes=231456
    )
    maker = make_program(cfg)
    base = presets.distributed_memory()

    print("=== step 1: baseline (compiler-recorded transfer sizes) ===")
    show("baseline speedup", sweep(maker, base, "compiler"))

    print("\n=== step 2: what if the links were 200 MB/s? ===")
    fast = base.with_(
        network={"byte_transfer_time": mbytes_per_s_to_us_per_byte(200.0)}
    )
    show("200 MB/s speedup", sweep(maker, fast, "compiler"))

    print("\n=== step 3: is it the barriers? (trace statistics) ===")
    trace32 = measure(maker(32), 32, name="grid", size_mode="compiler")
    st = compute_stats(trace32)
    print(f"  only {st.n_barriers} barriers vs {st.n_remote_reads} remote reads")
    print(f"  every recorded transfer is {st.remote_bytes_max} bytes (!)")

    print("\n=== step 4: ideal environment — does the computation scale? ===")
    show("ideal speedup", sweep(maker, presets.ideal(), "compiler"))
    print(f"  (translated ideal time at P=32: "
          f"{translate(trace32).ideal_execution_time():.0f} us)")

    print("\n=== step 5+6: re-measure with ACTUAL transfer sizes ===")
    actual32 = measure(maker(32), 32, name="grid", size_mode="actual")
    sa = compute_stats(actual32)
    print(
        f"  actual transfers: min {sa.remote_bytes_min} B, "
        f"max {sa.remote_bytes_max} B (vs {st.remote_bytes_max} B recorded)"
    )
    show("actual-size speedup", sweep(maker, base, "actual"))
    lowstart = base.with_(network={"comm_startup_time": 10.0})
    show("+ 10us startup", sweep(maker, lowstart, "actual"))

    print(
        "\nall of the above used the same kind of single-processor "
        "measurements — no parallel machine was involved."
    )


if __name__ == "__main__":
    main()
