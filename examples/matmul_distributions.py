#!/usr/bin/env python
"""Choosing a data distribution by extrapolation (the §4.2 validation).

Matmul accepts any of nine (row, column) distribution combinations for
its matrices.  Which is fastest on a 16-node CM-5?  Extrapolation
answers from Sun4-style 1-processor traces; the reference machine
simulator (our stand-in for the real CM-5) checks the answer.

Run:  python examples/matmul_distributions.py
"""

from repro import measure_and_extrapolate, presets
from repro.bench.matmul import ALL_DISTRIBUTIONS, MatmulConfig, make_program
from repro.machine import run_on_machine
from repro.util.tables import format_table

N_PROCS = 16
SIZE = 12


def main():
    params = presets.cm5()
    print(params.describe())
    print()

    rows = []
    predicted, measured = {}, {}
    for rd, cd in ALL_DISTRIBUTIONS:
        cfg = MatmulConfig(size=SIZE, row_dist=rd, col_dist=cd)
        maker = make_program(cfg)
        outcome = measure_and_extrapolate(maker(N_PROCS), N_PROCS, params, name="matmul")
        mres = run_on_machine(maker(N_PROCS), N_PROCS, name="matmul")
        predicted[cfg.dist_label] = outcome.predicted_time
        measured[cfg.dist_label] = mres.execution_time
        rows.append(
            [
                cfg.dist_label,
                outcome.predicted_time / 1000.0,
                mres.execution_time / 1000.0,
                outcome.predicted_time / mres.execution_time,
            ]
        )

    rows.sort(key=lambda r: r[1])
    print(
        format_table(
            ["distribution", "predicted (ms)", "measured (ms)", "pred/meas"],
            rows,
            title=f"Matmul {SIZE}x{SIZE} on {N_PROCS} CM-5 nodes",
        )
    )

    best_pred = min(predicted, key=predicted.get)
    best_meas = min(measured, key=measured.get)
    print(f"\npredicted best distribution: {best_pred}")
    print(f"measured  best distribution: {best_meas}")
    gap = measured[best_pred] / measured[best_meas] - 1.0
    print(
        f"choosing by prediction costs {gap:.1%} over the measured optimum"
        + (" — the prediction picked the winner." if gap == 0 else ".")
    )


if __name__ == "__main__":
    main()
