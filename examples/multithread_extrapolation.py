#!/usr/bin/env python
"""The §6 extension: n threads extrapolated onto m <= n processors.

The standard pipeline predicts an n-thread, n-processor run.  The
multithread model reuses the *same* 1-processor traces to ask: what if
the 16-thread program ran on 2, 4 or 8 processors instead?  And does it
matter whether communicating threads are packed onto the same processor
(block assignment) or spread out (cyclic)?

Run:  python examples/multithread_extrapolation.py
"""

from repro import measure, presets, translate
from repro.bench.grid import GridConfig, make_program
from repro.sim.multithread import simulate_multithreaded
from repro.util.tables import format_table

N_THREADS = 16


def main():
    cfg = GridConfig(patch_rows=4, patch_cols=4, m=8, iterations=4)
    trace = measure(
        make_program(cfg)(N_THREADS), N_THREADS, name="grid", size_mode="actual"
    )
    tp = translate(trace)
    params = presets.distributed_memory()

    rows = []
    for m in (1, 2, 4, 8, 16):
        by_scheme = {}
        for scheme in ("block", "cyclic"):
            res = simulate_multithreaded(
                tp, params, m, assignment_scheme=scheme
            )
            by_scheme[scheme] = res
        blk, cyc = by_scheme["block"], by_scheme["cyclic"]
        rows.append(
            [
                m,
                blk.execution_time / 1000.0,
                cyc.execution_time / 1000.0,
                sum(p.local_requests for p in blk.processors),
                sum(p.local_requests for p in cyc.processors),
                blk.messages,
            ]
        )

    print(
        format_table(
            [
                "procs",
                "block (ms)",
                "cyclic (ms)",
                "local reqs (blk)",
                "local reqs (cyc)",
                "msgs (blk)",
            ],
            rows,
            title=f"{N_THREADS}-thread Grid on m multithreaded processors",
        )
    )
    print()
    print("block assignment keeps neighbouring patches' threads on one")
    print("processor, turning their boundary exchanges into local accesses;")
    print("all of this came from one 16-thread, 1-processor measurement.")


if __name__ == "__main__":
    main()
