#!/usr/bin/env python
"""Predicted per-phase profiles: *where* will the time go?

Poisson's fast solver has three algorithmic phases — row transforms,
transposes, tridiagonal solves.  Phase markers in the program ride
through measurement, translation, and simulation, so the extrapolated
traces answer a question no total-time prediction can: which phase
becomes the bottleneck on which machine?

Run:  python examples/phase_profiling.py
"""

from repro import extrapolate, measure, presets
from repro.bench.poisson import PoissonConfig, make_program
from repro.metrics.phases import phase_stats
from repro.util.tables import format_table


def main():
    n = 16
    cfg = PoissonConfig(size=64)
    trace = measure(make_program(cfg)(n), n, name="poisson", size_mode="actual")
    print(
        f"measured {len(trace)} events at {n} threads; extrapolating to "
        "three environments ...\n"
    )

    rows = []
    for preset_name in ("ideal", "cm5", "distributed_memory"):
        outcome = extrapolate(trace, presets.by_name(preset_name))
        stats = phase_stats(outcome.result.threads)
        total = outcome.predicted_time
        rows.append(
            [
                preset_name,
                total / 1000.0,
                stats["dst"].total / (n * total),
                stats["solve"].total / (n * total),
                stats["transpose"].total / (n * total),
                stats["transpose"].imbalance,
            ]
        )

    print(
        format_table(
            [
                "environment",
                "time (ms)",
                "dst share",
                "solve share",
                "transpose share",
                "transpose imbalance",
            ],
            rows,
            title="Poisson: predicted per-phase profile by environment",
        )
    )
    print()
    print("the transposes (all-to-all communication) swallow the machine")
    print("as communication gets more expensive — the local transforms'")
    print("share shrinks correspondingly. One measurement, three profiles.")


if __name__ == "__main__":
    main()
