#!/usr/bin/env python
"""Runtime-system what-ifs: remote request service policies (Figure 8).

Should a pC++ port use message interrupts or polling?  At what polling
interval?  The answers are system- and program-specific; extrapolation
explores them from one set of traces per processor count.

Run:  python examples/policy_exploration.py
"""

from repro import extrapolate, measure, presets
from repro.bench.cyclic import CyclicConfig, make_program as make_cyclic
from repro.bench.grid import GridConfig, make_program as make_grid
from repro.util.tables import format_table

POLICIES = [
    ("no-interrupt", {"policy": "no_interrupt"}),
    ("interrupt", {"policy": "interrupt"}),
    ("poll @ 50us", {"policy": "poll", "poll_interval": 50.0}),
    ("poll @ 200us", {"policy": "poll", "poll_interval": 200.0}),
    ("poll @ 1000us", {"policy": "poll", "poll_interval": 1000.0}),
]
COUNTS = (4, 8, 16, 32)


def explore(name, maker, size_mode):
    base = presets.distributed_memory()
    traces = {
        p: measure(maker(p), p, name=name, size_mode=size_mode) for p in COUNTS
    }
    rows = []
    for label, overrides in POLICIES:
        params = base.with_(processor=overrides)
        times = [extrapolate(traces[p], params).predicted_time for p in COUNTS]
        rows.append([label] + [t / 1000.0 for t in times])
    print(
        format_table(
            ["policy"] + [f"P={p} (ms)" for p in COUNTS],
            rows,
            title=f"{name}: predicted execution time by service policy",
        )
    )
    best = {}
    for i, p in enumerate(COUNTS):
        col = {rows[j][0]: rows[j][i + 1] for j in range(len(rows))}
        best[p] = min(col, key=col.get)
    print("  best policy per processor count:", best)
    print()


def main():
    explore(
        "cyclic",
        make_cyclic(CyclicConfig(system_size=1 << 14)),
        "compiler",
    )
    explore(
        "grid",
        make_grid(GridConfig(patch_rows=6, patch_cols=6, m=16, iterations=4)),
        "actual",
    )
    print("one trace per processor count answered every row above.")


if __name__ == "__main__":
    main()
