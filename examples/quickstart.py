#!/usr/bin/env python
"""Quickstart: predict a program's 8-processor performance from a
1-processor measurement.

The ExtraP workflow in four steps:

1. write a data-parallel program against the pC++-style runtime API;
2. measure it: all 8 threads run multiplexed on ONE virtual processor,
   recording only barrier and remote-access events;
3. translate + simulate the trace under a target-environment parameter
   set (here: the Table 3 CM-5);
4. read off the predicted metrics.

Run:  python examples/quickstart.py
"""

from repro import extrapolate, measure, presets
from repro.metrics import derive_metrics
from repro.pcxx import Collection, make_distribution


def stencil_program(rt):
    """A small 1-D relaxation: each thread owns a vector chunk, trades
    boundary values with its neighbours every sweep."""
    n = rt.n_threads
    chunk = 512  # values per thread
    halo = Collection("halo", make_distribution(n, n, "block"), element_nbytes=16)
    for t in range(n):
        halo.poke(t, (0.0, 0.0))  # (left edge, right edge)

    def body(ctx):
        t = ctx.tid
        for sweep in range(20):
            # Read neighbour boundary values (remote element requests).
            if t > 0:
                yield from ctx.get(halo, t - 1, nbytes=8)
            if t < n - 1:
                yield from ctx.get(halo, t + 1, nbytes=8)
            # Relax the local chunk: ~4 flops per point.
            yield from ctx.compute(4 * chunk)
            yield from ctx.put(halo, t, (float(sweep), float(sweep)))
            yield from ctx.barrier()

    return body


def main():
    n = 8
    print(f"measuring {n}-thread run on 1 virtual processor ...")
    trace = measure(stencil_program, n, name="stencil")
    print(f"  trace: {len(trace)} events, {trace.barrier_count()} barriers")

    for preset_name in ("ideal", "cm5", "distributed_memory"):
        params = presets.by_name(preset_name)
        outcome = extrapolate(trace, params)
        m = derive_metrics(outcome.result)
        print(f"\ntarget environment: {preset_name}")
        print(f"  predicted execution time : {m.execution_time:10.1f} us")
        print(f"  processor utilisation    : {m.utilization:10.1%}")
        print(f"  comp/comm ratio          : {m.comp_comm_ratio:10.2f}")
        print(f"  messages on the network  : {m.messages:10d}")


if __name__ == "__main__":
    main()
