#!/usr/bin/env python
"""Sampled estimation: predict from representative intervals only.

Iterative programs re-simulate near-identical phases.  `repro.sampling`
clusters a trace's barrier-delimited intervals by event signature,
simulates one medoid representative per phase, and reconstitutes the
whole-run metrics as weighted estimates — here on the CM-5 matmul
benchmark, first as a single prediction compared against the full
simulation, then driving a whole parameter sweep via the spec-level
``"sample"`` field.

Run:  python examples/sampled_sweep.py
"""

import tempfile

from repro import measure
from repro.bench.suite import get_benchmark
from repro.core.presets import by_name
from repro.sampling import SamplingConfig, estimate_sampled, sample_report
from repro.sweep import ResultCache, SweepSpec, run_sweep
from repro.sweep.analyze import format_run

SPACE = {
    "name": "matmul-sampled-space",
    "preset": "cm5",
    "grid": {
        "network.hop_time": [0.25, 0.5, 1.0],
        "processor.mips_ratio": [0.41, 1.0],
    },
    # One line turns the whole sweep into sampled estimation.  Results
    # cache under sampling-aware keys, so they never collide with a
    # full sweep of the same space.
    "sample": {"max_phases": 8, "seed": 0},
}


def main():
    maker = get_benchmark("matmul").make_program()
    trace = measure(maker(16), 16, name="matmul")
    params = by_name("cm5")

    # The sampling plan alone — what would be simulated, without
    # simulating it (also: `extrap validate <trace> --sample-report`).
    print(sample_report(trace, SamplingConfig(seed=0)))

    # Full simulation vs sampled estimate on the same trace.
    from repro.core.pipeline import extrapolate

    full = extrapolate(trace, params)
    sampled = estimate_sampled(trace, params, SamplingConfig(seed=0))
    rel = abs(sampled.predicted_time - full.predicted_time) / full.predicted_time
    print(f"\nfull simulation:   {full.predicted_time:12.1f} us "
          f"({len(trace.events)} events)")
    print(f"sampled estimate:  {sampled.predicted_time:12.1f} us "
          f"({sampled.events_simulated} events, rel err {rel:.2%})")
    bar = sampled.result.sampling["error_bars"]["predicted_time_us"]
    print(f"error bar:         +/- {bar['error']:.1f} us "
          f"({bar['relative_error']:.2%})")

    # A sweep where every point is a sampled estimate.
    spec = SweepSpec.from_dict(SPACE)
    print(f"\n{spec.name}: {len(spec)} sampled points")
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        run = run_sweep(spec, trace=trace, jobs=2, cache=cache)
        print(format_run(run))
        for rec in run.records:
            assert rec.result.get("estimated") is True
        # Parallel, serial, and re-run artifacts are all byte-identical.
        rerun = run_sweep(spec, trace=trace, jobs=1, cache=cache)
        assert rerun.to_json() == run.to_json()
        print(f"rerun: {rerun.counters.format()}")


if __name__ == "__main__":
    main()
