#!/usr/bin/env python
"""Exercise a running `extrap serve` instance end to end.

Stdlib-only client: waits for the server to come up, runs a predict
twice (asserting the second is answered from the cache with an
identical payload), runs a diagnosed predict, submits a sweep job and
polls it to completion, and scrapes `/v1/metrics`, validating the
Prometheus text exposition.  Exits nonzero on any contract violation,
which is what lets CI use it as the serve smoke test.

Run:  extrap serve --port 8787 --trace-root traces/ &
      python examples/serve_client.py --port 8787 --trace grid.jsonl
"""

import argparse
import http.client
import json
import random
import re
import sys
import time

#: ``name{labels} value`` — the exposition sample-line grammar
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([0-9eE.+-]+|NaN|[+-]Inf)$"
)

#: statuses worth retrying: rate limited (429) and load shed (503)
RETRYABLE = (429, 503)

BACKOFF_BASE_S = 0.5
BACKOFF_CAP_S = 30.0
MAX_RETRIES = 5


class Client:
    """Tiny stdlib HTTP client with Retry-After-aware backoff.

    ``rng`` and ``sleep`` are injectable so tests can drive the backoff
    deterministically; a seeded ``random.Random`` makes the jitter
    sequence reproducible (``--backoff-seed``).
    """

    def __init__(self, host, port, rng=None, sleep=time.sleep):
        self.host, self.port = host, port
        self.rng = rng if rng is not None else random.Random()
        self.sleep = sleep

    def request(self, method, path, body=None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=120)
        try:
            conn.request(
                method, path, body=None if body is None else json.dumps(body)
            )
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read()), dict(resp.getheaders())
        finally:
            conn.close()

    def backoff_delay(self, attempt, retry_after):
        """Seconds to wait before retry ``attempt`` (0-based).

        The server's ``Retry-After`` is the floor — retrying sooner is
        guaranteed futile — plus capped exponential jitter so a herd of
        clients told "retry in 2s" does not stampede back in lockstep.
        """
        jitter_cap = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2 ** attempt))
        return retry_after + self.rng.uniform(0.0, jitter_cap)

    def request_retry(self, method, path, body=None, max_retries=MAX_RETRIES):
        """Like :meth:`request`, but waits out 429/503 responses.

        Honors the ``Retry-After`` header (falling back to the JSON
        error body's ``retry_after``), retries at most ``max_retries``
        times, and returns the final response either way.
        """
        for attempt in range(max_retries + 1):
            status, data, headers = self.request(method, path, body)
            if status not in RETRYABLE or attempt == max_retries:
                return status, data, headers
            retry_after = headers.get(
                "Retry-After", data.get("error", {}).get("retry_after", 1)
            )
            delay = self.backoff_delay(attempt, float(retry_after))
            print(
                f"got {status}, retry {attempt + 1}/{max_retries} "
                f"in {delay:.2f}s"
            )
            self.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def request_text(self, method, path):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=120)
        try:
            conn.request(method, path)
            resp = conn.getresponse()
            return (
                resp.status,
                resp.getheader("Content-Type", ""),
                resp.read().decode("utf-8"),
            )
        finally:
            conn.close()

    def wait_healthy(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                status, data, _ = self.request("GET", "/v1/healthz")
                if status == 200 and data.get("status") == "ok":
                    return data
            except OSError:
                pass
            time.sleep(0.2)
        raise SystemExit(f"server on :{self.port} never became healthy")


def check(cond, message):
    if not cond:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8787)
    ap.add_argument(
        "--trace",
        default="grid.jsonl",
        help="trace path relative to the server's --trace-root",
    )
    ap.add_argument("--preset", default="cm5")
    ap.add_argument(
        "--backoff-seed",
        type=int,
        default=None,
        help="seed the retry jitter RNG for reproducible backoff",
    )
    args = ap.parse_args(argv)
    client = Client(args.host, args.port, rng=random.Random(args.backoff_seed))

    health = client.wait_healthy()
    print(f"server healthy (version {health['version']})")

    # Predict twice: the second answer must come from the cache, and
    # must be identical to the first.
    body = {"trace_path": args.trace, "preset": args.preset}
    status, first, _ = client.request_retry("POST", "/v1/predict", body)
    check(status == 200, f"predict returns 200 (got {status}: {first})")
    status, second, _ = client.request_retry("POST", "/v1/predict", body)
    check(status == 200, "repeat predict returns 200")
    check(second["cached"], "repeat predict is served from the cache")
    check(
        first["metrics"] == second["metrics"]
        and first["report"] == second["report"],
        "cached response is identical to the computed one",
    )
    print(
        f"predicted {first['metrics']['predicted_time_us']:.1f} us "
        f"for {first['trace']['program']} on {args.preset}"
    )

    # Diagnosed predict: the response carries the anomaly report.
    status, diagnosed, _ = client.request_retry(
        "POST", "/v1/predict", {**body, "diagnose": True}
    )
    check(status == 200, "diagnosed predict returns 200")
    check(
        diagnosed.get("diagnosis", {}).get("schema") == 1,
        "diagnosed predict carries the report",
    )
    check(
        diagnosed["key"] != first["key"],
        "diagnosed responses cache under their own key",
    )

    # Malformed input: one-line JSON error, with a spelling hint.
    status, err, _ = client.request("POST", "/v1/predict", {"trase_path": "x"})
    check(status == 400, "unknown field is a 400")
    check("did you mean" in err["error"]["message"], "error suggests a fix")

    # Async sweep: submit, poll, fetch.
    spec = {
        "name": "client-demo",
        "preset": args.preset,
        "grid": {"network.comm_startup_time": [50.0, 100.0, 200.0]},
    }
    status, job, _ = client.request_retry(
        "POST", "/v1/sweeps", {"spec": spec, "trace_path": args.trace}
    )
    check(status == 202, f"sweep submit returns 202 (got {status}: {job})")
    job_id = job["job"]
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        status, state, _ = client.request("GET", f"/v1/jobs/{job_id}")
        if state["status"] in ("done", "failed"):
            break
        time.sleep(0.2)
    check(state["status"] == "done", f"sweep job finishes (got {state})")
    status, result, _ = client.request("GET", f"/v1/jobs/{job_id}/result")
    check(status == 200, "finished job's result is fetchable")
    points = result["result"]["points"]
    check(len(points) == 3, "sweep artifact has every point")

    status, stats, _ = client.request("GET", "/v1/stats")
    cache = stats["cache"]
    print(
        f"stats: {stats['requests_total']} requests, "
        f"cache {cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses, "
        f"jobs done {stats['jobs']['done']}"
    )
    check(cache.get("hits", 0) >= 1, "cache shows at least one hit")

    # Prometheus scrape: valid text exposition of the same counters.
    status, ctype, text = client.request_text("GET", "/v1/metrics")
    check(status == 200, "metrics endpoint returns 200")
    check(ctype.startswith("text/plain"), "metrics content type is text")
    helped, typed = set(), set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
        elif line.startswith("# TYPE "):
            typed.add(line.split()[2])
        elif not SAMPLE_RE.match(line):
            raise SystemExit(f"FAIL: malformed sample line: {line!r}")
    check(helped == typed and helped, "every family has HELP and TYPE")
    check(
        'extrap_requests_total{endpoint="predict"} 3' in text,
        "request counters survived the projection",
    )
    check("extrap_cache_hits_total 1" in text, "cache counters exposed")
    print(f"metrics: {len(helped)} families, exposition valid")
    print("all serve checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
