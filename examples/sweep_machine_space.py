#!/usr/bin/env python
"""Sweep a machine design space and read off the Pareto frontier.

The question: for the grid relaxation benchmark, how do network speed,
topology, and processor speed trade off?  Instead of hand-rolling three
nested loops, declare the space once and let `repro.sweep` enumerate,
parallelise, and cache it.  Run this twice — the second run is all
cache hits.

Run:  python examples/sweep_machine_space.py
"""

import tempfile

from repro import measure
from repro.bench.grid import GridConfig, make_program
from repro.sweep import ResultCache, SweepSpec, run_sweep
from repro.sweep.analyze import best_record, format_run, pareto_front

SPACE = {
    "name": "grid-machine-space",
    "preset": "cm5",
    "grid": {
        "network.hop_time": [0.25, 0.5, 1.0],
        "network.topology": ["fattree", "mesh2d", "ring"],
        "processor.mips_ratio": [0.41, 1.0],
    },
}


def main():
    trace = measure(make_program(GridConfig())(16), 16, name="grid")
    spec = SweepSpec.from_dict(SPACE)
    print(f"{spec.name}: {len(spec)} points over {len(SPACE['grid'])} axes\n")

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        run = run_sweep(spec, trace=trace, jobs=4, cache=cache)
        print(format_run(run))
        print(run.counters.format())

        # Re-running the same space costs nothing but cache reads.
        rerun = run_sweep(spec, trace=trace, jobs=1, cache=cache)
        print(f"rerun: {rerun.counters.format()}")
        assert rerun.to_json() == run.to_json()

    best = best_record(run)
    print(f"\nfastest machine: {best.point.label()}")
    print("on the frontier (time vs message bytes):")
    for rec in pareto_front(run):
        r = rec.result
        print(
            f"  #{rec.point.index:<3d} {rec.point.label():<55s}"
            f" {r['predicted_time_us']:>12.1f} us"
            f" {r['message_bytes']:>10d} B"
        )


if __name__ == "__main__":
    main()
