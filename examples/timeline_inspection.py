#!/usr/bin/env python
"""Record a simulation timeline and mine it three ways.

One Grid prediction with ``observe=True`` yields a ``Timeline``: every
processor's activity spans, point events, and on-state-change counter
series.  This script renders it as an ASCII Gantt chart, derives
utilization and queue-depth series from it, and writes the Chrome
trace-event JSON you can open interactively at https://ui.perfetto.dev.

Run:  python examples/timeline_inspection.py
"""

from repro import extrapolate, measure, presets
from repro.bench.grid import GridConfig, make_program
from repro.obs import (
    ascii_gantt,
    busy_fraction_series,
    counter_points,
    utilization_series,
    write_chrome_trace,
)

OUT = "grid_timeline.json"


def main():
    n = 8
    trace = measure(make_program(GridConfig())(n), n, name="grid")
    outcome = extrapolate(trace, presets.distributed_memory(), observe=True)
    tl = outcome.result.timeline

    print(tl.summary())
    print()

    # 1. The Gantt view: who did what, when.
    print(ascii_gantt(tl, width=64))
    print()

    # 2. Derived series: machine utilization and the busiest queue.
    util = utilization_series(tl, n_buckets=8)["utilization"]
    print("utilization by eighth of the run:")
    print("  " + " ".join(f"{frac:4.0%}" for _, frac in util))
    for proc in range(n):
        frac = busy_fraction_series(tl, proc, n_buckets=1)[0][1]
        bar = "#" * round(frac * 40)
        print(f"  p{proc} busy {frac:5.1%} |{bar}")
    peak = max(
        (max(v for _, v in counter_points(tl, f"proc{p}.rxq_depth")), p)
        for p in range(n)
        if f"proc{p}.rxq_depth" in tl.counter_names()
    )
    print(f"deepest receive queue: {peak[0]:.0f} messages on p{peak[1]}")
    print()

    # 3. The interactive view.
    write_chrome_trace(tl, OUT)
    print(f"wrote {OUT} — open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
