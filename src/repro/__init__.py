"""repro — Performance Extrapolation of Parallel Programs (ExtraP).

A reproduction of Shanmugam, Malony & Mohr, *Performance Extrapolation
of Parallel Programs* (ICPP 1995): predict the performance of an
n-thread data-parallel program on an n-processor target machine from a
high-level event trace of the same program multiplexed on one processor.

Quickstart::

    from repro import extrapolate, measure, presets
    from repro.bench.grid import GridConfig, make_program

    maker = make_program(GridConfig())
    trace = measure(maker(8), 8, name="grid")          # 8 threads, 1 cpu
    outcome = extrapolate(trace, presets.cm5())         # predict 8-proc CM-5
    print(outcome.predicted_time, "us")
    print(outcome.result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import presets
from repro.core.parameters import (
    BarrierAlgorithm,
    BarrierParams,
    NetworkParams,
    ProcessorParams,
    RemoteServicePolicy,
    SimulationParameters,
)
from repro.core.pipeline import (
    ExtrapolationOutcome,
    extrapolate,
    measure,
    measure_and_extrapolate,
)
from repro.core.translation import TranslatedProgram, translate
from repro.metrics import PerformanceMetrics, derive_metrics
from repro.metrics.scaling import ScalingStudy, run_scaling_study
from repro.pcxx import Collection, Dist, ThreadCtx, TracingRuntime, make_distribution
from repro.sim import SimulationResult, simulate
from repro.trace import Trace, read_trace, write_trace

__version__ = "1.0.0"

__all__ = [
    "BarrierAlgorithm",
    "BarrierParams",
    "Collection",
    "Dist",
    "ExtrapolationOutcome",
    "NetworkParams",
    "PerformanceMetrics",
    "ProcessorParams",
    "RemoteServicePolicy",
    "ScalingStudy",
    "SimulationParameters",
    "SimulationResult",
    "ThreadCtx",
    "Trace",
    "TracingRuntime",
    "TranslatedProgram",
    "__version__",
    "derive_metrics",
    "extrapolate",
    "make_distribution",
    "measure",
    "measure_and_extrapolate",
    "presets",
    "read_trace",
    "run_scaling_study",
    "simulate",
    "translate",
    "write_trace",
]
