"""The pC++ benchmark suite analogs (paper Table 2) plus Matmul (§4.2).

| name    | description                                      |
|---------|--------------------------------------------------|
| embar   | NAS "embarrassingly parallel" benchmark          |
| cyclic  | Cyclic reduction computation                     |
| sparse  | NAS random sparse conjugate gradient benchmark   |
| grid    | Poisson equation on a two dimensional grid       |
| mgrid   | NAS multigrid solver benchmark                   |
| poisson | Fast Poisson solver                              |
| sort    | Bitonic sort module                              |
| matmul  | Matrix multiply used for the CM-5 validation     |

Each benchmark module exposes a config dataclass and a
``make_program(cfg)`` returning a per-thread-count program factory; they
all run real numerical computation (verified internally against serial
references) while charging virtual compute time through an explicit flop
model — see DESIGN.md for why this substitution preserves exactly what
extrapolation consumes.
"""

from repro.bench.suite import BENCHMARKS, BenchmarkInfo, get_benchmark

__all__ = ["BENCHMARKS", "BenchmarkInfo", "get_benchmark"]
