"""Shared benchmark plumbing.

Benchmarks follow one shape::

    @dataclass
    class FooConfig:
        ...problem parameters with small-but-meaningful defaults...
        verify: bool = True

    def make_program(cfg: FooConfig) -> ProgramMaker:
        def maker(n_threads: int) -> ProgramFactory:
            def factory(rt: TracingRuntime):
                ...build collections in rt's global space...
                def body(ctx): ...
                return body
            return factory
        return maker

The returned maker regenerates the program per thread count, which is
what a scaling study needs; ``verify=True`` makes every thread check its
results against a serial reference inside the run (a failed benchmark
raises during measurement, so a trace in hand implies verified results).
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

import numpy as np

from repro.pcxx.runtime import TracingRuntime

#: (n_threads) -> (rt -> bodies)
ProgramMaker = Callable[[int], Callable[[TracingRuntime], object]]

#: Flop-charge conventions shared across benchmarks (per element touched).
FLOPS_PER_STENCIL_POINT = 6  # 5-point Jacobi update: 4 adds, 1 sub, 1 mul
FLOPS_PER_TRIDIAG_ROW = 8  # Thomas elimination+backsubstitution per row
FLOPS_PER_KEY_MERGE = 2  # compare + conditional move per key in merge-split


def require_power_of_two(name: str, value: int) -> None:
    """Benchmarks built on pairwise exchanges need power-of-two threads."""
    if value < 1 or value & (value - 1):
        raise ValueError(f"{name} must be a power of two, got {value}")


def block_range(total: int, parts: int, index: int) -> range:
    """Contiguous block ``index`` of ``total`` items split into ``parts``.

    Uses ceil-sized blocks (matching the BLOCK distribution rule), so
    trailing parts may be smaller or empty.

    >>> [list(block_range(10, 4, i)) for i in range(4)]
    [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    block = -(-total // parts)
    lo = min(index * block, total)
    hi = min(lo + block, total)
    return range(lo, hi)


def check_close(name: str, got: np.ndarray, want: np.ndarray, tol: float = 1e-8) -> None:
    """Raise with a useful message if two arrays disagree."""
    got = np.asarray(got, dtype=float)
    want = np.asarray(want, dtype=float)
    if got.shape != want.shape:
        raise AssertionError(
            f"{name}: shape mismatch {got.shape} vs {want.shape}"
        )
    err = float(np.max(np.abs(got - want))) if got.size else 0.0
    scale = max(1.0, float(np.max(np.abs(want))) if want.size else 1.0)
    if err > tol * scale:
        raise AssertionError(
            f"{name}: max abs error {err:g} exceeds tolerance "
            f"{tol * scale:g}"
        )


def ilog2(n: int) -> int:
    """Exact log2 of a power of two."""
    require_power_of_two("value", n)
    return n.bit_length() - 1
