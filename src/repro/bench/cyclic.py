"""Cyclic — cyclic reduction computation analog.

Solves a tridiagonal system by the two-level scheme typical of parallel
cyclic reduction codes:

1. each thread *locally* eliminates the interior of its block of the
   global system (Thomas-style work, charged as
   ``8 * system_size / n`` flops), reducing its block to one
   representative equation;
2. the n representative equations are solved by **parallel cyclic
   reduction (PCR)** across threads: ``log2(n)`` elimination steps, each
   step every thread reading its neighbours' equations at distance
   ``2^k`` (two remote reads of 32 B) followed by a barrier;
3. each thread locally back-substitutes its interior
   (``5 * system_size / n`` flops).

The thread-level PCR runs on a *real* tridiagonal system (seeded,
diagonally dominant) and the solution is verified against a direct dense
solve, so the communication skeleton carries genuinely correct math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench.base import ProgramMaker, ilog2, require_power_of_two
from repro.pcxx import Collection, make_distribution
from repro.pcxx.runtime import ThreadCtx, TracingRuntime
from repro.util.rng import DEFAULT_SEED

#: PCR elimination work per equation per step (two neighbour combines).
FLOPS_PER_PCR_STEP = 14
#: Local interior elimination / back-substitution flops per unknown.
FLOPS_ELIMINATE = 8
FLOPS_BACKSUB = 5
#: Interior update work per unknown at every PCR step (boundary values
#: propagate into the block interior).
FLOPS_STEP_INTERIOR = 2
#: One equation on the wire: a, b, c, d coefficients.
EQ_NBYTES = 32


@dataclass
class CyclicConfig:
    """Problem parameters for Cyclic.

    ``system_size`` is the global unknown count (sets the local compute
    weight); the thread-level reduced system always has one equation per
    thread.
    """

    system_size: int = 1 << 14
    #: Relative spread of block sizes across threads (0 = perfectly even).
    #: Real partitions are rarely even; the imbalance also means fast
    #: threads issue their PCR reads while slow owners are still
    #: computing — which is what makes the remote-request service policy
    #: matter (Figure 8).
    imbalance: float = 0.4
    seed: int = DEFAULT_SEED
    verify: bool = True

    def __post_init__(self):
        if self.system_size < 1:
            raise ValueError(f"system_size must be >= 1, got {self.system_size}")
        if not 0.0 <= self.imbalance < 1.0:
            raise ValueError(f"imbalance must be in [0, 1), got {self.imbalance}")

    def block_shares(self, n: int) -> "np.ndarray":
        """Unknowns per thread: a deterministic uneven partition."""
        jitter = np.array([((t * 2654435761) % 97) / 96.0 for t in range(n)])
        weights = 1.0 + self.imbalance * (jitter - 0.5)
        return self.system_size * weights / weights.sum()


def _reduced_system(cfg: CyclicConfig, n: int) -> np.ndarray:
    """The size-n reduced tridiagonal system: rows of (a, b, c, d).

    Diagonally dominant so PCR is stable.
    """
    rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, n]))
    a = rng.uniform(0.5, 1.0, n)
    c = rng.uniform(0.5, 1.0, n)
    a[0] = 0.0
    c[-1] = 0.0
    b = np.abs(a) + np.abs(c) + rng.uniform(1.0, 2.0, n)
    d = rng.uniform(-1.0, 1.0, n)
    return np.column_stack([a, b, c, d])


def reference_solution(cfg: CyclicConfig, n: int) -> np.ndarray:
    """Dense direct solve of the reduced system."""
    eq = _reduced_system(cfg, n)
    a, b, c, d = eq.T
    mat = np.diag(b)
    for i in range(1, n):
        mat[i, i - 1] = a[i]
        mat[i - 1, i] = c[i - 1]
    return np.linalg.solve(mat, d)


def make_program(cfg: CyclicConfig) -> ProgramMaker:
    """Build the Cyclic program factory (n must be a power of two)."""

    def maker(n_threads: int) -> Callable:
        require_power_of_two("cyclic thread count", n_threads)

        def factory(rt: TracingRuntime):
            n = rt.n_threads
            # Double-buffered equation generations: each PCR step reads
            # generation k and writes generation k+1, so one barrier per
            # step suffices and requests arrive at neighbours that are
            # still busy with their interior updates — the behaviour that
            # makes the remote-request service policy matter (Figure 8).
            eq_bufs = [
                Collection(
                    f"equations_{suffix}",
                    make_distribution(n, n, "block"),
                    element_nbytes=EQ_NBYTES,
                )
                for suffix in ("a", "b")
            ]
            system = _reduced_system(cfg, n)
            for i in range(n):
                eq_bufs[0].poke(i, system[i].copy())
                eq_bufs[1].poke(i, np.zeros(4))
            sol = reference_solution(cfg, n) if cfg.verify else None
            shares = cfg.block_shares(n)

            def body(ctx: ThreadCtx):
                t = ctx.tid
                local_unknowns = float(shares[t])
                # Phase 1: local interior elimination of the thread's block.
                yield from ctx.compute(local_unknowns * FLOPS_ELIMINATE)
                yield from ctx.barrier()
                # Phase 2: PCR on the reduced thread-level system.
                steps = ilog2(n) if n > 1 else 0
                for k in range(steps):
                    dist = 1 << k
                    cur, nxt = eq_bufs[k % 2], eq_bufs[(k + 1) % 2]
                    a, b, c, d = yield from ctx.get(cur, t)
                    if t - dist >= 0:
                        am, bm, cm, dm = yield from ctx.get(
                            cur, t - dist, nbytes=EQ_NBYTES
                        )
                    else:
                        am = bm = cm = dm = 0.0
                        bm = 1.0
                    if t + dist < n:
                        ap, bp, cp, dp = yield from ctx.get(
                            cur, t + dist, nbytes=EQ_NBYTES
                        )
                    else:
                        ap = bp = cp = dp = 0.0
                        bp = 1.0
                    alpha = -a / bm
                    beta = -c / bp
                    new = np.array(
                        [
                            alpha * am,
                            b + alpha * cm + beta * ap,
                            beta * cp,
                            d + alpha * dm + beta * dp,
                        ]
                    )
                    yield from ctx.put(nxt, t, new)
                    # Interior update with the new boundary relations; the
                    # uneven block sizes mean neighbours are often still in
                    # this compute when the next step's requests arrive.
                    yield from ctx.compute(
                        local_unknowns * FLOPS_STEP_INTERIOR + FLOPS_PER_PCR_STEP
                    )
                    yield from ctx.barrier()  # generation k+1 published
                # Decoupled: solve own unknown.
                a, b, c, d = yield from ctx.get(eq_bufs[steps % 2], t)
                x = d / b
                yield from ctx.compute(1)
                # Phase 3: local interior back-substitution.
                yield from ctx.compute(local_unknowns * FLOPS_BACKSUB)
                yield from ctx.barrier()
                if cfg.verify and sol is not None:
                    if abs(x - sol[t]) > 1e-8 * max(1.0, abs(sol[t])):
                        raise AssertionError(
                            f"cyclic: thread {t} solved {x}, reference {sol[t]}"
                        )

            return body

        return factory

    return maker
