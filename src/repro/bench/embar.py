"""Embar — the NAS "embarrassingly parallel" benchmark analog.

Generates pairs of uniform deviates, converts accepted pairs to Gaussian
deviates by the Marsaglia polar method, and tallies them into annuli
counts; the only communication is the final global reduction of the
tallies.  Embar "is expected to deliver linear speedup on almost all
platforms" (§4.1) because computation dwarfs communication.

The work is split into a fixed number of *chunks*, each with its own RNG
stream; thread t processes chunks ``t, t+n, t+2n, ...``.  The union of
chunks is identical for every thread count, so the global tallies are
bit-identical across n — which is how the internal verification works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench.base import ProgramMaker
from repro.pcxx import Collection, make_distribution
from repro.pcxx.patterns import reduce_tree
from repro.pcxx.runtime import ThreadCtx, TracingRuntime
from repro.util.rng import DEFAULT_SEED

#: Flops charged per generated pair: 2 uniforms (~4), radius test (~3),
#: log/sqrt transform amortised over acceptance (~8), tallying (~5).
FLOPS_PER_PAIR = 20


@dataclass
class EmbarConfig:
    """Problem parameters for Embar.

    ``total_pairs`` uniform pairs split over ``chunks`` fixed work units;
    ``bins`` annuli tallied (NAS EP uses 10).
    """

    total_pairs: int = 1 << 15
    chunks: int = 64
    bins: int = 10
    seed: int = DEFAULT_SEED
    verify: bool = True

    def __post_init__(self):
        if self.total_pairs < 1:
            raise ValueError(f"total_pairs must be >= 1, got {self.total_pairs}")
        if self.chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {self.chunks}")
        if self.bins < 1:
            raise ValueError(f"bins must be >= 1, got {self.bins}")


def _chunk_tallies(cfg: EmbarConfig, chunk: int) -> np.ndarray:
    """Tallies for one chunk: [count_bin0..count_binB-1, sum_x, sum_y]."""
    rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, chunk]))
    pairs = cfg.total_pairs // cfg.chunks + (
        1 if chunk < cfg.total_pairs % cfg.chunks else 0
    )
    out = np.zeros(cfg.bins + 2)
    if pairs == 0:
        return out
    x = rng.uniform(-1.0, 1.0, pairs)
    y = rng.uniform(-1.0, 1.0, pairs)
    t = x * x + y * y
    ok = (t > 0.0) & (t <= 1.0)
    x, y, t = x[ok], y[ok], t[ok]
    f = np.sqrt(-2.0 * np.log(t) / t)
    gx, gy = x * f, y * f
    m = np.maximum(np.abs(gx), np.abs(gy)).astype(int)
    m = np.clip(m, 0, cfg.bins - 1)
    out[: cfg.bins] = np.bincount(m, minlength=cfg.bins)[: cfg.bins]
    out[cfg.bins] = gx.sum()
    out[cfg.bins + 1] = gy.sum()
    return out


def reference_tallies(cfg: EmbarConfig) -> np.ndarray:
    """Serial reference: tallies over all chunks."""
    total = np.zeros(cfg.bins + 2)
    for c in range(cfg.chunks):
        total += _chunk_tallies(cfg, c)
    return total


def make_program(cfg: EmbarConfig) -> ProgramMaker:
    """Build the Embar program factory."""

    def maker(n_threads: int) -> Callable:
        def factory(rt: TracingRuntime):
            n = rt.n_threads
            tallies = Collection(
                "tallies",
                make_distribution(n, n, "block"),
                element_nbytes=(cfg.bins + 2) * 8,
            )
            reference = reference_tallies(cfg) if cfg.verify else None

            def body(ctx: ThreadCtx):
                mine = np.zeros(cfg.bins + 2)
                pairs_done = 0
                for chunk in range(ctx.tid, cfg.chunks, n):
                    mine += _chunk_tallies(cfg, chunk)
                    pairs_done += cfg.total_pairs // cfg.chunks + (
                        1 if chunk < cfg.total_pairs % cfg.chunks else 0
                    )
                yield from ctx.compute(pairs_done * FLOPS_PER_PAIR)
                yield from ctx.put(tallies, ctx.tid, mine)
                total = yield from reduce_tree(
                    ctx, tallies, lambda a, b: a + b, nbytes=(cfg.bins + 2) * 8
                )
                if cfg.verify and ctx.tid == 0:
                    if not np.allclose(total, reference):
                        raise AssertionError(
                            "embar: reduced tallies disagree with serial reference"
                        )

            return body

        return factory

    return maker
