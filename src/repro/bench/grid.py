"""Grid — Poisson equation on a two-dimensional grid (Jacobi iteration).

The domain is a (BLOCK, BLOCK)-distributed collection of grid patches;
each iteration exchanges patch boundaries with the four neighbours and
performs one Jacobi sweep, with a periodic global residual reduction.

This is the benchmark the paper dissects in §4.1 (Figure 5): its trace
recorded remote transfers at the whole collection-element size (231456
bytes — the element statically holds the full local grid arrays) when
the *actual* transfers are 2 bytes (a status word) and one boundary row
(128 bytes for a 16-wide patch).  Run the tracing runtime with
``size_mode="actual"`` to get the corrected trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.bench.base import FLOPS_PER_STENCIL_POINT, ProgramMaker
from repro.bench.stencil import (
    FLAG_NBYTES,
    assemble_global,
    fetch_ghosts,
    jacobi_update,
    serial_jacobi,
    split_into_patches,
)
from repro.pcxx import Collection, make_distribution
from repro.pcxx.patterns import reduce_tree
from repro.pcxx.runtime import ThreadCtx, TracingRuntime
from repro.util.rng import DEFAULT_SEED

#: The pC++ Grid collection element size the paper reports (the element
#: statically allocates the full local grid: ~170x170 doubles).
PAPER_ELEMENT_NBYTES = 231456


@dataclass
class GridConfig:
    """Problem parameters for Grid.

    ``patch_rows x patch_cols`` patches of ``m x m`` points; Jacobi for
    ``iterations`` sweeps with a residual reduction every
    ``residual_every`` sweeps.  ``element_nbytes`` is what compiler-level
    size recording reports per remote element access (None computes the
    honest in-memory size; the paper-flavoured configs use 231456).
    """

    patch_rows: int = 6
    patch_cols: int = 6
    m: int = 16
    iterations: int = 6
    residual_every: int = 3
    element_nbytes: int | None = None
    seed: int = DEFAULT_SEED
    verify: bool = True

    def __post_init__(self):
        if self.patch_rows < 1 or self.patch_cols < 1:
            raise ValueError("need at least one patch per dimension")
        if self.m < 1:
            raise ValueError(f"patch size must be >= 1, got {self.m}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if self.residual_every < 1:
            raise ValueError("residual_every must be >= 1")

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.patch_rows * self.m, self.patch_cols * self.m)

    def effective_element_nbytes(self) -> int:
        if self.element_nbytes is not None:
            return self.element_nbytes
        # u, unew and h2f arrays plus a small header.
        return 3 * self.m * self.m * 8 + 32

    @classmethod
    def paper_like(cls) -> "GridConfig":
        """The §4.1 flavour: 16-wide patches (128-byte boundaries),
        231456-byte elements, and enough iterations for ~650 barriers at
        32 threads (400 sweeps + 40 tree reductions of 6 episodes)."""
        return cls(
            patch_rows=10,
            patch_cols=10,
            m=16,
            iterations=400,
            residual_every=10,
            element_nbytes=PAPER_ELEMENT_NBYTES,
        )


def make_program(cfg: GridConfig) -> ProgramMaker:
    """Build the Grid program factory."""

    def maker(n_threads: int) -> Callable:
        def factory(rt: TracingRuntime):
            n = rt.n_threads
            rng = np.random.default_rng(cfg.seed)
            rows, cols = cfg.shape
            h2f_global = rng.uniform(-1.0, 1.0, (rows, cols))
            u0_global = np.zeros((rows, cols))

            dist = make_distribution(
                (cfg.patch_rows, cfg.patch_cols), n, ("block", "block")
            )
            # Double-buffered iterates: reads always target the current
            # generation while writes go to the other collection, so
            # boundary fetches interleave with per-patch computation (no
            # read/write phase separation, one barrier per sweep) — as in
            # the real pC++ Grid code.
            u_bufs = [
                Collection(
                    f"grid{suffix}",
                    dist,
                    element_nbytes=cfg.effective_element_nbytes(),
                )
                for suffix in ("_a", "_b")
            ]
            u_bufs[0].fill(
                split_into_patches(u0_global, cfg.patch_rows, cfg.patch_cols, cfg.m)
            )
            u_bufs[1].fill(
                split_into_patches(
                    np.zeros_like(u0_global), cfg.patch_rows, cfg.patch_cols, cfg.m
                )
            )
            h2f_patches: Dict[Tuple[int, int], np.ndarray] = split_into_patches(
                h2f_global, cfg.patch_rows, cfg.patch_cols, cfg.m
            )
            residuals = Collection(
                "residuals", make_distribution(n, n, "block"), element_nbytes=8
            )
            reference = (
                serial_jacobi(u0_global, h2f_global, cfg.iterations)
                if cfg.verify
                else None
            )

            def body(ctx: ThreadCtx):
                local = ctx.local_indices(u_bufs[0])
                for it in range(cfg.iterations):
                    cur, nxt = u_bufs[it % 2], u_bufs[(it + 1) % 2]
                    change = 0.0
                    for pidx in local:
                        ghosts = yield from fetch_ghosts(
                            ctx, cur, pidx, cfg.m, cfg.patch_rows, cfg.patch_cols
                        )
                        old = cur.peek(pidx)
                        new = jacobi_update(old, ghosts, h2f_patches[pidx])
                        change += float(np.sum((new - old) ** 2))
                        yield from ctx.put(nxt, pidx, new)
                        yield from ctx.compute(
                            cfg.m * cfg.m * FLOPS_PER_STENCIL_POINT
                        )
                    yield from ctx.barrier()  # sweep complete, buffers swap
                    if (it + 1) % cfg.residual_every == 0:
                        # Global convergence check: ||u_new - u_old||^2.
                        yield from ctx.compute(len(local) * cfg.m * cfg.m * 2)
                        yield from ctx.put(residuals, ctx.tid, change)
                        yield from reduce_tree(
                            ctx, residuals, lambda a, b: a + b, nbytes=8
                        )
                if cfg.verify and reference is not None and ctx.tid == 0:
                    final = assemble_global(
                        u_bufs[cfg.iterations % 2],
                        cfg.patch_rows,
                        cfg.patch_cols,
                        cfg.m,
                    )
                    if not np.allclose(final, reference, atol=1e-10):
                        raise AssertionError(
                            "grid: distributed Jacobi disagrees with the "
                            "serial reference"
                        )

            return body

        return factory

    return maker
