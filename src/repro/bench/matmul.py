"""Matmul — the matrix-multiply program used for CM-5 validation (§4.2).

``Matmul`` multiplies two N x N matrices A and B, with B given in
transposed form; A and B^T share one two-dimensional distribution chosen
from the per-dimension attributes Block, Cyclic, Whole — the nine
combinations of Figure 9.  Following the paper's description:

    "The first row of B^T is broadcast to all the rows of a temporary
    matrix T.  A pointwise multiplication of A and T is then performed
    and the result is placed in another temporary matrix S.  A right to
    left global summation (reduction) in each row of S produces the
    first column of the result matrix A.B.  This process is repeated for
    all the rows of B^T."

The broadcast is realised as remote element reads of the B^T row by
every thread that owns part of the matching T rows; the row reduction
sweeps right-to-left across the *owner segments* of each row (each step
one remote read of the neighbouring partial), with a barrier per
pipeline step.  "Though Matmul is a naive matrix multiplication
program, it serves to illustrate the usefulness of the extrapolation
technique."

Verification: the assembled product must equal ``A @ B``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.bench.base import ProgramMaker
from repro.pcxx import Collection, Dist, make_distribution
from repro.pcxx.distribution import Distribution2D
from repro.pcxx.runtime import ThreadCtx, TracingRuntime
from repro.util.rng import DEFAULT_SEED

#: The nine distribution combinations of Figure 9.
ALL_DISTRIBUTIONS: Tuple[Tuple[str, str], ...] = tuple(
    (r, c)
    for r in ("block", "cyclic", "whole")
    for c in ("block", "cyclic", "whole")
)


@dataclass
class MatmulConfig:
    """Problem parameters for Matmul.

    ``size`` is N; ``row_dist``/``col_dist`` are the per-dimension
    distribution attributes shared by A, B^T, T and S.
    """

    size: int = 16
    row_dist: str = "block"
    col_dist: str = "block"
    seed: int = DEFAULT_SEED
    verify: bool = True

    def __post_init__(self):
        if self.size < 2:
            raise ValueError(f"size must be >= 2, got {self.size}")
        Dist.parse(self.row_dist)
        Dist.parse(self.col_dist)

    @property
    def dist_label(self) -> str:
        return f"({self.row_dist},{self.col_dist})"


def _row_segments(dist: Distribution2D, row: int) -> List[Tuple[int, List[int]]]:
    """Owner segments of one matrix row, left to right.

    Returns ``[(owner, columns)]`` where consecutive columns with the
    same owner are grouped; the reduction sweeps these groups right to
    left.
    """
    segments: List[Tuple[int, List[int]]] = []
    for c in range(dist.cols):
        o = dist.owner((row, c))
        if segments and segments[-1][0] == o:
            segments[-1][1].append(c)
        else:
            segments.append((o, [c]))
    return segments


def make_program(cfg: MatmulConfig) -> ProgramMaker:
    """Build the Matmul program factory."""

    def maker(n_threads: int) -> Callable:
        def factory(rt: TracingRuntime):
            n = rt.n_threads
            N = cfg.size
            rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, N]))
            a_mat = rng.uniform(-1.0, 1.0, (N, N))
            b_mat = rng.uniform(-1.0, 1.0, (N, N))
            bt_mat = b_mat.T.copy()

            dist = make_distribution((N, N), n, (cfg.row_dist, cfg.col_dist))
            elem = 8
            a = Collection("A", dist, element_nbytes=elem)
            bt = Collection("Bt", dist, element_nbytes=elem)
            s = Collection("S", dist, element_nbytes=elem)
            result = Collection("AB", dist, element_nbytes=elem)
            for i in range(N):
                for j in range(N):
                    a.poke((i, j), float(a_mat[i, j]))
                    bt.poke((i, j), float(bt_mat[i, j]))
                    s.poke((i, j), 0.0)
                    result.poke((i, j), 0.0)

            local: Dict[int, List[Tuple[int, int]]] = {
                t: dist.local_indices(t) for t in range(n)
            }
            # Row-segment map for the right-to-left reductions.
            segments = [_row_segments(dist, i) for i in range(N)]
            max_stages = max(len(seg) for seg in segments)
            reference = a_mat @ b_mat if cfg.verify else None

            def body(ctx: ThreadCtx):
                t = ctx.tid
                mine = local[t]
                for r in range(N):
                    # Broadcast row r of B^T into T (realised as reads):
                    # T[i][j] = Bt[r][j]; pointwise multiply into S.
                    for (i, j) in mine:
                        v = yield from ctx.get(bt, (r, j), nbytes=8)
                        yield from ctx.put(s, (i, j), a.peek((i, j)) * v)
                    yield from ctx.compute(2 * len(mine))
                    yield from ctx.barrier()
                    # Fold each owner segment locally; the partial lives at
                    # the segment's first column.
                    for i in range(N):
                        for owner, cols in segments[i]:
                            if owner != t:
                                continue
                            partial = 0.0
                            for j in reversed(cols):
                                partial += s.peek((i, j))
                            yield from ctx.put(s, (i, cols[0]), partial)
                            yield from ctx.compute(len(cols))
                    yield from ctx.barrier()
                    # Right-to-left summation across the segments of each
                    # row: each stage the left segment absorbs its right
                    # neighbour's accumulated partial.
                    for stage in range(max_stages - 1, 0, -1):
                        for i in range(N):
                            seg = segments[i]
                            if stage >= len(seg):
                                continue
                            left_owner, left_cols = seg[stage - 1]
                            right_owner, right_cols = seg[stage]
                            if left_owner != t:
                                continue
                            partial = yield from ctx.get(
                                s, (i, right_cols[0]), nbytes=8
                            )
                            acc = s.peek((i, left_cols[0])) + partial
                            yield from ctx.put(s, (i, left_cols[0]), acc)
                            yield from ctx.compute(1)
                        yield from ctx.barrier()
                    # Column r of the result: its owners pull the row sums
                    # (remote reads, never remote writes).
                    for i in range(N):
                        if result.owner((i, r)) != t:
                            continue
                        head = segments[i][0][1][0]
                        total = yield from ctx.get(s, (i, head), nbytes=8)
                        yield from ctx.put(result, (i, r), total)
                    yield from ctx.barrier()
                if cfg.verify and reference is not None and t == 0:
                    got = np.array(
                        [[result.peek((i, j)) for j in range(N)] for i in range(N)]
                    )
                    if not np.allclose(got, reference, atol=1e-9):
                        raise AssertionError(
                            f"matmul {cfg.dist_label}: product disagrees "
                            "with A @ B"
                        )

            return body

        return factory

    return maker
