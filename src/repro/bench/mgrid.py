"""Mgrid — NAS multigrid solver benchmark analog.

V-cycle multigrid for the 2-D Poisson problem on the same (BLOCK, BLOCK)
patch collection structure as Grid.  Per level: damped-Jacobi smoothing
with ghost exchange, residual computation (another exchange), cell-block
restriction (local), recursion, piecewise-constant prolongation (local),
and post-smoothing.

Patch sizes halve per level while the patch *count* — and hence the
number of boundary messages per sweep — stays constant, so the
computation/communication ratio collapses at coarse levels.  That is why
Mgrid's speedup is so sensitive to ``MipsRatio`` (Figure 6(iv)) and why
its minimum-execution-time processor count shifts with communication
start-up cost (Figure 7).

Verification: the distributed V-cycle must agree with a serial
global-array implementation of the *same* algorithm to float tolerance,
and each V-cycle must reduce the residual norm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.bench.base import FLOPS_PER_STENCIL_POINT, ProgramMaker, ilog2
from repro.bench.stencil import (
    assemble_global,
    fetch_ghosts,
    jacobi_update,
    patch_residual,
    serial_jacobi,
    serial_residual,
    split_into_patches,
)
from repro.pcxx import Collection, make_distribution
from repro.pcxx.patterns import reduce_tree
from repro.pcxx.runtime import ThreadCtx, TracingRuntime
from repro.util.rng import DEFAULT_SEED

#: Damping factor for the Jacobi smoother.
OMEGA = 0.8


@dataclass
class MgridConfig:
    """Problem parameters for Mgrid.

    Fine level has ``patch_rows x patch_cols`` patches of ``m x m`` points
    (m a power of two); levels halve m down to 1x1 patches.  ``cycles``
    V-cycles with ``nu1``/``nu2`` pre/post smoothing sweeps and
    ``nu_coarse`` sweeps at the coarsest level.
    """

    patch_rows: int = 6
    patch_cols: int = 6
    m: int = 16
    cycles: int = 2
    nu1: int = 2
    nu2: int = 2
    nu_coarse: int = 4
    seed: int = DEFAULT_SEED
    verify: bool = True

    def __post_init__(self):
        ilog2(self.m)  # validates power of two
        if self.patch_rows < 1 or self.patch_cols < 1:
            raise ValueError("need at least one patch per dimension")
        for name in ("cycles", "nu1", "nu2", "nu_coarse"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def levels(self) -> int:
        """Number of grid levels (fine m down to 1)."""
        return ilog2(self.m) + 1

    def level_m(self, level: int) -> int:
        return self.m >> level


def restrict_patch(fine: np.ndarray) -> np.ndarray:
    """Cell-block restriction: coarse cell = mean of its 4 fine cells."""
    m = fine.shape[0]
    return 0.25 * (
        fine[0:m:2, 0:m:2]
        + fine[1:m:2, 0:m:2]
        + fine[0:m:2, 1:m:2]
        + fine[1:m:2, 1:m:2]
    )


def prolong_patch(coarse: np.ndarray) -> np.ndarray:
    """Piecewise-constant prolongation (transpose of the restriction)."""
    return np.kron(coarse, np.ones((2, 2)))


# ---------------------------------------------------------------------------
# Serial reference: the same V-cycle on global arrays.
# ---------------------------------------------------------------------------


def serial_vcycle(
    u: np.ndarray, h2f: np.ndarray, cfg: MgridConfig, level: int = 0
) -> np.ndarray:
    """One V-cycle on global arrays (reference implementation)."""
    if cfg.level_m(level) == 1:
        return serial_jacobi(u, h2f, cfg.nu_coarse, omega=OMEGA)
    u = serial_jacobi(u, h2f, cfg.nu1, omega=OMEGA)
    r = serial_residual(u, h2f)
    # Residual restricted; factor 4 rescales h^2 across the level change.
    coarse_rhs = 4.0 * restrict_patch_global(r)
    coarse_u = np.zeros_like(coarse_rhs)
    coarse_u = serial_vcycle(coarse_u, coarse_rhs, cfg, level + 1)
    u = u + prolong_patch(coarse_u)
    return serial_jacobi(u, h2f, cfg.nu2, omega=OMEGA)


def restrict_patch_global(fine: np.ndarray) -> np.ndarray:
    """Global-array version of :func:`restrict_patch`."""
    r, c = fine.shape
    return 0.25 * (
        fine[0:r:2, 0:c:2]
        + fine[1:r:2, 0:c:2]
        + fine[0:r:2, 1:c:2]
        + fine[1:r:2, 1:c:2]
    )


def serial_solve(cfg: MgridConfig, u0: np.ndarray, h2f: np.ndarray) -> np.ndarray:
    """Run ``cfg.cycles`` V-cycles serially."""
    u = u0.copy()
    for _ in range(cfg.cycles):
        u = serial_vcycle(u, h2f, cfg)
    return u


# ---------------------------------------------------------------------------
# Distributed program.
# ---------------------------------------------------------------------------


def make_program(cfg: MgridConfig) -> ProgramMaker:
    """Build the Mgrid program factory."""

    def maker(n_threads: int) -> Callable:
        def factory(rt: TracingRuntime):
            n = rt.n_threads
            rng = np.random.default_rng(cfg.seed)
            rows, cols = cfg.patch_rows * cfg.m, cfg.patch_cols * cfg.m
            h2f_global = rng.uniform(-1.0, 1.0, (rows, cols))
            u0_global = np.zeros((rows, cols))

            # One u and one rhs collection per level; same patch layout.
            dist = make_distribution(
                (cfg.patch_rows, cfg.patch_cols), n, ("block", "block")
            )
            u_lv: List[Collection] = []
            rhs_lv: List[Dict[Tuple[int, int], np.ndarray]] = []
            for lv in range(cfg.levels):
                m = cfg.level_m(lv)
                u_lv.append(
                    Collection(
                        f"mg_u{lv}", dist, element_nbytes=2 * m * m * 8 + 32
                    )
                )
                rhs_lv.append({})
            u_lv[0].fill(
                split_into_patches(u0_global, cfg.patch_rows, cfg.patch_cols, cfg.m)
            )
            rhs_lv[0] = split_into_patches(
                h2f_global, cfg.patch_rows, cfg.patch_cols, cfg.m
            )
            for lv in range(1, cfg.levels):
                m = cfg.level_m(lv)
                for pr in range(cfg.patch_rows):
                    for pc in range(cfg.patch_cols):
                        u_lv[lv].poke((pr, pc), np.zeros((m, m)))
                        rhs_lv[lv][(pr, pc)] = np.zeros((m, m))

            norms = Collection(
                "mg_norms", make_distribution(n, n, "block"), element_nbytes=8
            )
            reference = (
                serial_solve(cfg, u0_global, h2f_global) if cfg.verify else None
            )

            def smooth(ctx: ThreadCtx, lv: int, local, sweeps: int):
                m = cfg.level_m(lv)
                coll = u_lv[lv]
                for _ in range(sweeps):
                    ghosts = {}
                    for pidx in local:
                        ghosts[pidx] = yield from fetch_ghosts(
                            ctx, coll, pidx, m, cfg.patch_rows, cfg.patch_cols
                        )
                    yield from ctx.barrier()
                    for pidx in local:
                        new = jacobi_update(
                            coll.peek(pidx), ghosts[pidx], rhs_lv[lv][pidx], OMEGA
                        )
                        yield from ctx.put(coll, pidx, new)
                    yield from ctx.compute(
                        len(local) * m * m * FLOPS_PER_STENCIL_POINT
                    )
                    yield from ctx.barrier()

            def residual_norm(ctx: ThreadCtx, lv: int, local):
                """Global residual 2-norm at level lv (one reduction)."""
                m = cfg.level_m(lv)
                coll = u_lv[lv]
                partial = 0.0
                for pidx in local:
                    ghosts = yield from fetch_ghosts(
                        ctx, coll, pidx, m, cfg.patch_rows, cfg.patch_cols
                    )
                    r = patch_residual(coll.peek(pidx), ghosts, rhs_lv[lv][pidx])
                    partial += float(np.sum(r * r))
                yield from ctx.compute(len(local) * m * m * 8)
                yield from ctx.barrier()
                yield from ctx.put(norms, ctx.tid, partial)
                total = yield from reduce_tree(
                    ctx, norms, lambda a, b: a + b, nbytes=8
                )
                return float(np.sqrt(total))

            def vcycle(ctx: ThreadCtx, lv: int, local):
                m = cfg.level_m(lv)
                if m == 1:
                    yield from smooth(ctx, lv, local, cfg.nu_coarse)
                    return
                yield from smooth(ctx, lv, local, cfg.nu1)
                # Residual + restriction to the next level (local per patch).
                for pidx in local:
                    ghosts = yield from fetch_ghosts(
                        ctx, u_lv[lv], pidx, m, cfg.patch_rows, cfg.patch_cols
                    )
                    r = patch_residual(
                        u_lv[lv].peek(pidx), ghosts, rhs_lv[lv][pidx]
                    )
                    rhs_lv[lv + 1][pidx] = 4.0 * restrict_patch(r)
                    yield from ctx.put(
                        u_lv[lv + 1], pidx, np.zeros((m // 2, m // 2))
                    )
                yield from ctx.compute(len(local) * m * m * 10)
                yield from ctx.barrier()
                yield from vcycle(ctx, lv + 1, local)
                # Prolongate the correction and add (local per patch).
                for pidx in local:
                    corr = prolong_patch(u_lv[lv + 1].peek(pidx))
                    yield from ctx.put(
                        u_lv[lv], pidx, u_lv[lv].peek(pidx) + corr
                    )
                yield from ctx.compute(len(local) * m * m * 2)
                yield from ctx.barrier()
                yield from smooth(ctx, lv, local, cfg.nu2)

            def body(ctx: ThreadCtx):
                local = ctx.local_indices(u_lv[0])
                r0 = yield from residual_norm(ctx, 0, local)
                for _ in range(cfg.cycles):
                    yield from vcycle(ctx, 0, local)
                r1 = yield from residual_norm(ctx, 0, local)
                if cfg.verify and ctx.tid == 0:
                    if not (r1 < 0.9 * r0 or r1 < 1e-10):
                        raise AssertionError(
                            f"mgrid: V-cycles did not reduce the residual "
                            f"({r0:g} -> {r1:g})"
                        )
                    final = assemble_global(
                        u_lv[0], cfg.patch_rows, cfg.patch_cols, cfg.m
                    )
                    if not np.allclose(final, reference, atol=1e-9):
                        raise AssertionError(
                            "mgrid: distributed V-cycle disagrees with the "
                            "serial reference"
                        )

            return body

        return factory

    return maker
