"""Microbenchmarks: ping-pong, barrier latency, compute rate.

Every real machine's extrapolation parameters come from measurements —
the paper took its Table 3 values from Kwan, Totty & Reed's published
CM-5 microbenchmarks and a simple floating-point benchmark for the
MFLOPS ratio.  These are the equivalent probe programs, written against
the same runtime API as the suite so they run on both the tracing
runtime and the reference machine (:mod:`repro.calibrate` uses them on
the latter to fit a parameter set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench.base import ProgramMaker
from repro.pcxx import Collection, make_distribution
from repro.pcxx.runtime import ThreadCtx, TracingRuntime


@dataclass
class PingPongConfig:
    """Two threads; thread 0 performs ``rounds`` remote reads of
    ``nbytes`` from thread 1 (a request/reply round trip each)."""

    nbytes: int = 1024
    rounds: int = 32
    verify: bool = True

    def __post_init__(self):
        if self.nbytes < 1:
            raise ValueError(f"nbytes must be >= 1, got {self.nbytes}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")


def pingpong_program(cfg: PingPongConfig) -> ProgramMaker:
    """Round-trip latency probe (requires exactly 2 threads)."""

    def maker(n_threads: int) -> Callable:
        if n_threads != 2:
            raise ValueError("pingpong needs exactly 2 threads")

        def factory(rt):
            coll = Collection(
                "payload",
                make_distribution(2, 2, "block"),
                element_nbytes=cfg.nbytes,
            )
            coll.poke(0, np.zeros(max(1, cfg.nbytes // 8)))
            coll.poke(1, np.arange(max(1, cfg.nbytes // 8), dtype=float))

            def body(ctx: ThreadCtx):
                if ctx.tid == 0:
                    for _ in range(cfg.rounds):
                        data = yield from ctx.get(coll, 1, nbytes=cfg.nbytes)
                        if cfg.verify and len(data) and data[-1] != len(data) - 1:
                            raise AssertionError("pingpong: payload corrupted")
                yield from ctx.barrier()

            return body

        return factory

    return maker


@dataclass
class BarrierProbeConfig:
    """All threads enter ``episodes`` back-to-back barriers."""

    episodes: int = 16

    def __post_init__(self):
        if self.episodes < 1:
            raise ValueError(f"episodes must be >= 1, got {self.episodes}")


def barrier_program(cfg: BarrierProbeConfig) -> ProgramMaker:
    """Barrier latency probe."""

    def maker(n_threads: int) -> Callable:
        def factory(rt):
            def body(ctx: ThreadCtx):
                for _ in range(cfg.episodes):
                    yield from ctx.barrier()

            return body

        return factory

    return maker


@dataclass
class ComputeProbeConfig:
    """Each thread charges ``flops`` of pure computation (the paper's
    "simple floating point benchmark" used to rate machines)."""

    flops: float = 1.0e5

    def __post_init__(self):
        if self.flops <= 0:
            raise ValueError(f"flops must be > 0, got {self.flops}")


def compute_program(cfg: ComputeProbeConfig) -> ProgramMaker:
    """MFLOPS-rating probe."""

    def maker(n_threads: int) -> Callable:
        def factory(rt):
            def body(ctx: ThreadCtx):
                yield from ctx.compute(cfg.flops)
                yield from ctx.barrier()

            return body

        return factory

    return maker
