"""Poisson — fast Poisson solver analog (DST + tridiagonal solve).

The classical fast solver for ``-lap(u) = f`` on a square with
homogeneous Dirichlet boundaries:

1. discrete sine transform (DST-I) along every row — local, rows are
   block-distributed;
2. **transpose** the grid — the all-to-all exchange: every thread reads
   one ``(rows_i x rows_j)`` block from every other thread;
3. solve the decoupled tridiagonal systems along the (now local)
   transformed dimension — Thomas algorithm per row;
4. transpose back;
5. inverse DST along rows — local.

The two transposes are the only communication and they are all-to-all,
which is why Poisson's "growing communication bottleneck ... is not
significant until 32 processors" (Figure 6): below that, the O(S log S)
local transforms dominate.

Verification: the result must satisfy the discrete Poisson equation
(residual to float tolerance) and match a dense direct solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.bench.base import FLOPS_PER_TRIDIAG_ROW, ProgramMaker, block_range
from repro.pcxx import Collection, make_distribution
from repro.pcxx.runtime import ThreadCtx, TracingRuntime
from repro.util.rng import DEFAULT_SEED

#: DST work per point: ~5 log2(S) flops (FFT-based transform).
FLOPS_PER_DST_POINT_LOG = 5


def dst1(a: np.ndarray, axis: int = -1) -> np.ndarray:
    """Type-I discrete sine transform (unnormalised), via odd-extension FFT."""
    n = a.shape[axis]
    a = np.moveaxis(a, axis, -1)
    ext = np.zeros(a.shape[:-1] + (2 * (n + 1),))
    ext[..., 1 : n + 1] = a
    ext[..., n + 2 :] = -a[..., ::-1]
    out = -np.fft.fft(ext)[..., 1 : n + 1].imag
    return np.moveaxis(out, -1, axis)


def idst1(a: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`dst1` (DST-I is its own inverse up to scale)."""
    n = a.shape[axis]
    return dst1(a, axis) / (2.0 * (n + 1))


@dataclass
class PoissonConfig:
    """Problem parameters: an ``size x size`` interior grid."""

    size: int = 64
    seed: int = DEFAULT_SEED
    verify: bool = True

    def __post_init__(self):
        if self.size < 2:
            raise ValueError(f"size must be >= 2, got {self.size}")


def reference_solve(cfg: PoissonConfig, f: np.ndarray) -> np.ndarray:
    """Serial fast solve (same algorithm, global arrays)."""
    s = cfg.size
    lam = 2.0 - 2.0 * np.cos(np.pi * np.arange(1, s + 1) / (s + 1))
    fhat = dst1(dst1(f, axis=0), axis=1)
    uhat = fhat / (lam[:, None] + lam[None, :])
    return idst1(idst1(uhat, axis=0), axis=1)


def residual_norm(u: np.ndarray, f: np.ndarray) -> float:
    """||f - A u|| for the 5-point Laplacian with zero Dirichlet ghosts."""
    padded = np.pad(u, 1)
    au = 4.0 * u - (
        padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
    )
    return float(np.linalg.norm(f - au))


def _thomas_rows(lam: np.ndarray, rows: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Solve (lam_r + 2 - 2cos(k pi/(S+1))) decoupled systems row-wise.

    After the row DST, each row r of the transposed grid is an
    independent tridiagonal system ``(-1, 2 + lam_r, -1)``; this is its
    Thomas solve, vectorised over the row's right-hand side.
    """
    s = data.shape[1]
    out = np.empty_like(data)
    for i, r in enumerate(rows):
        diag = 2.0 + lam[r]
        d = data[i].copy()
        c = np.empty(s)
        # Forward elimination.
        c[0] = -1.0 / diag
        d[0] = d[0] / diag
        for j in range(1, s):
            denom = diag + c[j - 1]
            c[j] = -1.0 / denom
            d[j] = (d[j] + d[j - 1]) / denom
        # Back substitution.
        x = np.empty(s)
        x[-1] = d[-1]
        for j in range(s - 2, -1, -1):
            x[j] = d[j] - c[j] * x[j + 1]
        out[i] = x
    return out


def make_program(cfg: PoissonConfig) -> ProgramMaker:
    """Build the Poisson program factory."""

    def maker(n_threads: int) -> Callable:
        def factory(rt: TracingRuntime):
            n = rt.n_threads
            s = cfg.size
            rng = np.random.default_rng(cfg.seed)
            f = rng.uniform(-1.0, 1.0, (s, s))
            ranges = [block_range(s, n, t) for t in range(n)]
            lam = 2.0 - 2.0 * np.cos(np.pi * np.arange(1, s + 1) / (s + 1))

            rows_per = -(-s // n)
            panels = Collection(
                "panels",
                make_distribution(n, n, "block"),
                element_nbytes=rows_per * s * 8,
            )
            for t in range(n):
                r = ranges[t]
                panels.poke(t, f[r.start : r.stop, :].copy())
            solution: Dict[int, np.ndarray] = {}
            reference = reference_solve(cfg, f) if cfg.verify else None

            def transpose(ctx: ThreadCtx, mine: np.ndarray):
                """All-to-all: publish my panel, read my columns of others."""
                t = ctx.tid
                my_rows = ranges[t]
                yield from ctx.put(panels, t, mine)
                yield from ctx.barrier()
                out = np.zeros((len(my_rows), s))
                for o in range(n):
                    block_rows = ranges[o]
                    if not len(block_rows) or not len(my_rows):
                        continue
                    if o == t:
                        panel = mine
                    else:
                        panel = yield from ctx.get(
                            panels,
                            o,
                            nbytes=max(8, len(block_rows) * len(my_rows) * 8),
                        )
                    out[:, block_rows.start : block_rows.stop] = panel[
                        :, my_rows.start : my_rows.stop
                    ].T
                yield from ctx.barrier()
                return out

            def body(ctx: ThreadCtx):
                t = ctx.tid
                my_rows = ranges[t]
                mine = panels.peek(t)
                nrows = len(my_rows)
                lg = max(1, int(np.ceil(np.log2(s))))

                # 1. DST along rows (local).
                yield from ctx.mark("begin:dst")
                work = dst1(mine, axis=1) if nrows else mine
                yield from ctx.compute(nrows * s * FLOPS_PER_DST_POINT_LOG * lg)
                yield from ctx.mark("end:dst")
                # 2. Transpose.
                yield from ctx.mark("begin:transpose")
                work = yield from transpose(ctx, work)
                yield from ctx.mark("end:transpose")
                # 3. Tridiagonal solves along rows of the transposed grid.
                yield from ctx.mark("begin:solve")
                if nrows:
                    work = _thomas_rows(lam, np.fromiter(my_rows, int), work)
                yield from ctx.compute(nrows * s * FLOPS_PER_TRIDIAG_ROW)
                yield from ctx.mark("end:solve")
                # 4. Transpose back.
                yield from ctx.mark("begin:transpose")
                work = yield from transpose(ctx, work)
                yield from ctx.mark("end:transpose")
                # 5. Inverse DST along rows (local).
                yield from ctx.mark("begin:dst")
                if nrows:
                    work = idst1(work, axis=1)
                yield from ctx.compute(nrows * s * FLOPS_PER_DST_POINT_LOG * lg)
                yield from ctx.mark("end:dst")
                solution[t] = work
                yield from ctx.barrier()

                if cfg.verify and reference is not None and ctx.tid == 0:
                    u = np.vstack(
                        [solution[o] for o in range(n) if len(ranges[o])]
                    )
                    if not np.allclose(u, reference, atol=1e-8):
                        raise AssertionError(
                            "poisson: distributed solve disagrees with the "
                            "serial fast solver"
                        )
                    if residual_norm(u, f) > 1e-6 * np.linalg.norm(f):
                        raise AssertionError(
                            "poisson: solution does not satisfy the discrete "
                            "Poisson equation"
                        )

            return body

        return factory

    return maker
