"""Sort — bitonic sort module analog.

Block-level bitonic sort: each thread owns a block of keys, locally
sorts it, then runs the bitonic merge network over blocks.  Each network
step reads the partner thread's *entire block* (a whole-block remote
transfer) and keeps the low or high half of the merged pair — which is
why Sort is communication-heavy and its speedup saturates early.

``log2(n) * (log2(n)+1) / 2`` merge steps, one barrier each.  The final
global order is verified against ``numpy.sort`` of the initial data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench.base import (
    FLOPS_PER_KEY_MERGE,
    ProgramMaker,
    ilog2,
    require_power_of_two,
)
from repro.pcxx import Collection, make_distribution
from repro.pcxx.runtime import ThreadCtx, TracingRuntime
from repro.util.rng import DEFAULT_SEED

#: Local sort cost: ~c * K * log2(K) compare/moves.
FLOPS_PER_SORT_KEY_LOG = 4


@dataclass
class SortConfig:
    """Problem parameters for Sort.

    ``total_keys`` are dealt into equal blocks (must divide by the
    largest thread count studied).
    """

    total_keys: int = 1 << 14
    seed: int = DEFAULT_SEED
    verify: bool = True

    def __post_init__(self):
        require_power_of_two("total_keys", self.total_keys)


def make_program(cfg: SortConfig) -> ProgramMaker:
    """Build the Sort program factory (n must be a power of two)."""

    def maker(n_threads: int) -> Callable:
        require_power_of_two("sort thread count", n_threads)
        if cfg.total_keys % n_threads:
            raise ValueError(
                f"{cfg.total_keys} keys do not divide over {n_threads} threads"
            )

        def factory(rt: TracingRuntime):
            n = rt.n_threads
            keys_per = cfg.total_keys // n
            rng = np.random.default_rng(cfg.seed)
            data = rng.uniform(0.0, 1.0, cfg.total_keys)
            blocks = Collection(
                "blocks",
                make_distribution(n, n, "block"),
                element_nbytes=keys_per * 8,
            )
            for t in range(n):
                blocks.poke(t, data[t * keys_per : (t + 1) * keys_per].copy())
            reference = np.sort(data) if cfg.verify else None

            def body(ctx: ThreadCtx):
                t = ctx.tid
                mine = yield from ctx.get(blocks, t)
                mine = np.sort(mine)
                yield from ctx.put(blocks, t, mine)
                yield from ctx.compute(
                    keys_per * max(1, ilog2(keys_per)) * FLOPS_PER_SORT_KEY_LOG
                )
                yield from ctx.barrier()
                # Bitonic merge network over blocks.
                stages = ilog2(n) if n > 1 else 0
                for k in range(1, stages + 1):
                    for j in range(k - 1, -1, -1):
                        partner = t ^ (1 << j)
                        ascending = (t & (1 << k)) == 0
                        theirs = yield from ctx.get(
                            blocks, partner, nbytes=keys_per * 8
                        )
                        merged = np.sort(np.concatenate([mine, theirs]))
                        keep_low = (t < partner) == ascending
                        mine = (
                            merged[:keys_per] if keep_low else merged[keys_per:]
                        )
                        yield from ctx.compute(2 * keys_per * FLOPS_PER_KEY_MERGE)
                        yield from ctx.barrier()  # all reads of this step done
                        yield from ctx.put(blocks, t, mine)
                        yield from ctx.barrier()  # new generation published
                if cfg.verify and reference is not None:
                    lo, hi = t * keys_per, (t + 1) * keys_per
                    if not np.allclose(mine, reference[lo:hi]):
                        raise AssertionError(
                            f"sort: thread {t} block disagrees with numpy.sort"
                        )

            return body

        return factory

    return maker
