"""Sparse — NAS random sparse conjugate gradient benchmark analog.

Conjugate gradient on a random sparse symmetric positive-definite
matrix.  Rows (and the matching vector segments) are block-distributed;
each iteration performs:

* a sparse matrix–vector product — every thread gathers the remote
  vector entries its column pattern touches, one remote read per owning
  thread carrying exactly the needed entries;
* two dot products via tree reductions;
* three local axpy/vector updates.

The random pattern makes the gather communication irregular (different
pairs exchange different amounts), which is what distinguishes Sparse
from the regular stencil codes in the suite.  Verification checks the
monotone decrease of the residual and, at the end, agreement of the
iterate with a serial CG run of the same step count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.bench.base import ProgramMaker, block_range
from repro.pcxx import Collection, make_distribution
from repro.pcxx.patterns import all_reduce_via_root
from repro.pcxx.runtime import ThreadCtx, TracingRuntime
from repro.util.rng import DEFAULT_SEED


@dataclass
class SparseConfig:
    """Problem parameters for Sparse.

    ``size`` unknowns, ``density`` expected off-diagonal fill,
    ``iterations`` CG steps.
    """

    size: int = 384
    density: float = 0.05
    iterations: int = 5
    seed: int = DEFAULT_SEED
    verify: bool = True

    def __post_init__(self):
        if self.size < 2:
            raise ValueError(f"size must be >= 2, got {self.size}")
        if not 0.0 < self.density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {self.density}")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")


def build_matrix(cfg: SparseConfig) -> np.ndarray:
    """Random sparse SPD matrix (dense storage; sparse pattern)."""
    rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, cfg.size]))
    mask = rng.random((cfg.size, cfg.size)) < cfg.density
    vals = rng.uniform(-1.0, 1.0, (cfg.size, cfg.size)) * mask
    sym = (vals + vals.T) / 2.0
    # Diagonal dominance makes it SPD.
    np.fill_diagonal(sym, np.abs(sym).sum(axis=1) + 1.0)
    return sym


def build_rhs(cfg: SparseConfig) -> np.ndarray:
    rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, 7]))
    return rng.uniform(-1.0, 1.0, cfg.size)


def serial_cg(
    a: np.ndarray, b: np.ndarray, iterations: int
) -> tuple[np.ndarray, List[float]]:
    """Plain CG; returns the iterate and the residual-norm history."""
    x = np.zeros_like(b)
    r = b - a @ x
    p = r.copy()
    rr = float(r @ r)
    history = [np.sqrt(rr)]
    for _ in range(iterations):
        ap = a @ p
        alpha = rr / float(p @ ap)
        x = x + alpha * p
        r = r - alpha * ap
        rr_new = float(r @ r)
        history.append(np.sqrt(rr_new))
        p = r + (rr_new / rr) * p
        rr = rr_new
    return x, history


def make_program(cfg: SparseConfig) -> ProgramMaker:
    """Build the Sparse program factory."""

    def maker(n_threads: int) -> Callable:
        def factory(rt: TracingRuntime):
            n = rt.n_threads
            a = build_matrix(cfg)
            b = build_rhs(cfg)
            nnz = int(np.count_nonzero(a))
            ranges = [block_range(cfg.size, n, t) for t in range(n)]

            # Vector segments (one element per thread) for x and p.
            seg_nbytes = max(8, (-(-cfg.size // n)) * 8)
            p_seg = Collection(
                "p_seg", make_distribution(n, n, "block"), element_nbytes=seg_nbytes
            )
            dots = Collection(
                "dots", make_distribution(n, n, "block"), element_nbytes=8
            )
            x_final: Dict[int, np.ndarray] = {}
            reference = serial_cg(a, b, cfg.iterations) if cfg.verify else None

            # Which remote entries each thread's rows touch, per owner.
            needed: List[Dict[int, np.ndarray]] = []
            for t in range(n):
                rows = ranges[t]
                cols = np.unique(np.nonzero(a[list(rows), :])[1]) if len(rows) else np.array([], int)
                per_owner: Dict[int, np.ndarray] = {}
                for o in range(n):
                    if o == t:
                        continue
                    r = ranges[o]
                    sel = cols[(cols >= r.start) & (cols < r.stop)]
                    if sel.size:
                        per_owner[o] = sel
                needed.append(per_owner)

            def body(ctx: ThreadCtx):
                t = ctx.tid
                rows = list(ranges[t])
                a_loc = a[rows, :] if rows else np.zeros((0, cfg.size))
                b_loc = b[rows] if rows else np.zeros(0)
                local_nnz = int(np.count_nonzero(a_loc))

                x = np.zeros(len(rows))
                r = b_loc.copy()
                p = r.copy()
                yield from ctx.put(p_seg, t, p.copy())
                yield from ctx.barrier()

                def dot_global(partial: float):
                    # Every thread needs the global value (it feeds alpha/
                    # beta), so reduce to thread 0 and broadcast back.
                    yield from ctx.compute(2 * len(rows))
                    yield from ctx.put(dots, t, partial)
                    total = yield from all_reduce_via_root(
                        ctx, dots, lambda u, v: u + v, nbytes=8
                    )
                    return float(total)

                rr = yield from dot_global(float(r @ r))
                history = [np.sqrt(rr)]

                for _ in range(cfg.iterations):
                    # Gather the remote p entries this thread's rows need.
                    p_full = np.zeros(cfg.size)
                    if rows:
                        p_full[rows] = p
                    for o, cols in needed[t].items():
                        seg = yield from ctx.get(
                            p_seg, o, nbytes=int(cols.size) * 8
                        )
                        p_full[ranges[o].start : ranges[o].stop] = seg
                    yield from ctx.barrier()
                    ap = a_loc @ p_full
                    yield from ctx.compute(2 * local_nnz)
                    pap = yield from dot_global(float(p @ ap))
                    alpha = rr / pap
                    x = x + alpha * p
                    r = r - alpha * ap
                    yield from ctx.compute(4 * len(rows))
                    rr_new = yield from dot_global(float(r @ r))
                    history.append(np.sqrt(rr_new))
                    p = r + (rr_new / rr) * p
                    rr = rr_new
                    yield from ctx.compute(2 * len(rows))
                    yield from ctx.put(p_seg, t, p.copy())
                    yield from ctx.barrier()

                x_final[t] = x
                yield from ctx.barrier()
                if cfg.verify and reference is not None and ctx.tid == 0:
                    ref_x, ref_hist = reference
                    got_hist = np.array(history)
                    if not np.allclose(got_hist, ref_hist, rtol=1e-8):
                        raise AssertionError(
                            "sparse: residual history disagrees with serial CG"
                        )
                    got_x = np.concatenate(
                        [x_final[o] for o in range(n) if len(ranges[o])]
                    )
                    if not np.allclose(got_x, ref_x, rtol=1e-8, atol=1e-10):
                        raise AssertionError(
                            "sparse: CG iterate disagrees with serial CG"
                        )
                    if got_hist[-1] >= got_hist[0]:
                        raise AssertionError(
                            "sparse: CG failed to reduce the residual "
                            f"({got_hist[0]:g} -> {got_hist[-1]:g})"
                        )

            return body

        return factory

    return maker
