"""Shared machinery for the patch-based stencil benchmarks (Grid, Mgrid).

The 2-D domain is a grid of *patches*; the patch collection is
(BLOCK, BLOCK)-distributed — reproducing the paper's distribution rule
whose integer-sqrt thread grid idles processors at non-square counts
(the Grid/Mgrid "no improvement from 4 to 8 processors" artifact, §4.1).

Ghost exchange mirrors what the pC++ Grid code's trace revealed: for
each remote neighbour patch, the runtime performs a tiny control read
(2 bytes — a generation/status word) and a boundary read (one edge of
the patch, ``m * 8`` bytes) — the paper's "2 and 128 bytes" actual
transfer sizes, versus the whole-element size that compiler-level size
recording reports.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

import numpy as np

from repro.pcxx import Collection
from repro.pcxx.runtime import ThreadCtx

#: The actual size of the per-neighbour control read (paper: 2 bytes).
FLAG_NBYTES = 2

#: side name -> (dr, dc) offsets
SIDES: Dict[str, Tuple[int, int]] = {
    "north": (-1, 0),
    "south": (1, 0),
    "west": (0, -1),
    "east": (0, 1),
}


def fetch_ghosts(
    ctx: ThreadCtx,
    coll: Collection,
    patch_index: Tuple[int, int],
    m: int,
    patch_rows: int,
    patch_cols: int,
) -> Generator:
    """Read the four neighbour boundaries of one ``m x m`` patch.

    Returns ``{side: vector}`` of length-m ghost values; domain edges get
    zeros (homogeneous Dirichlet).  Remote neighbour reads record the
    paper's two actual transfer sizes (flag + boundary).
    """
    pr, pc = patch_index
    ghosts: Dict[str, np.ndarray] = {}
    for side, (dr, dc) in SIDES.items():
        nr, nc = pr + dr, pc + dc
        if not (0 <= nr < patch_rows and 0 <= nc < patch_cols):
            ghosts[side] = np.zeros(m)
            continue
        # Generation/status check, then the boundary itself.
        yield from ctx.get(coll, (nr, nc), nbytes=FLAG_NBYTES)
        nbr = yield from ctx.get(coll, (nr, nc), nbytes=m * 8)
        if side == "north":
            ghosts[side] = nbr[-1, :]
        elif side == "south":
            ghosts[side] = nbr[0, :]
        elif side == "west":
            ghosts[side] = nbr[:, -1]
        else:
            ghosts[side] = nbr[:, 0]
    return ghosts


def jacobi_update(
    u: np.ndarray, ghosts: Dict[str, np.ndarray], h2f: np.ndarray, omega: float = 1.0
) -> np.ndarray:
    """One (weighted) Jacobi sweep of ``-lap(u) = f`` on one patch.

    ``h2f`` is ``h^2 * f`` for the patch; ghost vectors supply neighbour
    values across patch edges (zeros at the domain boundary).
    """
    m = u.shape[0]
    padded = np.zeros((m + 2, m + 2))
    padded[1:-1, 1:-1] = u
    padded[0, 1:-1] = ghosts["north"]
    padded[-1, 1:-1] = ghosts["south"]
    padded[1:-1, 0] = ghosts["west"]
    padded[1:-1, -1] = ghosts["east"]
    neighbours = (
        padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
    )
    new = 0.25 * (neighbours + h2f)
    if omega == 1.0:
        return new
    return u + omega * (new - u)


def patch_residual(
    u: np.ndarray, ghosts: Dict[str, np.ndarray], h2f: np.ndarray
) -> np.ndarray:
    """Residual ``h^2 * (f - A u)`` on one patch (same ghost convention)."""
    m = u.shape[0]
    padded = np.zeros((m + 2, m + 2))
    padded[1:-1, 1:-1] = u
    padded[0, 1:-1] = ghosts["north"]
    padded[-1, 1:-1] = ghosts["south"]
    padded[1:-1, 0] = ghosts["west"]
    padded[1:-1, -1] = ghosts["east"]
    neighbours = (
        padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
    )
    return h2f - (4.0 * u - neighbours)


def serial_jacobi(
    grid: np.ndarray, h2f: np.ndarray, iterations: int, omega: float = 1.0
) -> np.ndarray:
    """Global-array Jacobi reference (zero ghosts beyond the domain)."""
    u = grid.copy()
    for _ in range(iterations):
        padded = np.pad(u, 1)
        neighbours = (
            padded[:-2, 1:-1]
            + padded[2:, 1:-1]
            + padded[1:-1, :-2]
            + padded[1:-1, 2:]
        )
        new = 0.25 * (neighbours + h2f)
        u = new if omega == 1.0 else u + omega * (new - u)
    return u


def serial_residual(u: np.ndarray, h2f: np.ndarray) -> np.ndarray:
    """Global-array residual reference."""
    padded = np.pad(u, 1)
    neighbours = (
        padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
    )
    return h2f - (4.0 * u - neighbours)


def assemble_global(
    coll: Collection, patch_rows: int, patch_cols: int, m: int
) -> np.ndarray:
    """Stitch a patch collection back into one global array (debug/verify)."""
    out = np.zeros((patch_rows * m, patch_cols * m))
    for pr in range(patch_rows):
        for pc in range(patch_cols):
            out[pr * m : (pr + 1) * m, pc * m : (pc + 1) * m] = coll.peek((pr, pc))
    return out


def split_into_patches(
    grid: np.ndarray, patch_rows: int, patch_cols: int, m: int
) -> Dict[Tuple[int, int], np.ndarray]:
    """Inverse of :func:`assemble_global`."""
    if grid.shape != (patch_rows * m, patch_cols * m):
        raise ValueError(
            f"grid shape {grid.shape} does not match "
            f"{patch_rows}x{patch_cols} patches of {m}x{m}"
        )
    return {
        (pr, pc): grid[pr * m : (pr + 1) * m, pc * m : (pc + 1) * m].copy()
        for pr in range(patch_rows)
        for pc in range(patch_cols)
    }
