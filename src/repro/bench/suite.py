"""Benchmark registry (paper Table 2 + Matmul).

Lazy imports keep ``import repro.bench`` cheap; benchmark modules pull
in scipy/numpy machinery only when used.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.bench.base import ProgramMaker


@dataclass(frozen=True)
class BenchmarkInfo:
    """Registry entry for one benchmark."""

    name: str
    description: str
    module: str
    config_name: str
    #: thread counts must be powers of two (pairwise-exchange benchmarks)
    power_of_two_only: bool = False

    def config_cls(self) -> type:
        return getattr(importlib.import_module(self.module), self.config_name)

    def make_config(self, **overrides: Any):
        return self.config_cls()(**overrides)

    def make_program(self, cfg: Any = None, **overrides: Any) -> ProgramMaker:
        mod = importlib.import_module(self.module)
        if cfg is None:
            cfg = self.make_config(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or overrides, not both")
        return mod.make_program(cfg)


#: All benchmarks, keyed by name; descriptions are Table 2's.
BENCHMARKS: Dict[str, BenchmarkInfo] = {
    b.name: b
    for b in [
        BenchmarkInfo(
            "embar",
            'NAS "embarrassingly parallel" benchmark',
            "repro.bench.embar",
            "EmbarConfig",
        ),
        BenchmarkInfo(
            "cyclic",
            "Cyclic reduction computation",
            "repro.bench.cyclic",
            "CyclicConfig",
            power_of_two_only=True,
        ),
        BenchmarkInfo(
            "sparse",
            "NAS random sparse conjugate gradient benchmark",
            "repro.bench.sparse",
            "SparseConfig",
        ),
        BenchmarkInfo(
            "grid",
            "Poisson equation on a two dimensional grid",
            "repro.bench.grid",
            "GridConfig",
        ),
        BenchmarkInfo(
            "mgrid",
            "NAS multigrid solver benchmark",
            "repro.bench.mgrid",
            "MgridConfig",
        ),
        BenchmarkInfo(
            "poisson",
            "Fast Poisson solver",
            "repro.bench.poisson",
            "PoissonConfig",
        ),
        BenchmarkInfo(
            "sort",
            "Bitonic sort module",
            "repro.bench.sort",
            "SortConfig",
            power_of_two_only=True,
        ),
        BenchmarkInfo(
            "matmul",
            "Matrix multiply used for the CM-5 validation (§4.2)",
            "repro.bench.matmul",
            "MatmulConfig",
        ),
    ]
}


def get_benchmark(name: str) -> BenchmarkInfo:
    """Look up a benchmark by name."""
    try:
        return BENCHMARKS[name.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}"
        ) from None
