"""Fitting extrapolation parameters from target-machine measurements.

The paper's Table 3 values came from published CM-5 microbenchmarks
(Kwan, Totty & Reed) plus a floating-point rating of each machine.
This module reproduces that workflow against *any*
:class:`~repro.machine.spec.MachineSpec`: run the probe programs of
:mod:`repro.bench.micro` on the reference machine, fit the effective
costs, and emit a :class:`SimulationParameters` ready for
extrapolation.

The fit is deliberately *effective*, not structural: the round-trip
time lumps the owner's service time into the start-up constant, exactly
as a measurement-derived parameter set would.  The point — demonstrated
by ``tests/test_calibrate.py`` — is that predictions made with the
fitted set track the machine at least as well as hand-written presets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.bench.micro import (
    BarrierProbeConfig,
    ComputeProbeConfig,
    PingPongConfig,
    barrier_program,
    compute_program,
    pingpong_program,
)
from repro.core.parameters import (
    BarrierParams,
    NetworkParams,
    ProcessorParams,
    SimulationParameters,
)
from repro.machine import CM5_SPEC, MachineSpec, run_on_machine
from repro.pcxx.runtime import SUN4_MFLOPS


@dataclass(frozen=True)
class CalibrationReport:
    """Raw probe measurements and the fitted values."""

    roundtrip_small: float
    roundtrip_large: float
    small_nbytes: int
    large_nbytes: int
    byte_transfer_time: float
    comm_startup_time: float
    barrier_time: float
    target_mflops: float
    mips_ratio: float

    def summary(self) -> str:
        return (
            f"round-trip {self.small_nbytes}B: {self.roundtrip_small:.2f} us, "
            f"{self.large_nbytes}B: {self.roundtrip_large:.2f} us -> "
            f"ByteTransferTime {self.byte_transfer_time:.4f} us/B, "
            f"CommStartupTime {self.comm_startup_time:.2f} us; "
            f"barrier {self.barrier_time:.2f} us; "
            f"MipsRatio {self.mips_ratio:.3f}"
        )


def measure_roundtrip(spec: MachineSpec, nbytes: int, rounds: int = 32) -> float:
    """Mean request/reply round-trip for ``nbytes`` payloads."""
    cfg = PingPongConfig(nbytes=nbytes, rounds=rounds, verify=False)
    res = run_on_machine(pingpong_program(cfg)(2), 2, spec=spec, name="pingpong")
    # Subtract the trailing barrier cost measured separately.
    barrier = measure_barrier(spec, 2, episodes=1)
    total = res.execution_time - barrier
    return max(0.0, total) / rounds


def measure_barrier(spec: MachineSpec, n: int, episodes: int = 16) -> float:
    """Mean cost of one barrier episode at ``n`` nodes."""
    cfg = BarrierProbeConfig(episodes=episodes)
    res = run_on_machine(barrier_program(cfg)(n), n, spec=spec, name="barrier")
    return res.execution_time / episodes


def measure_mflops(spec: MachineSpec, flops: float = 1.0e5) -> float:
    """Node floating-point rating from the compute probe."""
    cfg = ComputeProbeConfig(flops=flops)
    res = run_on_machine(compute_program(cfg)(1), 1, spec=spec, name="compute")
    barrier = measure_barrier(spec, 1, episodes=1)
    compute_time = res.execution_time - barrier
    if compute_time <= 0:
        raise RuntimeError("compute probe vanished; flops too small")
    return flops / compute_time


def calibrate(
    spec: MachineSpec = CM5_SPEC,
    *,
    trace_mflops: float = SUN4_MFLOPS,
    small_nbytes: int = 64,
    large_nbytes: int = 4096,
    barrier_nodes: int = 8,
) -> Tuple[SimulationParameters, CalibrationReport]:
    """Fit a full parameter set for ``spec`` from probe runs.

    Returns the parameters plus the raw measurement report.
    """
    if large_nbytes <= small_nbytes:
        raise ValueError("large_nbytes must exceed small_nbytes")
    rt_small = measure_roundtrip(spec, small_nbytes)
    rt_large = measure_roundtrip(spec, large_nbytes)

    # One round trip moves the payload twice through an endpoint port in
    # each direction once; the request is payload-independent.  Fit:
    #   rt(s) = 2*startup_eff + slope * s
    # where slope absorbs injection+ejection occupancy of the reply.
    slope = (rt_large - rt_small) / (large_nbytes - small_nbytes)
    byte_time = slope / 2.0  # per-byte, per traversal direction-equivalent
    startup_eff = (rt_small - slope * small_nbytes) / 2.0

    barrier_time = measure_barrier(spec, barrier_nodes)
    target_mflops = measure_mflops(spec)
    mips_ratio = trace_mflops / target_mflops

    params = SimulationParameters(
        processor=ProcessorParams(
            mips_ratio=mips_ratio,
            policy="interrupt",
            # service cost is folded into the fitted start-up
            request_service_time=0.0,
            msg_build_time=0.0,
            interrupt_overhead=0.0,
        ),
        network=NetworkParams(
            comm_startup_time=max(0.0, startup_eff),
            byte_transfer_time=max(0.0, byte_time),
            topology="fattree",
            hop_time=0.0,  # folded into start-up by the fit
            contention=True,
        ),
        barrier=BarrierParams(
            entry_time=0.0,
            exit_time=0.0,
            check_time=0.0,
            exit_check_time=0.0,
            model_time=barrier_time,
            by_msgs=False,
            msg_size=0,
            algorithm="hardware",
        ),
        name=f"calibrated-{spec.name}",
    )
    report = CalibrationReport(
        roundtrip_small=rt_small,
        roundtrip_large=rt_large,
        small_nbytes=small_nbytes,
        large_nbytes=large_nbytes,
        byte_transfer_time=byte_time,
        comm_startup_time=max(0.0, startup_eff),
        barrier_time=barrier_time,
        target_mflops=target_mflops,
        mips_ratio=mips_ratio,
    )
    return params, report
