"""The ``extrap`` command-line interface.

Subcommands::

    extrap list                      # benchmarks, presets, experiments
    extrap trace  <bench> -n 8 -o t.jsonl [--size-mode actual]
    extrap predict <trace> --preset cm5 [--set processor.mips_ratio=0.5]
    extrap report  <trace> --preset cm5      # full debugging report
    extrap study  <bench> --preset distributed_memory -p 1,2,4,8,16,32
    extrap machine <bench> -n 8              # reference CM-5 direct run
    extrap experiment fig4 [--paper]
    extrap bench [-o BENCH_engine.json]      # engine perf trajectory
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List

from repro.bench.suite import BENCHMARKS, get_benchmark
from repro.core import presets
from repro.core.parameters import SimulationParameters
from repro.core.pipeline import extrapolate, measure
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.metrics.scaling import run_scaling_study
from repro.trace import read_trace, write_trace


def _parse_counts(spec: str) -> List[int]:
    try:
        return [int(x) for x in spec.split(",") if x.strip()]
    except ValueError:
        raise SystemExit(f"bad processor-count list {spec!r}; expected e.g. 1,2,4")


def _apply_overrides(params: SimulationParameters, sets: List[str]) -> SimulationParameters:
    groups: Dict[str, Dict[str, Any]] = {}
    for item in sets:
        try:
            key, raw = item.split("=", 1)
            group, field_ = key.split(".", 1)
        except ValueError:
            raise SystemExit(
                f"bad --set {item!r}; expected group.field=value "
                "(e.g. processor.mips_ratio=0.5)"
            )
        value: Any
        lowered = raw.strip().lower()
        if lowered in ("true", "false"):
            value = lowered == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        groups.setdefault(group, {})[field_] = value
    return params.with_(**groups) if groups else params


def cmd_list(_args) -> int:
    print("benchmarks:")
    for name, info in BENCHMARKS.items():
        print(f"  {name:8s} {info.description}")
    print("presets:")
    for name in sorted(presets.PRESETS):
        print(f"  {name}")
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    return 0


def cmd_trace(args) -> int:
    info = get_benchmark(args.benchmark)
    maker = info.make_program()
    trace = measure(
        maker(args.n), args.n, name=args.benchmark, size_mode=args.size_mode
    )
    path = write_trace(trace, args.output)
    print(f"wrote {len(trace)} events for {args.n} threads to {path}")
    if trace.race_findings:
        print(
            f"WARNING: {len(trace.race_findings)} same-epoch read/write "
            "conflicts — extrapolation may not be valid for this program "
            "(see repro.pcxx.races)"
        )
    return 0


def cmd_predict(args) -> int:
    trace = read_trace(args.trace)
    params = _apply_overrides(presets.by_name(args.preset), args.set or [])
    outcome = extrapolate(trace, params, profile=args.profile)
    print(params.describe())
    print(f"measured trace: {outcome.trace_stats.summary()}")
    print(f"ideal execution time:     {outcome.ideal_time:12.1f} us")
    print(f"predicted execution time: {outcome.predicted_time:12.1f} us")
    print(outcome.result.summary())
    if outcome.result.profile is not None:
        from repro.metrics.report import profile_section

        print(profile_section(outcome.result))
    return 0


def cmd_report(args) -> int:
    from repro.metrics.report import full_report

    trace = read_trace(args.trace)
    params = _apply_overrides(presets.by_name(args.preset), args.set or [])
    outcome = extrapolate(trace, params, profile=args.profile)
    print(full_report(outcome))
    return 0


def cmd_bench(args) -> int:
    from repro.perf.bench import (
        format_results,
        load_baseline,
        run_benchmarks,
        write_baseline,
    )

    results = run_benchmarks(scale=args.scale, repeats=args.repeats)
    baseline = None
    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        # The default baseline is optional; an explicit one must exist.
        if args.baseline != "BENCH_engine.json":
            print(f"warning: baseline {args.baseline} not found", file=sys.stderr)
    except ValueError as exc:
        print(f"warning: ignoring baseline {args.baseline}: {exc}", file=sys.stderr)
    print(format_results(results, baseline))
    if args.output:
        print(f"wrote {write_baseline(results, args.output)}")
    return 0


def cmd_machine(args) -> int:
    from repro.machine import run_on_machine

    info = get_benchmark(args.benchmark)
    maker = info.make_program()
    result = run_on_machine(maker(args.n), args.n, name=args.benchmark)
    print(result.summary())
    for node in result.nodes:
        print(
            f"  node {node.pid}: compute {node.compute_time:.1f} us, "
            f"{node.remote_accesses} remote accesses, "
            f"{node.requests_served} served, "
            f"barrier {node.barrier_time:.1f} us"
        )
    return 0


def cmd_compare(args) -> int:
    from repro.metrics import derive_metrics
    from repro.util.tables import format_table

    trace = read_trace(args.trace)
    rows = []
    base_time = None
    for preset_name in args.presets:
        params = presets.by_name(preset_name)
        outcome = extrapolate(trace, params)
        m = derive_metrics(outcome.result)
        if base_time is None:
            base_time = m.execution_time
        rows.append(
            [
                preset_name,
                m.execution_time,
                m.execution_time / base_time,
                m.utilization,
                outcome.result.total_comm_time(),
                outcome.result.total_barrier_time(),
            ]
        )
    print(
        format_table(
            [
                "environment",
                "predicted us",
                "vs first",
                "util",
                "comm us",
                "barrier us",
            ],
            rows,
            title=f"{trace.meta.program or 'trace'} across environments "
            f"({trace.meta.n_threads} threads)",
        )
    )
    return 0


def cmd_calibrate(args) -> int:
    from repro.calibrate import calibrate

    params, report = calibrate()
    print("probe measurements on the reference machine:")
    print(f"  {report.summary()}")
    print()
    print(params.describe())
    return 0


def cmd_study(args) -> int:
    info = get_benchmark(args.benchmark)
    params = _apply_overrides(presets.by_name(args.preset), args.set or [])
    counts = _parse_counts(args.processors)
    if info.power_of_two_only:
        counts = [p for p in counts if (p & (p - 1)) == 0]
    study = run_scaling_study(
        info.make_program(),
        params,
        name=args.benchmark,
        processor_counts=counts,
        size_mode=args.size_mode,
    )
    print(study.format())
    return 0


def cmd_experiment(args) -> int:
    result = run_experiment(args.name, quick=not args.paper)
    print(result.format())
    return 0


def cmd_reproduce(args) -> int:
    from repro.experiments.reproduce import reproduce

    index = reproduce(
        args.out,
        quick=not args.paper,
        experiments=args.only or None,
    )
    print(f"wrote {index}")
    print(index.read_text())
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="extrap",
        description="Performance extrapolation of parallel programs (ICPP'95 reproduction)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, presets and experiments")

    t = sub.add_parser("trace", help="measure a benchmark on 1 virtual processor")
    t.add_argument("benchmark", choices=sorted(BENCHMARKS))
    t.add_argument("-n", type=int, default=8, help="number of threads")
    t.add_argument("-o", "--output", default="trace.jsonl", help=".jsonl or .bin")
    t.add_argument(
        "--size-mode", choices=("compiler", "actual"), default="compiler"
    )

    p = sub.add_parser("predict", help="extrapolate a trace to a target environment")
    p.add_argument("trace", help="trace file from 'extrap trace'")
    p.add_argument("--preset", default="distributed_memory")
    p.add_argument(
        "--set",
        action="append",
        metavar="group.field=value",
        help="override a parameter, e.g. processor.mips_ratio=0.5",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="collect and print engine counters / phase timers",
    )

    r = sub.add_parser("report", help="full debugging report for a trace")
    r.add_argument("trace", help="trace file from 'extrap trace'")
    r.add_argument("--preset", default="distributed_memory")
    r.add_argument("--set", action="append", metavar="group.field=value")
    r.add_argument(
        "--profile",
        action="store_true",
        help="include the engine profile section in the report",
    )

    b = sub.add_parser(
        "bench", help="run the engine benchmark harness (BENCH_engine.json)"
    )
    b.add_argument("-o", "--output", default=None, help="write baseline JSON here")
    b.add_argument("--scale", type=float, default=1.0)
    b.add_argument("--repeats", type=int, default=3)
    b.add_argument(
        "--baseline",
        default="BENCH_engine.json",
        help="baseline to compare against (if present)",
    )

    m = sub.add_parser("machine", help="run a benchmark on the reference CM-5")
    m.add_argument("benchmark", choices=sorted(BENCHMARKS))
    m.add_argument("-n", type=int, default=8, help="number of nodes")

    sub.add_parser(
        "calibrate",
        help="fit extrapolation parameters from reference-machine probes",
    )

    cp = sub.add_parser(
        "compare", help="extrapolate one trace to several environments"
    )
    cp.add_argument("trace")
    cp.add_argument(
        "presets",
        nargs="+",
        choices=sorted(presets.PRESETS),
        help="presets to compare (first is the baseline)",
    )

    s = sub.add_parser("study", help="processor-scaling study for a benchmark")
    s.add_argument("benchmark", choices=sorted(BENCHMARKS))
    s.add_argument("--preset", default="distributed_memory")
    s.add_argument("-p", "--processors", default="1,2,4,8,16,32")
    s.add_argument(
        "--size-mode", choices=("compiler", "actual"), default="compiler"
    )
    s.add_argument("--set", action="append", metavar="group.field=value")

    e = sub.add_parser("experiment", help="regenerate a paper figure/table")
    e.add_argument("name", choices=sorted(EXPERIMENTS))
    e.add_argument(
        "--paper", action="store_true", help="paper-scale problem sizes (slower)"
    )

    rp = sub.add_parser(
        "reproduce", help="run every experiment, write reports to a directory"
    )
    rp.add_argument("--out", default="results", help="output directory")
    rp.add_argument("--paper", action="store_true")
    rp.add_argument(
        "--only",
        action="append",
        metavar="EXPERIMENT",
        help="restrict to specific experiments (repeatable)",
    )

    return ap


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "trace": cmd_trace,
        "predict": cmd_predict,
        "report": cmd_report,
        "bench": cmd_bench,
        "machine": cmd_machine,
        "calibrate": cmd_calibrate,
        "compare": cmd_compare,
        "study": cmd_study,
        "experiment": cmd_experiment,
        "reproduce": cmd_reproduce,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
