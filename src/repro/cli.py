"""The ``extrap`` command-line interface.

Subcommands::

    extrap list                      # benchmarks, presets, experiments
    extrap trace  <bench> -n 8 -o t.jsonl [--size-mode actual]
    extrap predict <trace> --preset cm5 [--set processor.mips_ratio=0.5]
    extrap predict <trace> --sample [--max-phases 8]  # SimPoint-style estimate
    extrap predict <trace> --timeline run.json   # record the simulation
    extrap timeline run.json --ascii             # render / convert it
    extrap timeline run.json --diagnose [--json] # anomaly report
    extrap predict <trace> --faults plan.json    # unreliable machine
    extrap validate <trace> [--no-global-barriers]  # structural checks
    extrap validate <trace> --sample-report  # sampling plan, no simulation
    extrap validate <trace> --diagnose --faults plan.json  # detector check
    extrap report  <trace> --preset cm5      # full debugging report
    extrap study  <bench> --preset distributed_memory -p 1,2,4,8,16,32
    extrap machine <bench> -n 8              # reference CM-5 direct run
    extrap experiment fig4 [--paper] [--jobs 4]
    extrap sweep run spec.json --trace t.jsonl --jobs 4   # design-space sweep
    extrap sweep stats|prune [--cache-dir D] # sweep result cache upkeep
    extrap serve --port 8787 --trace-root traces/  # HTTP prediction service
    extrap bench [-o BENCH_engine.json]      # engine perf trajectory

Global flags: ``-v``/``-vv`` or ``--log-level LEVEL`` control status
chatter on stderr (primary artifacts always go to stdout).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List

from repro.bench.suite import BENCHMARKS, get_benchmark
from repro.core import presets
from repro.core.parameters import SimulationParameters
from repro.core.pipeline import extrapolate, measure
from repro.des import SimulationStalled
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.faults import load_fault_plan
from repro.metrics.scaling import run_scaling_study
from repro.sweep.cache import DEFAULT_CACHE_DIR
from repro.trace import TraceReadError, read_trace, write_trace
from repro.util.atomic import atomic_write_text
from repro.util.log import get_logger, level_from_verbosity, setup_logging

log = get_logger("cli")

#: exit code for missing/unreadable input files (argparse uses 2 for
#: usage errors; we match it — the shell convention for "bad invocation")
EXIT_INPUT_ERROR = 2


def _input_error(msg: str) -> int:
    """One-line error on stderr, nonzero exit — never a traceback."""
    print(f"extrap: error: {msg}", file=sys.stderr)
    return EXIT_INPUT_ERROR


def _require_file(path: str, what: str = "input file") -> str | None:
    """Error message if ``path`` is not an existing file, else None."""
    p = Path(path)
    if not p.exists():
        return f"{what} not found: {path}"
    if p.is_dir():
        return f"{what} is a directory: {path}"
    return None


def _load_trace(path: str):
    """``(trace, None)`` or ``(None, error message)`` for a trace path.

    Folds the existence check and the malformed-file diagnosis into one
    place so every trace-consuming subcommand exits 2 with a one-line
    ``file:line: what`` message instead of a traceback.
    """
    problem = _require_file(path, "trace file")
    if problem:
        return None, problem
    try:
        return read_trace(path), None
    except (TraceReadError, ValueError) as exc:
        return None, str(exc)
    except OSError as exc:
        return None, f"cannot read trace {path}: {exc}"


def _load_faults(args, params: SimulationParameters):
    """``(params with the --faults plan applied, None)`` or ``(None, error)``."""
    path = getattr(args, "faults", None)
    if not path:
        return params, None
    problem = _require_file(path, "fault plan")
    if problem:
        return None, problem
    try:
        plan = load_fault_plan(path)
    except ValueError as exc:
        return None, str(exc)
    log.info("fault plan: %s", plan.describe())
    return params.with_faults(plan), None


def _parse_counts(spec: str) -> List[int]:
    try:
        return [int(x) for x in spec.split(",") if x.strip()]
    except ValueError:
        raise ValueError(
            f"bad processor-count list {spec!r}; expected e.g. 1,2,4"
        ) from None


def _parse_override_value(raw: str) -> Any:
    lowered = raw.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def _apply_overrides(params: SimulationParameters, sets: List[str]) -> SimulationParameters:
    """Apply ``--set group.field=value`` items; ValueError on any bad one."""
    from repro.sweep.spec import apply_param_overrides

    overrides: Dict[str, Any] = {}
    for item in sets:
        key, eq, raw = item.partition("=")
        if not eq or "." not in key:
            raise ValueError(
                f"bad --set {item!r}; expected group.field=value "
                "(e.g. processor.mips_ratio=0.5)"
            )
        overrides[key] = _parse_override_value(raw)
    return apply_param_overrides(params, overrides)


def _resolve_params(args):
    """``(preset + --set overrides, None)`` or ``(None, error message)``.

    Unknown presets and unknown/misspelled override fields both land
    here as :class:`ValueError` (with did-you-mean hints) instead of
    escaping as tracebacks.
    """
    try:
        params = presets.by_name(args.preset)
        return _apply_overrides(params, args.set or []), None
    except ValueError as exc:
        return None, str(exc)


def _add_sampling_flags(parser: argparse.ArgumentParser) -> None:
    """The sampling knob set shared by ``predict`` and ``validate``."""
    parser.add_argument(
        "--max-phases",
        type=int,
        default=8,
        metavar="K",
        help="cluster count ceiling for --sample / --sample-report",
    )
    parser.add_argument(
        "--interval-events",
        type=int,
        default=0,
        metavar="N",
        help="events per interval for barrier-less traces (0 = auto)",
    )
    parser.add_argument(
        "--sample-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="k-means seed; sampled output is byte-identical per seed",
    )
    parser.add_argument(
        "--sample-mode",
        choices=("auto", "barrier", "events"),
        default="auto",
        help="interval-splitting mode (auto = barriers when present)",
    )


def _sampling_config(args):
    """``(SamplingConfig from the knob flags, None)`` or ``(None, error)``."""
    from repro.sampling import SamplingConfig

    try:
        return (
            SamplingConfig(
                max_phases=args.max_phases,
                interval_events=args.interval_events,
                seed=args.sample_seed,
                mode=args.sample_mode,
            ),
            None,
        )
    except ValueError as exc:
        return None, str(exc)


def cmd_list(_args) -> int:
    print("benchmarks:")
    for name, info in BENCHMARKS.items():
        print(f"  {name:8s} {info.description}")
    print("presets:")
    for name in sorted(presets.PRESETS):
        print(f"  {name}")
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    return 0


def cmd_trace(args) -> int:
    info = get_benchmark(args.benchmark)
    maker = info.make_program()
    log.info("measuring %s with %d threads", args.benchmark, args.n)
    trace = measure(
        maker(args.n), args.n, name=args.benchmark, size_mode=args.size_mode
    )
    try:
        path = write_trace(trace, args.output)
    except (OSError, ValueError) as exc:
        return _input_error(f"cannot write trace to {args.output}: {exc}")
    print(f"wrote {len(trace)} events for {args.n} threads to {path}")
    if trace.race_findings:
        log.warning(
            "%d same-epoch read/write conflicts — extrapolation may not "
            "be valid for this program (see repro.pcxx.races)",
            len(trace.race_findings),
        )
    return 0


def cmd_predict(args) -> int:
    from repro.metrics.report import predict_summary

    trace, problem = _load_trace(args.trace)
    if problem:
        return _input_error(problem)
    params, problem = _resolve_params(args)
    if problem:
        return _input_error(problem)
    params, problem = _load_faults(args, params)
    if problem:
        return _input_error(problem)
    if args.wall_budget is not None and args.wall_budget <= 0:
        return _input_error(
            f"--wall-budget must be > 0, got {args.wall_budget}"
        )
    if args.sample:
        from repro.sampling import estimate_sampled, sampling_section

        if args.timeline is not None:
            return _input_error(
                "--timeline records a full simulation; it cannot be "
                "combined with --sample (drop one of the two)"
            )
        if args.profile:
            return _input_error(
                "--profile instruments a full simulation; it cannot be "
                "combined with --sample (drop one of the two)"
            )
        config, problem = _sampling_config(args)
        if problem:
            return _input_error(problem)
        log.info(
            "sampled extrapolation of %s to %s",
            args.trace, params.name or args.preset,
        )
        try:
            outcome = estimate_sampled(
                trace, params, config, wall_clock_budget=args.wall_budget
            )
        except SimulationStalled as exc:
            return _input_error(str(exc))
        except ValueError as exc:
            return _input_error(str(exc))
        print(predict_summary(params, outcome))
        print(sampling_section(outcome.result))
        return 0
    log.info(
        "extrapolating %s to %s", args.trace, params.name or args.preset
    )
    try:
        outcome = extrapolate(
            trace,
            params,
            profile=args.profile,
            observe=args.timeline is not None,
            wall_clock_budget=args.wall_budget,
        )
    except SimulationStalled as exc:
        return _input_error(str(exc))
    print(predict_summary(params, outcome))
    if args.timeline is not None:
        from repro.obs.export import write_chrome_trace

        try:
            path = write_chrome_trace(outcome.result.timeline, args.timeline)
        except OSError as exc:
            return _input_error(
                f"cannot write timeline to {args.timeline}: {exc}"
            )
        print(f"wrote timeline to {path} (view at https://ui.perfetto.dev)")
    return 0


def cmd_timeline(args) -> int:
    from repro.obs.export import load_chrome_trace, write_counters_csv
    from repro.obs.gantt import ascii_gantt

    if args.json and not args.diagnose:
        return _input_error("--json requires --diagnose")
    problem = _require_file(args.timeline, "timeline file")
    if problem:
        return _input_error(problem)
    try:
        timeline = load_chrome_trace(args.timeline)
    except ValueError as exc:
        return _input_error(str(exc))
    except OSError as exc:
        return _input_error(f"cannot read timeline {args.timeline}: {exc}")
    did_something = False
    if args.diagnose:
        from repro.diagnose import diagnose

        report = diagnose(timeline)
        if args.json:
            sys.stdout.write(report.to_json())
        else:
            print(report.format())
        did_something = True
    if args.ascii:
        print(ascii_gantt(timeline, width=args.width))
        did_something = True
    if args.counter:
        from repro.obs.samplers import counter_points
        from repro.util.asciiplot import ascii_series_plot

        try:
            pts = counter_points(timeline, args.counter, max_points=256)
        except KeyError as exc:
            return _input_error(exc.args[0])
        print(
            ascii_series_plot(
                {args.counter: pts},
                title=f"{args.counter} over simulated time",
                xlabel="t (us)",
                ylabel=args.counter,
            )
        )
        did_something = True
    if args.csv:
        try:
            path = write_counters_csv(timeline, args.csv)
        except OSError as exc:
            return _input_error(f"cannot write CSV to {args.csv}: {exc}")
        print(f"wrote counter CSV to {path}")
        did_something = True
    if args.output:
        from repro.obs.export import write_chrome_trace

        try:
            path = write_chrome_trace(timeline, args.output)
        except OSError as exc:
            return _input_error(f"cannot write timeline to {args.output}: {exc}")
        print(f"wrote normalized timeline to {path}")
        did_something = True
    if not did_something:
        print(timeline.summary())
    return 0


def cmd_report(args) -> int:
    from repro.metrics.report import full_report

    trace, problem = _load_trace(args.trace)
    if problem:
        return _input_error(problem)
    params, problem = _resolve_params(args)
    if problem:
        return _input_error(problem)
    params, problem = _load_faults(args, params)
    if problem:
        return _input_error(problem)
    try:
        outcome = extrapolate(trace, params, profile=args.profile)
    except SimulationStalled as exc:
        return _input_error(str(exc))
    print(full_report(outcome))
    return 0


def cmd_validate(args) -> int:
    from repro.trace.validate import TraceValidationError, validate_trace

    if args.json and not args.diagnose:
        return _input_error("--json requires --diagnose")
    trace, problem = _load_trace(args.trace)
    if problem:
        return _input_error(problem)
    try:
        validate_trace(
            trace, require_global_barriers=not args.no_global_barriers
        )
    except TraceValidationError as exc:
        print(f"{args.trace}: INVALID: {exc}")
        return 1
    if not args.json:
        print(
            f"{args.trace}: ok ({len(trace)} events, "
            f"{trace.meta.n_threads} threads)"
        )
        print(f"{args.trace}: sha256 {trace.digest()}")
    if args.sample_report:
        from repro.sampling import sample_report

        config, problem = _sampling_config(args)
        if problem:
            return _input_error(problem)
        try:
            print(sample_report(trace, config))
        except ValueError as exc:
            return _input_error(str(exc))
    if not args.diagnose:
        return 0
    from repro.diagnose import diagnose

    params, problem = _resolve_params(args)
    if problem:
        return _input_error(problem)
    params, problem = _load_faults(args, params)
    if problem:
        return _input_error(problem)
    try:
        outcome = extrapolate(trace, params, observe=True)
    except SimulationStalled as exc:
        return _input_error(str(exc))
    report = diagnose(outcome.result.timeline)
    if args.json:
        sys.stdout.write(report.to_json())
    else:
        print(report.format())
    return 0


def cmd_bench(args) -> int:
    from repro.perf.bench import (
        format_results,
        load_baseline,
        run_benchmarks,
        write_baseline,
    )

    if args.only:
        from repro.perf.bench import WORKLOADS
        from repro.sweep.spec import suggest

        for name in args.only:
            if name not in WORKLOADS:
                return _input_error(
                    f"unknown bench workload {name!r}"
                    f"{suggest(name, sorted(WORKLOADS))}; "
                    f"available: {', '.join(sorted(WORKLOADS))}"
                )
    results = run_benchmarks(
        scale=args.scale, repeats=args.repeats, workloads=args.only
    )
    baseline = None
    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        # The default baseline is optional; an explicit one must exist
        # (and --update-baseline is about to create it either way).
        if args.baseline != "BENCH_engine.json" or args.update_baseline:
            log.warning("baseline %s not found", args.baseline)
    except ValueError as exc:
        log.warning("ignoring baseline %s: %s", args.baseline, exc)
    print(format_results(results, baseline))
    if args.output:
        print(f"wrote {write_baseline(results, args.output)}")
    if args.update_baseline:
        print(f"wrote {write_baseline(results, args.baseline)}")
    return 0


def cmd_machine(args) -> int:
    from repro.machine import run_on_machine

    info = get_benchmark(args.benchmark)
    maker = info.make_program()
    result = run_on_machine(maker(args.n), args.n, name=args.benchmark)
    print(result.summary())
    for node in result.nodes:
        print(
            f"  node {node.pid}: compute {node.compute_time:.1f} us, "
            f"{node.remote_accesses} remote accesses, "
            f"{node.requests_served} served, "
            f"barrier {node.barrier_time:.1f} us"
        )
    return 0


def cmd_compare(args) -> int:
    from repro.metrics import derive_metrics
    from repro.util.tables import format_table

    trace, problem = _load_trace(args.trace)
    if problem:
        return _input_error(problem)
    rows = []
    base_time = None
    for preset_name in args.presets:
        params = presets.by_name(preset_name)
        outcome = extrapolate(trace, params)
        m = derive_metrics(outcome.result)
        if base_time is None:
            base_time = m.execution_time
        rows.append(
            [
                preset_name,
                m.execution_time,
                m.execution_time / base_time,
                m.utilization,
                outcome.result.total_comm_time(),
                outcome.result.total_barrier_time(),
            ]
        )
    print(
        format_table(
            [
                "environment",
                "predicted us",
                "vs first",
                "util",
                "comm us",
                "barrier us",
            ],
            rows,
            title=f"{trace.meta.program or 'trace'} across environments "
            f"({trace.meta.n_threads} threads)",
        )
    )
    return 0


def cmd_calibrate(args) -> int:
    from repro.calibrate import calibrate

    params, report = calibrate()
    print("probe measurements on the reference machine:")
    print(f"  {report.summary()}")
    print()
    print(params.describe())
    return 0


def cmd_study(args) -> int:
    info = get_benchmark(args.benchmark)
    params, problem = _resolve_params(args)
    if problem:
        return _input_error(problem)
    try:
        counts = _parse_counts(args.processors)
    except ValueError as exc:
        return _input_error(str(exc))
    if not counts:
        return _input_error(
            f"empty processor-count list {args.processors!r}; expected e.g. 1,2,4"
        )
    if info.power_of_two_only:
        counts = [p for p in counts if (p & (p - 1)) == 0]
    study = run_scaling_study(
        info.make_program(),
        params,
        name=args.benchmark,
        processor_counts=counts,
        size_mode=args.size_mode,
    )
    print(study.format())
    return 0


def cmd_experiment(args) -> int:
    if args.jobs < 1:
        return _input_error(f"--jobs must be >= 1, got {args.jobs}")
    result = run_experiment(args.name, quick=not args.paper, jobs=args.jobs)
    print(result.format())
    return 0


def cmd_reproduce(args) -> int:
    from repro.experiments.reproduce import reproduce

    if args.jobs < 1:
        return _input_error(f"--jobs must be >= 1, got {args.jobs}")
    try:
        index = reproduce(
            args.out,
            quick=not args.paper,
            experiments=args.only or None,
            jobs=args.jobs,
        )
    except ValueError as exc:
        return _input_error(str(exc))
    except OSError as exc:
        return _input_error(f"cannot write reports to {args.out}: {exc}")
    print(f"wrote {index}")
    print(index.read_text())
    return 0


def cmd_sweep(args) -> int:
    from repro.sweep import ResultCache, SweepSpec, run_sweep
    from repro.sweep.analyze import format_run

    if args.sweep_command == "stats":
        s = ResultCache(args.cache_dir).stats()
        print(
            f"cache {s['root']}: {s['entries']} entries, {s['bytes']} bytes"
        )
        if s["entries"]:
            print(
                f"  full simulations: {s['full_entries']}  "
                f"sampled estimates: {s['sampled_entries']}"
            )
        if s["sampled_entries"]:
            total = s["sampled_events_total"]
            sim = s["sampled_events_simulated"]
            saved = (total - sim) / total if total else 0.0
            print(
                f"  sampled entries simulated {sim} of {total} trace "
                f"events ({saved:.1%} estimated compute saved)"
            )
        return 0
    if args.sweep_command == "prune":
        removed = ResultCache(args.cache_dir).prune()
        print(f"pruned {removed} cache entries from {args.cache_dir}")
        return 0

    if args.jobs < 1:
        return _input_error(f"--jobs must be >= 1, got {args.jobs}")
    if args.retries < 0:
        return _input_error(f"--retries must be >= 0, got {args.retries}")
    if args.wall_budget is not None and args.wall_budget <= 0:
        return _input_error(
            f"--wall-budget must be > 0, got {args.wall_budget}"
        )
    problem = _require_file(args.spec, "sweep spec")
    if problem:
        return _input_error(problem)
    try:
        spec = SweepSpec.from_file(args.spec)
    except ValueError as exc:
        return _input_error(str(exc))
    trace = None
    if args.trace:
        trace, problem = _load_trace(args.trace)
        if problem:
            return _input_error(problem)
    elif spec.benchmark is None:
        return _input_error(
            "sweep needs a trace (--trace FILE) or a 'benchmark' field "
            "in the spec"
        )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    log.info(
        "sweep %s: %d points, jobs=%d, cache=%s",
        spec.name, len(spec), args.jobs,
        "off" if cache is None else args.cache_dir,
    )
    try:
        run = run_sweep(
            spec,
            trace=trace,
            jobs=args.jobs,
            cache=cache,
            wall_budget=args.wall_budget,
            retries=args.retries,
        )
    except (KeyError, ValueError) as exc:
        return _input_error(str(exc))
    except KeyboardInterrupt:
        # Workers are already cancelled and reaped by the executor's
        # abort path; report the conventional SIGINT exit.
        print("extrap: sweep interrupted", file=sys.stderr)
        return 130
    print(format_run(run))
    print(run.counters.format())
    if args.output:
        try:
            atomic_write_text(args.output, run.to_json())
        except OSError as exc:
            return _input_error(f"cannot write results to {args.output}: {exc}")
        print(f"wrote {args.output}")
    return 1 if run.counters.failed else 0


def cmd_serve(args) -> int:
    from repro.serve import run_server
    from repro.sweep import ResultCache

    if args.queue_depth < 1:
        return _input_error(f"--queue-depth must be >= 1, got {args.queue_depth}")
    if args.workers < 1:
        return _input_error(f"--workers must be >= 1, got {args.workers}")
    if args.jobs < 1:
        return _input_error(f"--jobs must be >= 1, got {args.jobs}")
    if args.max_wall_budget is not None and args.max_wall_budget <= 0:
        return _input_error(
            f"--max-wall-budget must be > 0, got {args.max_wall_budget}"
        )
    if args.rate_limit is not None and args.rate_limit <= 0:
        return _input_error(f"--rate-limit must be > 0, got {args.rate_limit}")
    if args.rate_burst is not None and args.rate_burst < 1:
        return _input_error(f"--rate-burst must be >= 1, got {args.rate_burst}")
    if args.rate_burst is not None and args.rate_limit is None:
        return _input_error("--rate-burst requires --rate-limit")
    if args.job_budget is not None and args.job_budget <= 0:
        return _input_error(f"--job-budget must be > 0, got {args.job_budget}")
    if args.drain_timeout is not None and args.drain_timeout <= 0:
        return _input_error(
            f"--drain-timeout must be > 0, got {args.drain_timeout}"
        )
    root = Path(args.trace_root)
    if not root.is_dir():
        return _input_error(f"trace root is not a directory: {args.trace_root}")
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return run_server(
        host=args.host,
        port=args.port,
        trace_root=root,
        cache=cache,
        queue_depth=args.queue_depth,
        workers=args.workers,
        sweep_jobs=args.jobs,
        max_wall_budget=args.max_wall_budget,
        state_dir=args.state_dir,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        job_budget=args.job_budget,
        drain_timeout=args.drain_timeout,
    )


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="extrap",
        description="Performance extrapolation of parallel programs (ICPP'95 reproduction)",
    )
    ap.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more status chatter on stderr (-v info, -vv debug)",
    )
    ap.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="explicit log level (overrides -v)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, presets and experiments")

    t = sub.add_parser("trace", help="measure a benchmark on 1 virtual processor")
    t.add_argument("benchmark", choices=sorted(BENCHMARKS))
    t.add_argument("-n", type=int, default=8, help="number of threads")
    t.add_argument("-o", "--output", default="trace.jsonl", help=".jsonl or .bin")
    t.add_argument(
        "--size-mode", choices=("compiler", "actual"), default="compiler"
    )

    p = sub.add_parser("predict", help="extrapolate a trace to a target environment")
    p.add_argument("trace", help="trace file from 'extrap trace'")
    p.add_argument("--preset", default="distributed_memory")
    p.add_argument(
        "--set",
        action="append",
        metavar="group.field=value",
        help="override a parameter, e.g. processor.mips_ratio=0.5",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="collect and print engine counters / phase timers",
    )
    p.add_argument(
        "--timeline",
        default=None,
        metavar="PATH",
        help="record the simulated execution and write a Perfetto-loadable "
        "Chrome trace-event JSON here (explore with 'extrap timeline')",
    )
    p.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help="inject faults from a FaultPlan JSON file "
        "(see docs/ROBUSTNESS.md)",
    )
    p.add_argument(
        "--wall-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abort with a stall diagnosis if the simulation runs longer "
        "than this many real seconds",
    )
    p.add_argument(
        "--sample",
        action="store_true",
        help="SimPoint-style sampled estimate: cluster the trace into "
        "phases, simulate one representative interval per phase, and "
        "reconstitute whole-run metrics with error bars "
        "(see docs/SAMPLING.md)",
    )
    _add_sampling_flags(p)

    tl = sub.add_parser(
        "timeline",
        help="render or convert a timeline recorded by 'predict --timeline'",
    )
    tl.add_argument(
        "timeline", help="Chrome trace-event JSON from 'extrap predict --timeline'"
    )
    tl.add_argument(
        "--ascii",
        action="store_true",
        help="render a per-processor Gantt chart in the terminal",
    )
    tl.add_argument("--width", type=int, default=72, help="Gantt width in cells")
    tl.add_argument(
        "--counter",
        default=None,
        metavar="NAME",
        help="ASCII-plot one counter series (e.g. net.in_flight)",
    )
    tl.add_argument(
        "--csv",
        default=None,
        metavar="PATH",
        help="write all counter series to a CSV file",
    )
    tl.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="re-export normalized Chrome trace-event JSON here",
    )
    tl.add_argument(
        "--diagnose",
        action="store_true",
        help="detect performance anomalies (stragglers, barrier "
        "imbalance, comm hotspots, idle tails — see docs/DIAGNOSE.md)",
    )
    tl.add_argument(
        "--json",
        action="store_true",
        help="with --diagnose: emit the report as deterministic JSON",
    )

    r = sub.add_parser("report", help="full debugging report for a trace")
    r.add_argument("trace", help="trace file from 'extrap trace'")
    r.add_argument("--preset", default="distributed_memory")
    r.add_argument("--set", action="append", metavar="group.field=value")
    r.add_argument(
        "--profile",
        action="store_true",
        help="include the engine profile section in the report",
    )
    r.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help="inject faults from a FaultPlan JSON file",
    )

    va = sub.add_parser(
        "validate", help="check a trace file's structural invariants"
    )
    va.add_argument("trace", help="trace file to validate (.jsonl or .bin)")
    va.add_argument(
        "--no-global-barriers",
        action="store_true",
        help="allow barriers that not every thread enters "
        "(pC++ barriers are global; disable for partial/hand-built traces)",
    )
    va.add_argument(
        "--diagnose",
        action="store_true",
        help="also extrapolate the trace and report performance "
        "anomalies (see docs/DIAGNOSE.md)",
    )
    va.add_argument("--preset", default="distributed_memory")
    va.add_argument(
        "--set",
        action="append",
        metavar="group.field=value",
        help="override a parameter for the --diagnose extrapolation",
    )
    va.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help="inject faults from a FaultPlan JSON file before "
        "diagnosing (a detector self-check: the plan's anomalies "
        "must be flagged)",
    )
    va.add_argument(
        "--json",
        action="store_true",
        help="with --diagnose: emit only the report as deterministic JSON",
    )
    va.add_argument(
        "--sample-report",
        action="store_true",
        help="print the sampling plan (intervals, chosen k, phase weights, "
        "representative interval ids) without simulating anything",
    )
    _add_sampling_flags(va)

    b = sub.add_parser(
        "bench", help="run the engine benchmark harness (BENCH_engine.json)"
    )
    b.add_argument("-o", "--output", default=None, help="write baseline JSON here")
    b.add_argument("--scale", type=float, default=1.0)
    b.add_argument("--repeats", type=int, default=3)
    b.add_argument(
        "--baseline",
        default="BENCH_engine.json",
        help="baseline to compare against (if present)",
    )
    b.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file in place with this run's results",
    )
    b.add_argument(
        "--only",
        action="append",
        metavar="WORKLOAD",
        help="restrict to specific workloads (repeatable)",
    )

    m = sub.add_parser("machine", help="run a benchmark on the reference CM-5")
    m.add_argument("benchmark", choices=sorted(BENCHMARKS))
    m.add_argument("-n", type=int, default=8, help="number of nodes")

    sub.add_parser(
        "calibrate",
        help="fit extrapolation parameters from reference-machine probes",
    )

    cp = sub.add_parser(
        "compare", help="extrapolate one trace to several environments"
    )
    cp.add_argument("trace")
    cp.add_argument(
        "presets",
        nargs="+",
        choices=sorted(presets.PRESETS),
        help="presets to compare (first is the baseline)",
    )

    s = sub.add_parser("study", help="processor-scaling study for a benchmark")
    s.add_argument("benchmark", choices=sorted(BENCHMARKS))
    s.add_argument("--preset", default="distributed_memory")
    s.add_argument("-p", "--processors", default="1,2,4,8,16,32")
    s.add_argument(
        "--size-mode", choices=("compiler", "actual"), default="compiler"
    )
    s.add_argument("--set", action="append", metavar="group.field=value")

    e = sub.add_parser("experiment", help="regenerate a paper figure/table")
    e.add_argument("name", choices=sorted(EXPERIMENTS))
    e.add_argument(
        "--paper", action="store_true", help="paper-scale problem sizes (slower)"
    )
    e.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiments with internal grids "
        "(the ablations); 1 = serial",
    )

    rp = sub.add_parser(
        "reproduce", help="run every experiment, write reports to a directory"
    )
    rp.add_argument("--out", default="results", help="output directory")
    rp.add_argument("--paper", action="store_true")
    rp.add_argument(
        "--only",
        action="append",
        metavar="EXPERIMENT",
        help="restrict to specific experiments (repeatable)",
    )
    rp.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="run experiments across this many worker processes "
        "(1 = serial; reports are identical either way)",
    )

    sw = sub.add_parser(
        "sweep",
        help="design-space sweeps: run a spec, inspect/prune the result cache",
    )
    swsub = sw.add_subparsers(dest="sweep_command", required=True)
    swr = swsub.add_parser(
        "run", help="execute a sweep spec and aggregate the results"
    )
    swr.add_argument("spec", help="SweepSpec JSON file (see docs/SWEEP.md)")
    swr.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="extrapolate this measured trace at every point (otherwise "
        "the spec's 'benchmark' is measured, once per thread count)",
    )
    swr.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial; output is byte-identical)",
    )
    swr.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="content-addressed result cache directory",
    )
    swr.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    swr.add_argument(
        "--retries",
        type=int,
        default=1,
        help="re-runs allowed per point after a watchdog stall",
    )
    swr.add_argument(
        "--wall-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock watchdog budget",
    )
    swr.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="write the deterministic result JSON artifact here",
    )
    for sub_name, sub_help in (
        ("stats", "show result-cache entry count and size"),
        ("prune", "delete every result-cache entry"),
    ):
        p_ = swsub.add_parser(sub_name, help=sub_help)
        p_.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)

    sv = sub.add_parser(
        "serve",
        help="HTTP prediction service (memoized predict, async sweeps)",
    )
    sv.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default loopback; bind 0.0.0.0 deliberately)",
    )
    sv.add_argument(
        "--port",
        type=int,
        default=8787,
        help="TCP port (0 = ephemeral; the bound URL is printed on stdout)",
    )
    sv.add_argument(
        "--trace-root",
        default=".",
        metavar="DIR",
        help="directory 'trace_path' request fields resolve under "
        "(requests cannot escape it)",
    )
    sv.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="content-addressed result cache shared with 'extrap sweep'",
    )
    sv.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without memoization (every predict simulates)",
    )
    sv.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="max queued sweep jobs before submissions are shed with 503",
    )
    sv.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="crash-safe job journal directory: accepted jobs survive "
        "kill -9 and are recovered on the next start (off by default)",
    )
    sv.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="REQ_PER_S",
        help="per-client token-bucket rate limit; over-budget requests "
        "get 429 with a Retry-After header (off by default)",
    )
    sv.add_argument(
        "--rate-burst",
        type=int,
        default=None,
        metavar="N",
        help="token-bucket burst size (default: ceil of --rate-limit)",
    )
    sv.add_argument(
        "--job-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall budget: a job running longer is failed with "
        "a stall diagnosis instead of wedging a worker forever",
    )
    sv.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="bound on the SIGTERM drain; past it, unfinished jobs are "
        "journaled as interrupted and the process still exits 0 "
        "(default 30)",
    )
    sv.add_argument(
        "--workers",
        type=int,
        default=1,
        help="job-queue worker threads (each job may itself use --jobs "
        "processes)",
    )
    sv.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="max worker processes per sweep job (requests are clamped "
        "to this)",
    )
    sv.add_argument(
        "--max-wall-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cap every simulation's wall-clock watchdog budget "
        "(requests cannot exceed it)",
    )

    return ap


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(args.log_level or level_from_verbosity(args.verbose))
    handlers = {
        "list": cmd_list,
        "trace": cmd_trace,
        "predict": cmd_predict,
        "timeline": cmd_timeline,
        "report": cmd_report,
        "validate": cmd_validate,
        "bench": cmd_bench,
        "machine": cmd_machine,
        "calibrate": cmd_calibrate,
        "compare": cmd_compare,
        "study": cmd_study,
        "experiment": cmd_experiment,
        "reproduce": cmd_reproduce,
        "sweep": cmd_sweep,
        "serve": cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
