"""ExtraP core: the performance-extrapolation pipeline.

The pipeline (paper Figure 2):

1. measure — run the n-thread program on 1 virtual processor
   (:class:`repro.pcxx.TracingRuntime`) producing a merged :class:`Trace`;
2. translate — :func:`repro.core.translation.translate` rebases the merged
   trace into n per-thread traces of an *ideal* parallel execution;
3. simulate — :class:`repro.sim.Simulator` replays the translated traces
   under a target-environment :class:`SimulationParameters`;
4. analyse — :mod:`repro.metrics` derives predicted performance metrics.

:mod:`repro.core.pipeline` wires the four stages into one call.
"""

from repro.core.parameters import (
    BarrierAlgorithm,
    BarrierParams,
    NetworkParams,
    ProcessorParams,
    RemoteServicePolicy,
    SimulationParameters,
)
from repro.core import presets
from repro.core.translation import TranslatedProgram, translate
from repro.core.pipeline import ExtrapolationOutcome, extrapolate, measure

__all__ = [
    "BarrierAlgorithm",
    "BarrierParams",
    "ExtrapolationOutcome",
    "NetworkParams",
    "ProcessorParams",
    "RemoteServicePolicy",
    "SimulationParameters",
    "TranslatedProgram",
    "extrapolate",
    "measure",
    "presets",
    "translate",
]
