"""Simulation parameters: the description of the target environment E2.

Three parameter groups mirror the paper's three model components
(§3.3): processor, remote data access (network), and barrier.  All times
are microseconds; bandwidths are expressed as per-byte transfer times
(:func:`repro.util.units.mbytes_per_s_to_us_per_byte` converts).

The barrier parameters and defaults come straight from Table 1; the CM-5
parameter set of Table 3 is available in :mod:`repro.core.presets`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from repro.faults.plan import FaultPlan


class RemoteServicePolicy(enum.Enum):
    """How a processor services incoming remote-element requests (§3.3.1).

    * NO_INTERRUPT — requests are serviced only while the thread waits
      (for a barrier release or a remote reply of its own);
    * INTERRUPT — an arriving request interrupts computation, is serviced,
      then computation resumes;
    * POLL — computation is chopped into ``poll_interval`` chunks and the
      inbox is drained at each chunk boundary.
    """

    NO_INTERRUPT = "no_interrupt"
    INTERRUPT = "interrupt"
    POLL = "poll"

    @classmethod
    def parse(cls, v: "str | RemoteServicePolicy") -> "RemoteServicePolicy":
        if isinstance(v, RemoteServicePolicy):
            return v
        try:
            return cls(v.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown policy {v!r}; expected one of {[p.value for p in cls]}"
            ) from None


class BarrierAlgorithm(enum.Enum):
    """Barrier synchronisation algorithm.

    LINEAR is the paper's master–slave barrier (an upper bound on barrier
    time); LOG is the tree substitution the paper mentions; HARDWARE
    models a dedicated barrier network (CM-5 control network style) with
    a fixed cost.
    """

    LINEAR = "linear"
    LOG = "log"
    HARDWARE = "hardware"

    @classmethod
    def parse(cls, v: "str | BarrierAlgorithm") -> "BarrierAlgorithm":
        if isinstance(v, BarrierAlgorithm):
            return v
        try:
            return cls(v.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown barrier algorithm {v!r}; expected one of "
                f"{[a.value for a in cls]}"
            ) from None


def _require_nonneg(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def _require_pos(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")


@dataclass(frozen=True)
class ProcessorParams:
    """Processor model parameters (§3.3.1).

    Attributes
    ----------
    mips_ratio:
        Computation-time scale factor: measured compute deltas are
        multiplied by this.  ``measured_machine_speed / target_speed`` —
        e.g. Sun4 1.1360 MFLOPS to CM-5 2.7645 MFLOPS gives 0.41.
        1.0 = same speed, 2.0 = target is half as fast, 0.5 = twice as fast.
    policy:
        Remote-request service policy.
    poll_interval:
        Chunk size for the POLL policy (target-machine microseconds).
    poll_overhead:
        Cost charged at each poll check.
    interrupt_overhead:
        Cost charged per interrupt taken (INTERRUPT policy).
    request_service_time:
        Owner-side cost to service one remote request (locate element,
        prepare the reply) excluding message construction.
    msg_build_time:
        Cost to construct any outgoing message (request or reply).
    """

    mips_ratio: float = 1.0
    policy: RemoteServicePolicy = RemoteServicePolicy.NO_INTERRUPT
    poll_interval: float = 100.0
    poll_overhead: float = 1.0
    interrupt_overhead: float = 5.0
    request_service_time: float = 2.0
    msg_build_time: float = 2.0

    def __post_init__(self):
        object.__setattr__(self, "policy", RemoteServicePolicy.parse(self.policy))
        _require_pos("mips_ratio", self.mips_ratio)
        _require_pos("poll_interval", self.poll_interval)
        for name in (
            "poll_overhead",
            "interrupt_overhead",
            "request_service_time",
            "msg_build_time",
        ):
            _require_nonneg(name, getattr(self, name))


@dataclass(frozen=True)
class NetworkParams:
    """Remote data access model parameters (§3.3.2).

    Attributes
    ----------
    comm_startup_time:
        ``CommStartupTime`` — fixed cost per message send (software
        overhead + injection), charged to the sender.
    byte_transfer_time:
        ``ByteTransferTime`` — per-byte network transfer cost
        (0.05 us/B == 20 MB/s).
    topology:
        Interconnect topology name: ``crossbar``, ``bus``, ``ring``,
        ``mesh2d``, ``torus2d``, ``hypercube`` or ``fattree``.
    hop_time:
        Per-hop switching latency.
    contention:
        Enable the analytical contention model (§3.3.2: remote access
        delay grows with the intensity of concurrent network use).
    contention_factor:
        Strength of the analytical contention term.
    request_nbytes:
        Size of a remote-request message on the wire.
    header_nbytes:
        Header bytes added to every message payload.
    """

    comm_startup_time: float = 100.0
    byte_transfer_time: float = 0.05
    topology: str = "crossbar"
    hop_time: float = 0.1
    contention: bool = True
    contention_factor: float = 1.0
    request_nbytes: int = 16
    header_nbytes: int = 8

    def __post_init__(self):
        _require_nonneg("comm_startup_time", self.comm_startup_time)
        _require_nonneg("byte_transfer_time", self.byte_transfer_time)
        _require_nonneg("hop_time", self.hop_time)
        _require_nonneg("contention_factor", self.contention_factor)
        if self.request_nbytes < 0 or self.header_nbytes < 0:
            raise ValueError("message sizes must be >= 0")


@dataclass(frozen=True)
class BarrierParams:
    """Barrier model parameters — names and defaults from Table 1.

    Attributes
    ----------
    entry_time:
        ``EntryTime`` — time for each thread to enter a barrier.
    exit_time:
        ``ExitTime`` — time for each thread to come out of the barrier
        after it has been lowered.
    check_time:
        ``CheckTime`` — master's cost per check that all threads arrived.
    exit_check_time:
        ``ExitCheckTime`` — slave's cost per check that the barrier was
        released.
    model_time:
        ``ModelTime`` — master's cost to start lowering the barrier after
        the last arrival.
    by_msgs:
        ``BarrierByMsgs`` — if True, arrival/release travel as real
        messages whose transfer time contributes to barrier time; if
        False, a shared-memory flag protocol (polling at check_time /
        exit_check_time) is modelled instead.
    msg_size:
        ``BarrierMsgSize`` — size of a barrier synchronisation message.
    algorithm:
        LINEAR master–slave (paper default), LOG tree, or HARDWARE.
    """

    entry_time: float = 5.0
    exit_time: float = 5.0
    check_time: float = 2.0
    exit_check_time: float = 2.0
    model_time: float = 10.0
    by_msgs: bool = True
    msg_size: int = 128
    algorithm: BarrierAlgorithm = BarrierAlgorithm.LINEAR

    def __post_init__(self):
        object.__setattr__(self, "algorithm", BarrierAlgorithm.parse(self.algorithm))
        for name in (
            "entry_time",
            "exit_time",
            "check_time",
            "exit_check_time",
            "model_time",
        ):
            _require_nonneg(name, getattr(self, name))
        if self.msg_size < 0:
            raise ValueError(f"msg_size must be >= 0, got {self.msg_size}")


@dataclass(frozen=True)
class SimulationParameters:
    """Complete target-environment description for one extrapolation.

    ``faults`` is the optional unreliable-machine description
    (:class:`repro.faults.plan.FaultPlan`); ``None`` — the default —
    models the paper's ideal target and keeps results byte-identical
    to builds without the fault subsystem.
    """

    processor: ProcessorParams = field(default_factory=ProcessorParams)
    network: NetworkParams = field(default_factory=NetworkParams)
    barrier: BarrierParams = field(default_factory=BarrierParams)
    faults: Optional[FaultPlan] = None
    name: str = "custom"

    def with_(self, **groups: Mapping[str, Any]) -> "SimulationParameters":
        """Functional update of nested parameter fields.

        >>> p = SimulationParameters()
        >>> p2 = p.with_(processor={"mips_ratio": 0.41},
        ...              network={"comm_startup_time": 10.0})
        >>> p2.processor.mips_ratio
        0.41
        """
        updates: Dict[str, Any] = {}
        for group, fields_ in groups.items():
            if group == "name":
                updates["name"] = fields_
                continue
            if group == "faults":
                updates["faults"] = self._merge_faults(fields_)
                continue
            if group not in ("processor", "network", "barrier"):
                raise ValueError(f"unknown parameter group {group!r}")
            updates[group] = replace(getattr(self, group), **fields_)
        return replace(self, **updates)

    def _merge_faults(self, fields_: Any) -> Optional[FaultPlan]:
        """Resolve a ``faults=`` update: a plan, None, or a field dict."""
        if fields_ is None or isinstance(fields_, FaultPlan):
            return fields_
        if self.faults is None:
            return FaultPlan(**fields_)
        return replace(self.faults, **fields_)

    def with_faults(self, plan: Optional[FaultPlan]) -> "SimulationParameters":
        """Copy of these parameters with ``plan`` as the fault model."""
        return replace(self, faults=plan)

    def describe(self) -> str:
        """Multi-line human-readable parameter dump."""
        p, nw, b = self.processor, self.network, self.barrier
        lines = [
            f"parameter set {self.name!r}:",
            f"  processor: MipsRatio={p.mips_ratio} policy={p.policy.value}"
            f" poll_interval={p.poll_interval}us",
            f"  network: CommStartupTime={nw.comm_startup_time}us"
            f" ByteTransferTime={nw.byte_transfer_time}us/B"
            f" topology={nw.topology} contention={nw.contention}",
            f"  barrier: {b.algorithm.value} Entry={b.entry_time} Exit={b.exit_time}"
            f" Check={b.check_time} ExitCheck={b.exit_check_time}"
            f" Model={b.model_time} ByMsgs={int(b.by_msgs)} MsgSize={b.msg_size}",
        ]
        if self.faults is not None:
            lines.append(f"  {self.faults.describe()}")
        return "\n".join(lines)
