"""End-to-end extrapolation pipeline (paper Figure 2).

:func:`measure` runs a program under the 1-processor tracing runtime;
:func:`extrapolate` takes the resulting trace through translation and
simulation and returns an :class:`ExtrapolationOutcome` bundling
everything a performance-debugging session needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from repro.core.parameters import SimulationParameters
from repro.core.translation import TranslatedProgram, translate
from repro.pcxx.runtime import SUN4_MFLOPS, ThreadBody, TracingRuntime
from repro.sim.result import SimulationResult
from repro.sim.simulator import simulate
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.trace import Trace

#: A program is a factory: given a tracing runtime, it builds collections
#: and returns the per-thread bodies to run.  The factory shape lets the
#: same program be measured at different thread counts and size modes.
ProgramFactory = Callable[[TracingRuntime], "Sequence[ThreadBody] | ThreadBody"]


@dataclass
class ExtrapolationOutcome:
    """Everything produced by one extrapolation run."""

    #: merged trace measured in the 1-processor environment (PI1)
    trace: Trace
    #: statistics of the measured trace
    trace_stats: TraceStats
    #: translated ideal-parallel per-thread traces
    translated: TranslatedProgram
    #: simulation result: predicted performance information (PI2p)
    result: SimulationResult

    @property
    def predicted_time(self) -> float:
        """Predicted n-processor execution time (microseconds)."""
        return self.result.execution_time

    @property
    def ideal_time(self) -> float:
        """Execution time under zero-cost communication/synchronisation."""
        return self.translated.ideal_execution_time()


def measure(
    program: ProgramFactory,
    n_threads: int,
    *,
    name: str = "",
    trace_mflops: float = SUN4_MFLOPS,
    size_mode: str = "compiler",
    event_overhead: float = 0.0,
    switch_overhead: float = 0.0,
    flush_every: int = 0,
    flush_overhead: float = 0.0,
    compute_noise: float = 0.0,
    noise_seed: Optional[int] = None,
    problem: Optional[Dict[str, Any]] = None,
) -> Trace:
    """Run ``program`` with ``n_threads`` on one virtual processor.

    Returns the merged high-level event trace (PI1).
    """
    rt = TracingRuntime(
        n_threads,
        name,
        trace_mflops=trace_mflops,
        size_mode=size_mode,
        event_overhead=event_overhead,
        switch_overhead=switch_overhead,
        flush_every=flush_every,
        flush_overhead=flush_overhead,
        compute_noise=compute_noise,
        noise_seed=noise_seed,
        problem=problem,
    )
    bodies = program(rt)
    return rt.run(bodies)


def extrapolate(
    trace: Trace,
    params: SimulationParameters,
    *,
    compensate_overhead: float = 0.0,
    profile: bool = False,
    observe: bool = False,
    wall_clock_budget: Optional[float] = None,
) -> ExtrapolationOutcome:
    """Translate a measured trace and simulate it in environment ``params``.

    Parameters
    ----------
    trace:
        Merged 1-processor trace from :func:`measure`.
    params:
        Target-environment description (see :mod:`repro.core.presets`).
        When ``params.faults`` is a non-null fault plan, the simulation
        runs on the modelled *unreliable* machine (see
        :mod:`repro.faults`).
    compensate_overhead:
        Per-event instrumentation overhead to subtract during translation.
    profile:
        Collect engine counters and phase timers on the simulation; the
        outcome's ``result.profile`` carries them (slower run, identical
        simulation results).
    observe:
        Record an event-level timeline of the simulated execution; the
        outcome's ``result.timeline`` carries it (see :mod:`repro.obs`;
        identical simulation results).
    wall_clock_budget:
        Real-seconds watchdog budget for the simulation (None =
        unlimited); exceeded budgets raise
        :class:`~repro.des.engine.SimulationStalled`.
    """
    translated = translate(trace, event_overhead=compensate_overhead)
    result = simulate(
        translated,
        params,
        profile=profile,
        observe=observe,
        wall_clock_budget=wall_clock_budget,
    )
    return ExtrapolationOutcome(
        trace=trace,
        trace_stats=compute_stats(trace),
        translated=translated,
        result=result,
    )


def measure_and_extrapolate(
    program: ProgramFactory,
    n_threads: int,
    params: SimulationParameters,
    **measure_kwargs,
) -> ExtrapolationOutcome:
    """measure + extrapolate in one call."""
    trace = measure(program, n_threads, **measure_kwargs)
    return extrapolate(trace, params)
