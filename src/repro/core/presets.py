"""Named parameter sets used throughout the paper's evaluation.

Each function returns a fresh :class:`SimulationParameters`; pass keyword
overrides through :meth:`SimulationParameters.with_` for sweeps.
"""

from __future__ import annotations

from repro.core.parameters import (
    BarrierParams,
    NetworkParams,
    ProcessorParams,
    SimulationParameters,
)
from repro.pcxx.runtime import CM5_MFLOPS, SUN4_MFLOPS
from repro.util.units import mbytes_per_s_to_us_per_byte


def distributed_memory() -> SimulationParameters:
    """The Figure 4 environment: a distributed-memory platform with
    modest link bandwidth (20 MB/s) but relatively high communication
    overheads and synchronisation costs."""
    return SimulationParameters(
        processor=ProcessorParams(
            mips_ratio=1.0,
            policy="interrupt",
            request_service_time=5.0,
            msg_build_time=5.0,
            interrupt_overhead=10.0,
        ),
        network=NetworkParams(
            comm_startup_time=100.0,
            byte_transfer_time=mbytes_per_s_to_us_per_byte(20.0),
            topology="mesh2d",
            hop_time=0.5,
            contention=True,
        ),
        barrier=BarrierParams(
            entry_time=5.0,
            exit_time=5.0,
            check_time=2.0,
            exit_check_time=2.0,
            model_time=10.0,
            by_msgs=True,
            msg_size=128,
        ),
        name="distributed_memory",
    )


def shared_memory() -> SimulationParameters:
    """A shared-memory approximation: same protocol structure but
    high-bandwidth, low-latency 'network' (data transfers through
    memory), cheap flag-based barriers (§3.3.2, §3.3.3)."""
    return SimulationParameters(
        processor=ProcessorParams(
            mips_ratio=1.0,
            policy="interrupt",
            request_service_time=1.0,
            msg_build_time=0.5,
            interrupt_overhead=2.0,
        ),
        network=NetworkParams(
            comm_startup_time=2.0,
            byte_transfer_time=mbytes_per_s_to_us_per_byte(200.0),
            topology="crossbar",
            hop_time=0.0,
            contention=True,
        ),
        barrier=BarrierParams(
            entry_time=1.0,
            exit_time=1.0,
            check_time=0.5,
            exit_check_time=0.5,
            model_time=2.0,
            by_msgs=False,
            msg_size=0,
        ),
        name="shared_memory",
    )


def cm5() -> SimulationParameters:
    """Table 3: the parameter set used to match CM-5 characteristics.

    BarrierModelTime 5 us, CommStartupTime 10 us, ByteTransferTime
    0.118 us/B (8.5 MB/s), MipsRatio 0.41 (= Sun4 1.1360 / CM-5 2.7645).
    The CM-5 supports active messages, so the interrupt policy applies;
    its data network is a 4-ary fat tree and its control network gives
    fast hardware-assisted barriers.
    """
    return SimulationParameters(
        processor=ProcessorParams(
            mips_ratio=round(SUN4_MFLOPS / CM5_MFLOPS, 2),  # 0.41, as in the paper
            policy="interrupt",
            request_service_time=2.0,
            msg_build_time=2.0,
            interrupt_overhead=3.0,
        ),
        network=NetworkParams(
            comm_startup_time=10.0,
            byte_transfer_time=0.118,
            topology="fattree",
            hop_time=0.2,
            contention=True,
        ),
        barrier=BarrierParams(
            entry_time=2.0,
            exit_time=2.0,
            check_time=1.0,
            exit_check_time=1.0,
            model_time=5.0,  # BarrierModelTime from Table 3
            by_msgs=True,
            msg_size=16,
        ),
        name="cm5",
    )


def ideal() -> SimulationParameters:
    """Zero-cost communication and synchronisation (the Figure 5 "ideal
    execution environment"): the simulation result must equal the
    translated traces' ideal execution time."""
    return SimulationParameters(
        processor=ProcessorParams(
            mips_ratio=1.0,
            policy="interrupt",
            request_service_time=0.0,
            msg_build_time=0.0,
            interrupt_overhead=0.0,
        ),
        network=NetworkParams(
            comm_startup_time=0.0,
            byte_transfer_time=0.0,
            topology="crossbar",
            hop_time=0.0,
            contention=False,
        ),
        barrier=BarrierParams(
            entry_time=0.0,
            exit_time=0.0,
            check_time=0.0,
            exit_check_time=0.0,
            model_time=0.0,
            by_msgs=False,
            msg_size=0,
        ),
        name="ideal",
    )


#: Registry for CLI / experiment lookup by name.
PRESETS = {
    "distributed_memory": distributed_memory,
    "shared_memory": shared_memory,
    "cm5": cm5,
    "ideal": ideal,
}


def by_name(name: str) -> SimulationParameters:
    """Look up a preset by name."""
    try:
        return PRESETS[name]()
    except KeyError:
        import difflib

        close = difflib.get_close_matches(str(name), sorted(PRESETS), n=3, cutoff=0.5)
        hint = (
            f"; did you mean {', '.join(repr(c) for c in close)}?" if close else ""
        )
        raise ValueError(
            f"unknown preset {name!r}{hint}; available: {sorted(PRESETS)}"
        ) from None
