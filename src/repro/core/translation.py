"""The trace translation algorithm (paper §3.2).

Translation converts the merged trace of an n-thread, 1-processor run
into n per-thread traces whose timestamps reflect an *ideal* n-processor
execution:

* for non-synchronisation events, the time between two consecutive events
  of a thread is preserved: if event e1 (orig t1, translated t1') precedes
  e2 (orig t2), then e2 translates to ``t2 - t1 + t1'``;
* each thread's first event rebases to time 0 (all threads start
  together on their own processors);
* a BARRIER_EXIT translates to the translated BARRIER_ENTER time of the
  *last* thread into that barrier — barriers are instantaneous, threads
  leave the moment the last one arrives;
* remote accesses keep their position but cost nothing (they are
  timestamps, not durations).

The resulting traces assume instant remote access, instant barriers, and
unperturbed computation; the trace-driven simulation then reintroduces
the target environment's costs for exactly those factors.

Translation can also *compensate* for measurement intrusion: if the
tracing runtime charged a known per-event recording overhead, passing it
as ``event_overhead`` subtracts it from every inter-event gap (clamped at
zero), as the paper notes the algorithm is easily modified to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import ThreadTrace, Trace, TraceMeta
from repro.trace.validate import validate_trace


@dataclass
class TranslatedProgram:
    """Output of translation: ideal-parallel per-thread traces.

    Attributes
    ----------
    meta:
        Metadata of the source trace (measured environment E1).
    threads:
        One :class:`ThreadTrace` per thread, timestamps rebased.
    barrier_entry_times:
        ``barrier_id -> [translated entry time per thread]``.
    barrier_exit_times:
        ``barrier_id -> translated exit time`` (max of the entries).
    """

    meta: TraceMeta
    threads: List[ThreadTrace]
    barrier_entry_times: Dict[int, List[float]] = field(default_factory=dict)
    barrier_exit_times: Dict[int, float] = field(default_factory=dict)

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def ideal_execution_time(self) -> float:
        """Execution time under zero communication/synchronisation cost.

        This is the prediction for the paper's "ideal execution
        environment" (used in the Figure 5 comparison): the time of an
        n-processor run whose only cost is computation.
        """
        return max((tt.end_time for tt in self.threads), default=0.0)

    def total_compute_time(self) -> float:
        """Sum over threads of pure computation time."""
        return sum(sum(tt.compute_deltas()) for tt in self.threads)

    def barrier_imbalance(self, barrier_id: int) -> float:
        """Spread between first and last arrival at a barrier."""
        entries = self.barrier_entry_times[barrier_id]
        return max(entries) - min(entries)


def translate(
    trace: Trace,
    *,
    event_overhead: float = 0.0,
    flush_every: int = 0,
    flush_overhead: float = 0.0,
    validate: bool = True,
) -> TranslatedProgram:
    """Translate a merged 1-processor trace into ideal per-thread traces.

    Parameters
    ----------
    trace:
        Merged trace from :class:`repro.pcxx.TracingRuntime`.
    event_overhead:
        Per-event instrumentation overhead to subtract from every
        inter-event gap (compensation for measurement intrusion).
    flush_every / flush_overhead:
        Event-buffer flush compensation: if the tracing runtime flushed
        its buffer (costing ``flush_overhead``) after every
        ``flush_every`` recorded events, the flush time sits inside the
        *recording thread's* next inter-event gap — the merged event
        order pinpoints exactly which gap, so it can be subtracted.
        (Flushes right before a barrier-exit are absorbed by exit-time
        snapping and need no correction.)
    validate:
        Check trace structural invariants first (disable only for traces
        already validated).
    """
    if event_overhead < 0:
        raise ValueError(f"negative event overhead {event_overhead}")
    if flush_every < 0 or flush_overhead < 0:
        raise ValueError("flush parameters must be >= 0")
    if validate:
        validate_trace(trace)

    n = trace.meta.n_threads
    per_thread = trace.split_by_thread()

    # Event-buffer flush compensation: replay the merged recording order
    # to find which (thread, per-thread event index) gap absorbed each
    # flush; deductions[t][i] is subtracted from thread t's gap *before*
    # its i-th event.
    deductions: List[Dict[int, float]] = [dict() for _ in range(n)]
    if flush_every and flush_overhead:
        seen_per_thread = [0] * n
        for global_index, ev in enumerate(trace.events, start=1):
            seen_per_thread[ev.thread] += 1
            if global_index % flush_every == 0:
                # The flush lands in the recording thread's next gap
                # (per-thread index == events seen so far).
                nxt = seen_per_thread[ev.thread]
                d = deductions[ev.thread]
                d[nxt] = d.get(nxt, 0.0) + flush_overhead

    # Pass 1: translate everything except barrier exits, thread by thread.
    # A thread's translated time after a barrier depends on the barrier's
    # exit time, which depends on *all* threads' entry times — but entry
    # times for barrier k depend only on exits of barriers < k, and every
    # thread meets barriers in the same global order, so we can resolve
    # barriers lazily: walk all threads, parking them at each barrier
    # entry, and release a barrier when its last entry is known.
    out_events: List[List[TraceEvent]] = [[] for _ in range(n)]
    entry_by_thread: Dict[int, Dict[int, float]] = {}  # bid -> {thread: t'}
    barrier_exit_times: Dict[int, float] = {}

    # Per-thread cursors.
    positions = [0] * n
    orig_prev = [0.0] * n  # original timestamp of previous event
    trans_prev = [0.0] * n  # translated timestamp of previous event
    started = [False] * n

    def advance_thread(t: int) -> int | None:
        """Translate thread t's events until it blocks on a barrier.

        Returns the barrier id it is now waiting in, or None if the
        thread ran to completion.
        """
        events = per_thread[t].events
        i = positions[t]
        while i < len(events):
            ev = events[i]
            if ev.kind == EventKind.BARRIER_EXIT:
                bid = ev.barrier_id
                if bid not in barrier_exit_times:
                    # Cannot resolve yet; stay parked (should not happen:
                    # we only resume after the exit time is known).
                    positions[t] = i
                    return bid
                t_new = barrier_exit_times[bid]
                out_events[t].append(ev.shifted(t_new))
                orig_prev[t] = ev.time
                trans_prev[t] = t_new
                i += 1
                continue

            if not started[t]:
                t_new = 0.0
                started[t] = True
            else:
                gap = ev.time - orig_prev[t]
                gap -= event_overhead + deductions[t].get(i, 0.0)
                t_new = trans_prev[t] + max(0.0, gap)
            out_events[t].append(ev.shifted(t_new))
            orig_prev[t] = ev.time
            trans_prev[t] = t_new
            i += 1

            if ev.kind == EventKind.BARRIER_ENTER:
                entry_by_thread.setdefault(ev.barrier_id, {})[t] = t_new
                positions[t] = i
                return ev.barrier_id
        positions[t] = i
        return None

    waiting: Dict[int, List[int]] = {}  # barrier id -> threads parked in it
    runnable = list(range(n))
    done = 0
    while runnable:
        t = runnable.pop(0)
        bid = advance_thread(t)
        if bid is None:
            done += 1
            continue
        waiting.setdefault(bid, []).append(t)
        entries = entry_by_thread.get(bid, {})
        if len(entries) == n:
            barrier_exit_times[bid] = max(entries.values())
            runnable.extend(sorted(waiting.pop(bid)))
    if done != n:
        parked = {b: ts for b, ts in waiting.items() if ts}
        raise ValueError(
            f"translation deadlock: only {done}/{n} threads finished; "
            f"threads parked at barriers {parked} — barrier participation "
            "is not global (trace validation should have caught this)"
        )

    threads = [ThreadTrace(t, evs) for t, evs in enumerate(out_events)]
    barrier_entry_times = {
        bid: [d[t] for t in sorted(d)] for bid, d in entry_by_thread.items()
    }
    return TranslatedProgram(
        meta=trace.meta,
        threads=threads,
        barrier_entry_times=barrier_entry_times,
        barrier_exit_times=barrier_exit_times,
    )
