"""A small SimPy-style discrete-event simulation (DES) engine.

This is the substrate underneath both the ExtraP trace-driven simulator
(:mod:`repro.sim`) and the reference target-machine simulator
(:mod:`repro.machine`).  It provides:

* :class:`Environment` — the simulation clock and event loop;
* generator-based :class:`Process`\\ es that ``yield`` events to wait on;
* :class:`Event` / :class:`Timeout` / :class:`AnyOf` / :class:`AllOf`
  synchronisation primitives;
* :class:`Interrupt` delivery into waiting processes (used by the
  *interrupt* remote-access service policy);
* :class:`Store` / :class:`PriorityStore` message queues and a counted
  :class:`Resource` (used for link and queue contention).

The engine is deterministic: simultaneous events fire in FIFO order of
scheduling (stable tie-break on a monotone sequence number).
"""

from repro.des.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.des.engine import (
    Deadlock,
    Environment,
    SimulationStalled,
    StopSimulation,
    Watchdog,
)
from repro.des.process import Process, ProcessKilled
from repro.des.stores import FilterStore, PriorityItem, PriorityStore, Store
from repro.des.resources import Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "Deadlock",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "PriorityItem",
    "PriorityStore",
    "Process",
    "ProcessKilled",
    "Resource",
    "SimulationStalled",
    "StopSimulation",
    "Store",
    "Timeout",
    "Watchdog",
]
