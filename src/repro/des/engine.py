"""The simulation environment: clock + event queue + run loop.

The run loop has two tiers:

* :meth:`Environment.step` — the readable one-event reference path;
* :meth:`Environment.run_batched` — the fast path used by
  :meth:`Environment.run` and the simulators.  It drains the heap in
  same-time batches with the event-dispatch inlined (no per-event
  method calls), processing events in exactly the order repeated
  ``step()`` calls would.

Profiling (:meth:`Environment.enable_profiling`) attaches an
:class:`~repro.perf.counters.EngineCounters` block; while it is on,
the loop routes through the instrumented path so events are histogrammed
by type and the heap peak is tracked.  The fast path pays nothing for
the feature when it is off (one ``is None`` test per drain).
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Any, Generator, Iterable, List, Optional, Sequence, Tuple

from repro.des.events import PROCESSED, AllOf, AnyOf, Event, Timeout
from repro.des.process import Process
from repro.perf.counters import EngineCounters


class StopSimulation(Exception):
    """Raised by :meth:`Environment.run` internals to halt the loop."""


class Deadlock(RuntimeError):
    """Raised when the queue drains before an awaited event fires."""


class SimulationStalled(RuntimeError):
    """The simulation stopped making progress (watchdog diagnosis).

    Raised instead of hanging (or dying with a bare :class:`Deadlock`)
    when a run cannot complete — e.g. a fault plan dropped a message
    nobody retransmits, or the wall-clock budget ran out.  The message
    is a one-line diagnosis; ``blocked`` carries ``(pid, reason)``
    pairs for the processes that never finished and
    ``pending_barriers`` the barrier episodes still waiting on
    arrivals, so callers can render richer reports.
    """

    def __init__(
        self,
        message: str,
        *,
        blocked: Sequence[Tuple[int, str]] = (),
        pending_barriers: Sequence[Tuple[int, str]] = (),
    ):
        super().__init__(message)
        self.blocked = tuple(blocked)
        self.pending_barriers = tuple(pending_barriers)


class Watchdog:
    """Wall-clock budget + no-progress stall detection for run loops.

    The driving loop calls :meth:`check` every ``check_interval``
    processed events with an opaque *progress token* (any value that
    changes whenever the simulation did real work — the simulator uses
    ``(processors finished, actions completed)``).  If the token stops
    changing for ``stall_event_window`` events while events keep
    flowing, or the optional wall-clock budget is exhausted, ``check``
    returns a one-line reason string; the caller turns it into a
    :class:`SimulationStalled` with whatever model-level diagnosis it
    can add.  Healthy runs pay one comparison per interval.
    """

    def __init__(
        self,
        *,
        wall_clock_budget: Optional[float] = None,
        stall_event_window: int = 2_000_000,
        check_interval: int = 250_000,
    ):
        if wall_clock_budget is not None and wall_clock_budget <= 0:
            raise ValueError(
                f"wall_clock_budget must be > 0, got {wall_clock_budget}"
            )
        if stall_event_window <= 0 or check_interval <= 0:
            raise ValueError("watchdog windows must be > 0")
        self.wall_clock_budget = wall_clock_budget
        self.stall_event_window = stall_event_window
        self.check_interval = check_interval
        self._started = time.monotonic()
        self._last_progress: Any = None
        self._events_at_progress = 0

    def check(self, event_count: int, progress: Any) -> Optional[str]:
        """Return a stall reason, or None while the run looks healthy."""
        if progress != self._last_progress:
            self._last_progress = progress
            self._events_at_progress = event_count
        elif event_count - self._events_at_progress >= self.stall_event_window:
            return (
                f"no forward progress in the last "
                f"{event_count - self._events_at_progress} events "
                "(messages may be circulating without completing any work)"
            )
        if self.wall_clock_budget is not None:
            elapsed = time.monotonic() - self._started
            if elapsed > self.wall_clock_budget:
                return (
                    f"wall-clock budget of {self.wall_clock_budget:g}s "
                    f"exceeded ({elapsed:.1f}s elapsed, "
                    f"{event_count} events processed)"
                )
        return None


def _noop_callback(_ev: Event) -> None:
    """Placeholder waiter attached to a ``run(until=event)`` sentinel."""


class Environment:
    """Discrete-event simulation environment.

    Time is a float in whatever unit the caller chooses; the rest of this
    library uses microseconds (see :mod:`repro.util.units`).

    Events scheduled for the same time fire in FIFO order of scheduling,
    with an integer ``priority`` tie-break below that (lower fires first;
    process-start events use priority -1 so a freshly spawned process gets
    its first step before same-time ordinary events).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active: Optional[Process] = None
        self._event_count = 0
        self._profile: Optional[EngineCounters] = None
        #: Observability hook slot (see :mod:`repro.obs`).  A simulator
        #: that wants a recorded timeline attaches its
        #: :class:`~repro.obs.recorder.TimelineRecorder` here *before*
        #: building its model components; each component captures the
        #: slot at construction and guards every hook call with a single
        #: ``is None`` test.  The engine itself never touches it, so the
        #: event loop pays nothing for the feature.
        self.obs: Optional[Any] = None
        #: Fault-injection hook slot (see :mod:`repro.faults`), wired
        #: exactly like ``obs``: the simulator attaches a
        #: :class:`~repro.faults.injector.FaultInjector` here *before*
        #: building its model components; each component captures the
        #: slot at construction.  ``None`` (the default, and always for
        #: a null fault plan) keeps every code path byte-identical to a
        #: fault-free build.
        self.faults: Optional[Any] = None

    # -- introspection ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing a step, if any."""
        return self._active

    @property
    def processed_event_count(self) -> int:
        """Total number of events processed so far (profiling aid)."""
        return self._event_count

    @property
    def profile(self) -> Optional[EngineCounters]:
        """The counter block, or None while profiling is off."""
        return self._profile

    def enable_profiling(self) -> EngineCounters:
        """Attach (or return the already-attached) engine counters.

        While enabled, processed events are histogrammed by type and the
        event-queue peak is tracked; the run loop uses its instrumented
        path, which is measurably slower than the default fast path.
        """
        if self._profile is None:
            self._profile = EngineCounters()
        return self._profile

    def disable_profiling(self) -> Optional[EngineCounters]:
        """Detach and return the counter block (restores the fast path)."""
        profile, self._profile = self._profile, None
        return profile

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` after the current time."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Spawn a new process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling / run loop ----------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        queue = self._queue
        heappush(queue, (self._now + delay, priority, self._seq, event))
        profile = self._profile
        if profile is not None:
            profile.scheduled_total += 1
            if len(queue) > profile.heap_peak:
                profile.heap_peak = len(queue)

    def step(self) -> Event:
        """Process exactly one event (advancing the clock to it).

        Returns the processed event.  This is the reference path; bulk
        draining goes through :meth:`run_batched`, which behaves exactly
        like repeated ``step()`` calls.
        """
        if not self._queue:
            raise StopSimulation("event queue is empty")
        t, _prio, _seq, event = heappop(self._queue)
        self._now = t
        self._event_count += 1
        if self._profile is not None:
            self._profile.count(event)
        event._process()
        return event

    def run_batched(
        self,
        until: Event | None = None,
        *,
        max_events: int | None = None,
    ) -> bool:
        """Drain the event queue on the engine's fast path.

        Events are processed in exactly the order repeated :meth:`step`
        calls would produce (the documented FIFO/priority contract), but
        the pop/dispatch sequence is inlined and same-time runs are
        drained in batches so the clock is written once per timestamp.

        Parameters
        ----------
        until:
            Stop right after this event has been processed.  Raises
            :class:`Deadlock` if the queue drains first.
        max_events:
            Process at most this many events, then return ``False``.

        Returns ``True`` when finished (queue drained, or ``until``
        processed), ``False`` when the ``max_events`` budget ran out.
        """
        if until is not None and until._state == PROCESSED:
            return True
        if self._profile is not None:
            return self._run_instrumented(until, max_events)

        queue = self._queue
        pop = heappop
        budget = -1 if max_events is None else max_events
        if budget == 0:
            return until is None and not queue
        count = 0
        try:
            while queue:
                t = queue[0][0]
                self._now = t
                # Drain everything scheduled for exactly t.  Callbacks may
                # push new time-t entries; the peek re-checks pick those up
                # in (priority, seq) order, same as step() would.
                while queue and queue[0][0] == t:
                    event = pop(queue)[3]
                    count += 1
                    # Inlined Event._process (do not override _process in
                    # Event subclasses; the loop bypasses the method).
                    event._state = PROCESSED
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    elif not event._ok and not event.defused:
                        # A failure nobody waited on: surface it.
                        raise event._value
                    if event is until:
                        return True
                    if count == budget:
                        return False
        finally:
            self._event_count += count
        if until is not None:
            raise Deadlock(
                "simulation ran out of events before the awaited "
                f"event fired ({until!r}); deadlock?"
            )
        return True

    def _run_instrumented(
        self, until: Event | None, max_events: int | None
    ) -> bool:
        """Profiling twin of :meth:`run_batched`, built on :meth:`step`."""
        budget = -1 if max_events is None else max_events
        if budget == 0:
            return until is None and not self._queue
        count = 0
        while self._queue:
            event = self.step()
            count += 1
            if event is until:
                return True
            if count == budget:
                return False
        if until is not None:
            raise Deadlock(
                "simulation ran out of events before the awaited "
                f"event fired ({until!r}); deadlock?"
            )
        return True

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed and return
          its value (raising if it failed).
        """
        if until is None:
            self.run_batched()
            return None

        if isinstance(until, Event):
            sentinel = until
            if sentinel._state != PROCESSED:
                # Register as a waiter so a failing sentinel counts as
                # handled (run() re-raises it below), and detach again on
                # every exit path — a stale callback must not linger on
                # the sentinel after the run returns or raises.
                sentinel.callbacks.append(_noop_callback)
                try:
                    self.run_batched(sentinel)
                finally:
                    sentinel._remove_callback(_noop_callback)
            if not sentinel.ok:
                sentinel.defused = True
                raise sentinel.value
            return sentinel.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(
                f"cannot run until {horizon}; clock is already at {self._now}"
            )
        queue = self._queue
        pop = heappop
        count = 0
        try:
            while queue and queue[0][0] <= horizon:
                if self._profile is not None:
                    self.step()
                    continue
                t = queue[0][0]
                self._now = t
                while queue and queue[0][0] == t:
                    event = pop(queue)[3]
                    count += 1
                    event._state = PROCESSED
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    elif not event._ok and not event.defused:
                        raise event._value
        finally:
            self._event_count += count
        self._now = horizon
        return None
