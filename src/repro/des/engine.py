"""The simulation environment: clock + event queue + run loop."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.des.events import AllOf, AnyOf, Event, Timeout
from repro.des.process import Process


class StopSimulation(Exception):
    """Raised by :meth:`Environment.run` internals to halt the loop."""


class Environment:
    """Discrete-event simulation environment.

    Time is a float in whatever unit the caller chooses; the rest of this
    library uses microseconds (see :mod:`repro.util.units`).

    Events scheduled for the same time fire in FIFO order of scheduling,
    with an integer ``priority`` tie-break below that (lower fires first;
    process-start events use priority -1 so a freshly spawned process gets
    its first step before same-time ordinary events).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active: Optional[Process] = None
        self._event_count = 0

    # -- introspection ------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing a step, if any."""
        return self._active

    @property
    def processed_event_count(self) -> int:
        """Total number of events processed so far (profiling aid)."""
        return self._event_count

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- factories ------------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` after the current time."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Spawn a new process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling / run loop ----------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise StopSimulation("event queue is empty")
        t, _prio, _seq, event = heapq.heappop(self._queue)
        if t < self._now:  # pragma: no cover - guarded by _schedule
            raise RuntimeError("event queue corrupted: time went backwards")
        self._now = t
        self._event_count += 1
        event._process()

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed and return
          its value (raising if it failed).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            done = {"hit": False}

            def mark(ev: Event) -> None:
                done["hit"] = True

            if sentinel.processed:
                done["hit"] = True
            else:
                sentinel.callbacks.append(mark)
            while not done["hit"]:
                if not self._queue:
                    raise RuntimeError(
                        "simulation ran out of events before the awaited "
                        f"event fired ({sentinel!r}); deadlock?"
                    )
                self.step()
            if not sentinel.ok:
                sentinel.defused = True
                raise sentinel.value
            return sentinel.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(
                f"cannot run until {horizon}; clock is already at {self._now}"
            )
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
