"""Event primitives for the DES engine.

An :class:`Event` is a one-shot occurrence with a value.  Processes wait on
events by ``yield``-ing them; the environment resumes each waiter when the
event is processed.  Events move through three states::

    PENDING -> TRIGGERED (scheduled on the event queue) -> PROCESSED

Triggering is split from processing so that simultaneous events interleave
deterministically through the central queue rather than recursing through
callback chains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.des.engine import Environment

#: Event state constants.
PENDING = 0
TRIGGERED = 1
PROCESSED = 2


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    ``cause`` carries the interrupter's payload (for the processor model it
    is the arriving message that preempted computation).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        Owning environment.
    """

    __slots__ = ("env", "_state", "_value", "_ok", "callbacks", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self._state = PENDING
        self._value: Any = None
        self._ok = True
        self.callbacks: List[Callable[["Event"], None]] = []
        #: set by Environment.run when a failed event had no waiters
        self.defused = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (succeed/fail called)."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only after triggering)."""
        if self._state == PENDING:
            raise RuntimeError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception if it failed)."""
        if self._state == PENDING:
            raise RuntimeError("event has not been triggered yet")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None, *, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, *, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure carrying ``exception``."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.env._schedule(self, 0.0 if delay == 0.0 else delay)
        return self

    # -- internal ----------------------------------------------------------

    def _process(self) -> None:
        """Run callbacks.  Called by the environment event loop only."""
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        if not self._ok and not self.defused and not callbacks:
            # A failure nobody waited on: surface it instead of losing it.
            raise self._value

    def _remove_callback(self, cb: Callable[["Event"], None]) -> None:
        try:
            self.callbacks.remove(cb)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are the engine's hottest allocation; set every slot
        # directly instead of chaining through Event.__init__ (which
        # would store _state/_ok/_value twice).
        self.env = env
        self.delay = delay
        self._state = TRIGGERED
        self._value = value
        self._ok = True
        self.callbacks = []
        self.defused = False
        env._schedule(self, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._done = 0
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("all events must share one environment")
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _needed(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            ev.defused = True
            self.fail(ev.value)
            return
        self._done += 1
        if self._done >= self._needed():
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {ev: ev.value for ev in self.events if ev.triggered and ev.ok}


class AnyOf(_Condition):
    """Fires when any child event has fired (value: dict of fired events)."""

    __slots__ = ()

    def _needed(self) -> int:
        return 1


class AllOf(_Condition):
    """Fires when all child events have fired (value: dict of fired events)."""

    __slots__ = ()

    def _needed(self) -> int:
        return len(self.events)


class Initialize(Event):
    """Internal event used to start a new process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", value: Any = None):
        self.env = env
        self._state = TRIGGERED
        self._value = value
        self._ok = True
        self.callbacks = []
        self.defused = False
        env._schedule(self, 0.0, priority=-1)
