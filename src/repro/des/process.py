"""Generator-based simulation processes.

A process wraps a Python generator.  Each value the generator yields must
be an :class:`~repro.des.events.Event`; the process sleeps until that
event fires, then resumes with the event's value (``ev.value`` is sent in,
or the failure exception is thrown in).  The process object is itself an
event that fires when the generator returns, carrying the generator's
return value — so processes can wait on other processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.des.events import (
    Event,
    Initialize,
    Interrupt,
    PENDING,
    PROCESSED,
    TRIGGERED,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.engine import Environment


class ProcessKilled(Exception):
    """Raised inside a process that was forcibly killed via .kill()."""


class Process(Event):
    """A running simulation process.

    Parameters
    ----------
    env:
        Owning environment.
    generator:
        The generator implementing the process body.
    name:
        Optional label used in reprs and error messages.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on (None while running)
        self._target: Optional[Event] = None
        Initialize(env).callbacks.append(self._resume)

    # -- public API --------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error.  A process may not
        interrupt itself (that would mean throwing into a running frame).
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already terminated")
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        # Detach from whatever the process was waiting for ...
        if self._target is not None:
            self._target._remove_callback(self._resume)
            self._target = None
        # ... and resume it immediately with the interrupt.
        wakeup = Event(self.env)
        wakeup.callbacks.append(self._resume_with_interrupt)
        wakeup.succeed(Interrupt(cause))

    def kill(self) -> None:
        """Forcibly terminate the process by throwing :class:`ProcessKilled`.

        Unlike interrupt, a kill that the process body does not catch is
        swallowed: the process event fails defused, waiters see the failure.
        """
        if not self.is_alive:
            return
        if self._target is not None:
            self._target._remove_callback(self._resume)
            self._target = None
        wakeup = Event(self.env)
        wakeup.callbacks.append(self._resume_with_kill)
        wakeup.succeed(None)

    # -- resume paths --------------------------------------------------------

    def _resume_with_interrupt(self, ev: Event) -> None:
        self._throw_in(ev.value, killing=False)

    def _resume_with_kill(self, ev: Event) -> None:
        self._throw_in(ProcessKilled(), killing=True)

    def _resume(self, ev: Event) -> None:
        """Advance the generator one step and rearm on its next yield.

        This is the engine's hottest callback (one call per processed
        event a process waits on), so the success path is fully inlined:
        no property lookups, no delegation, and the common rearm case —
        a live event in this environment — is handled here.
        """
        self._target = None
        env = self.env
        env._active = self
        try:
            if ev._ok:
                target = self._generator.send(ev._value)
            else:
                target = self._generator.throw(ev._value)
        except StopIteration as stop:
            env._active = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active = None
            self.fail(exc)
            return
        env._active = None

        # Hot rearm: a pending/triggered event belonging to this env.
        if isinstance(target, Event) and target.env is env:
            state = target._state
            if state != PROCESSED:
                target.callbacks.append(self._resume)
                self._target = target
                if state == TRIGGERED and not target._ok:
                    # We are now a waiter on the failure, so it is handled.
                    target.defused = True
                return
        self._rearm(target)

    def _throw_in(self, exc: BaseException, killing: bool) -> None:
        """Resume the generator by throwing (interrupt/kill cold path)."""
        self._target = None
        env = self.env
        env._active = self
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            env._active = None
            self.succeed(stop.value)
            return
        except ProcessKilled as err:
            env._active = None
            self.fail(err)
            if killing:
                # Normal kill path: fail quietly, nobody has to observe it.
                self.defused = True
            return
        except BaseException as err:
            env._active = None
            self.fail(err)
            return
        env._active = None
        self._rearm(target)

    def _rearm(self, target: Any) -> None:
        """Wait on ``target`` (slow cases: processed/foreign/non-events)."""
        if not isinstance(target, Event):
            err = RuntimeError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
            self._generator.close()
            self.fail(err)
            return
        if target.env is not self.env:
            self._generator.close()
            self.fail(RuntimeError("yielded event belongs to another environment"))
            return
        if target._state == PROCESSED:
            # Already done: resume at the current time through the queue so
            # simultaneous events keep FIFO order.
            proxy = Event(self.env)
            proxy.callbacks.append(self._resume)
            if target._ok:
                proxy.succeed(target._value)
            else:
                target.defused = True
                proxy.fail(target._value)
            self._target = proxy
        else:
            target.callbacks.append(self._resume)
            self._target = target
            if target._state == TRIGGERED and not target._ok:
                # We are now a waiter on the failure, so it is handled.
                target.defused = True

    def __repr__(self) -> str:
        status = "alive" if self.is_alive else "dead"
        return f"<Process {self.name} {status} at {id(self):#x}>"
