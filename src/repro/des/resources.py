"""Counted resources with FIFO queuing.

:class:`Resource` models a facility with ``capacity`` concurrent slots
(links, DMA engines, barrier hardware ports).  Processes ``yield
resource.request()``, do their work, then call ``release(req)``.  The
request queue is FIFO, which keeps contention deterministic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.des.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.engine import Environment


class Request(Event):
    """A pending or granted claim on a resource slot."""

    __slots__ = ("resource", "granted")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.granted = False

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        if not self.granted:
            self.resource._withdraw(self)


class Resource:
    """A facility with a fixed number of concurrent usage slots."""

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: List[Request] = []
        self._waiters: List[Request] = []
        #: cumulative (time-weighted) busy integral for utilisation metrics
        self._busy_integral = 0.0
        self._last_change = env.now

    # -- metrics -------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def utilization_integral(self) -> float:
        """Time-integral of busy slots up to 'now' (divide by elapsed*capacity)."""
        self._account()
        return self._busy_integral

    def _account(self) -> None:
        now = self.env.now
        self._busy_integral += len(self._users) * (now - self._last_change)
        self._last_change = now

    # -- protocol -------------------------------------------------------------

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the claim is granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._account()
            self._users.append(req)
            req.granted = True
            req.succeed(req)
        else:
            self._waiters.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        if request not in self._users:
            raise ValueError("releasing a request that does not hold a slot")
        self._account()
        self._users.remove(request)
        if self._waiters:
            nxt = self._waiters.pop(0)
            self._users.append(nxt)
            nxt.granted = True
            nxt.succeed(nxt)

    def _withdraw(self, request: Request) -> None:
        try:
            self._waiters.remove(request)
        except ValueError:
            pass
