"""Message queues for the DES engine.

:class:`Store` is an unbounded (or capacity-bounded) FIFO of items with
event-returning ``put``/``get``; it is the building block for processor
receive queues in both simulators.  :class:`PriorityStore` dequeues the
smallest item first; :class:`FilterStore` lets getters select items by
predicate (used for reply matching).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List

from repro.des.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.engine import Environment


class StorePut(Event):
    """Put request; fires when the item has been accepted."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Get request; fires with the retrieved item as value."""

    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)


class FilterStoreGet(StoreGet):
    """Get request with a predicate selecting acceptable items."""

    __slots__ = ("predicate",)

    def __init__(self, store: "Store", predicate: Callable[[Any], bool]):
        super().__init__(store)
        self.predicate = predicate


class Store:
    """FIFO item store with optional capacity.

    ``put`` returns an event that fires once the item is stored (instantly
    unless the store is full); ``get`` returns an event that fires with an
    item once one is available.  Waiters are served in FIFO order.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    @property
    def pending_gets(self) -> int:
        """Number of getters currently blocked."""
        return len(self._get_waiters)

    def put(self, item: Any) -> StorePut:
        """Request to add ``item``; returns the completion event."""
        ev = StorePut(self, item)
        # Fast path: no queued puts ahead and room available — accept
        # directly; a full dispatch only runs when getters are blocked.
        if not self._put_waiters and len(self.items) < self.capacity:
            self._accept(item)
            ev.succeed()
            if self._get_waiters:
                self._dispatch()
        else:
            self._put_waiters.append(ev)
            self._dispatch()
        return ev

    def get(self) -> StoreGet:
        """Request to remove the oldest item; returns the retrieval event."""
        ev = StoreGet(self)
        # Fast path: no getters queued ahead and an item is available.
        if not self._get_waiters and self.items:
            item = self._extract(ev)
            if item is not self._NOTHING:
                ev.succeed(item)
                # Taking an item may free capacity for queued puts.
                if self._put_waiters:
                    self._dispatch()
                return ev
        self._get_waiters.append(ev)
        self._dispatch()
        return ev

    def cancel(self, get_ev: StoreGet) -> None:
        """Withdraw a get request that has not been served yet.

        Needed by waiters that race a get against another event (e.g. a
        compute timeout vs. message arrival): the loser must be cancelled
        or it would silently steal a later item.  No-op if already served.
        """
        try:
            self._get_waiters.remove(get_ev)
        except ValueError:
            pass

    # -- internals ----------------------------------------------------------

    #: sentinel distinguishing "no suitable item" from a stored None
    _NOTHING = object()

    def _accept(self, item: Any) -> None:
        self.items.append(item)

    def _extract(self, get_ev: StoreGet) -> Any:
        """Pick the item for ``get_ev``; _NOTHING means nothing suitable."""
        return self.items.pop(0) if self.items else self._NOTHING

    def _dispatch(self) -> None:
        while True:
            # Admit queued puts while there is room.
            while self._put_waiters and len(self.items) < self.capacity:
                put_ev = self._put_waiters.pop(0)
                self._accept(put_ev.item)
                put_ev.succeed()
            # Serve getters (FIFO; FilterStore may skip non-matching ones).
            served = False
            i = 0
            while i < len(self._get_waiters) and self.items:
                get_ev = self._get_waiters[i]
                item = self._extract(get_ev)
                if item is self._NOTHING:
                    i += 1
                    continue
                self._get_waiters.pop(i)
                get_ev.succeed(item)
                served = True
            # Serving a get can free capacity for a queued put; loop only
            # when that can actually unblock something.
            if not (served and self._put_waiters):
                return


class FilterStore(Store):
    """Store whose getters select items with a predicate."""

    def get(self, predicate: Callable[[Any], bool] | None = None) -> StoreGet:
        ev = FilterStoreGet(self, predicate or (lambda item: True))
        self._get_waiters.append(ev)
        self._dispatch()
        return ev

    def _extract(self, get_ev: StoreGet) -> Any:
        pred = getattr(get_ev, "predicate", lambda item: True)
        for idx, item in enumerate(self.items):
            if pred(item):
                return self.items.pop(idx)
        return self._NOTHING


@dataclass(order=True)
class PriorityItem:
    """Wrapper giving any payload an orderable priority."""

    priority: float
    item: Any = field(compare=False)


class PriorityStore(Store):
    """Store that always yields the smallest item first.

    Items must be mutually orderable; wrap payloads in
    :class:`PriorityItem` when they are not.
    """

    def _accept(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _extract(self, get_ev: StoreGet) -> Any:
        return heapq.heappop(self.items) if self.items else self._NOTHING
