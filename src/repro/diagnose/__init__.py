"""Automatic performance-anomaly detection over recorded timelines.

:mod:`repro.obs` records *what happened* during a simulated execution;
this package answers *why it was slow*.  :func:`diagnose` consumes a
:class:`~repro.obs.recorder.Timeline` — live from
``SimulationResult.timeline`` or loaded back from a Chrome trace-event
file via :func:`repro.obs.export.load_chrome_trace` — and returns a
ranked, byte-deterministic :class:`DiagnosisReport` of typed findings:
stragglers, barrier imbalance, communication hotspots and idle tails
(see :mod:`repro.diagnose.detectors` for the catalog and
``docs/DIAGNOSE.md`` for the thresholds and JSON schema).

Entry points:

* ``extrap timeline RUN.json --diagnose [--json]`` — diagnose a
  recorded timeline file;
* ``extrap validate TRACE --diagnose [--faults PLAN.json]`` —
  extrapolate and diagnose in one step (the fault injector provides
  labeled positives, so this doubles as a detector self-check);
* ``POST /v1/predict`` with ``"diagnose": true`` — the serve API
  attaches the findings to the prediction response.
"""

from repro.diagnose.detectors import (
    DEFAULT_THRESHOLDS,
    DETECTORS,
    DiagnoseThresholds,
    detect_barrier_imbalance,
    detect_comm_hotspots,
    detect_idle_tail,
    detect_stragglers,
    diagnose,
)
from repro.diagnose.findings import (
    KINDS,
    SCHEMA_VERSION,
    DiagnosisReport,
    Finding,
    make_finding,
)

__all__ = [
    "DEFAULT_THRESHOLDS",
    "DETECTORS",
    "DiagnoseThresholds",
    "DiagnosisReport",
    "Finding",
    "KINDS",
    "SCHEMA_VERSION",
    "detect_barrier_imbalance",
    "detect_comm_hotspots",
    "detect_idle_tail",
    "detect_stragglers",
    "diagnose",
    "make_finding",
]
