"""Anomaly detectors over recorded timelines.

Each detector is a **pure function** ``(Timeline, DiagnoseThresholds) ->
List[Finding]``: no randomness, no clock, no global state.  Fixed
thresholds plus the deterministic simulation mean a diagnosis is
byte-reproducible — the property the CLI/serve layers and the tests
lean on.

The committed fig4–fig9 parameter spaces are *structurally* imbalanced
— Grid and Mgrid's (BLOCK, BLOCK) distribution idles whole processors
at non-square counts, Sparse's row distribution is irregular — so
detectors that compare raw busy or wait totals across processors
cannot separate a healthy-but-lopsided run from an injected fault.
Every detector therefore normalises against what the program *asked
each processor to do*:

``straggler``
    A *slow* processor, not a busy one: the mean duration of a
    processor's compute actions against the fleet median.  A processor
    with 10x the work of its neighbours has many normal-length actions
    (healthy imbalance, mean stays ~1x); a processor slowed by
    interference runs the *same* actions longer (mean rises with the
    slowdown).  Clean suite runs stay below 2.3x; injected stragglers
    measure 5x and up.
``barrier_imbalance``
    Computing processors idle at barriers despite *balanced* compute:
    net barrier wait (episode time minus busy time nested inside the
    episodes) as a fraction of the run, gated on the busy spread of the
    processors that actually compute *and* on the longest single wait
    episode — an injected delay is one long episode; a barrier-bound
    program accumulates its wait over many short ones.  The gates keep
    the structural cases quiet — processors with no work at all (Grid
    at non-square counts), runs whose waits are explained by uneven
    work (Sparse), barrier-dominated runs (Matmul on CM-5 parameters)
    — and keep straggler-induced waiting typed as ``straggler``.  The
    finding names the *culprit*: the processor everyone waited on
    (least net wait), not the victims.
``comm_hotspot``
    Communication concentrates: one src→owner pair or one receiving
    processor handles far more than the uniform share of remote
    accesses, or one receive queue holds a standing backlog far above
    the fleet median (the absolute floor scales with the processor
    count, because healthy service load per owner grows with the fleet).
``idle_tail``
    A processor goes dark well before the run ends (its last busy span
    closes early): end-of-run load imbalance.

Thresholds are tuned against the committed experiment spaces — every
clean fig4–fig9 configuration must diagnose empty while seeded
:class:`~repro.faults.plan.FaultPlan` stragglers and barrier delays are
reliably flagged (see ``tests/test_diagnose.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from statistics import median
from typing import Dict, List, Optional, Tuple

from repro.diagnose.findings import DiagnosisReport, Finding, make_finding
from repro.obs.recorder import Timeline, WAIT_CATEGORIES


@dataclass(frozen=True)
class DiagnoseThresholds:
    """Fixed detector thresholds (all pure numbers, no hidden units)."""

    #: straggler: flag a processor whose mean compute-action duration is
    #: at least this multiple of the fleet median (clean suite maximum
    #: is ~2.2x — Grid's unequal patch sizes; injected stragglers start
    #: around 5x)
    straggler_slow_factor: float = 3.5
    #: straggler: need at least this many computing processors for the
    #: fleet median to mean anything
    straggler_min_procs: int = 3
    #: straggler: only judge a processor running at least this share of
    #: the median action count — a processor given *different* work
    #: (Matmul's WHOLE dimensions run 24 big actions against the
    #: fleet's 168 small ones) is heterogeneous, not slow
    straggler_min_action_share: float = 0.5
    #: barrier: only when the busy spread of computing processors is at
    #: most this fraction of their median — wait explained by uneven
    #: work (or by a straggler) is not a barrier problem
    barrier_busy_balance: float = 0.75
    #: barrier: flag when some computing processor's *net* barrier wait
    #: (episodes minus busy nested inside) is at least this fraction of
    #: the run (clean balanced runs stay below 0.45)
    barrier_wait_frac: float = 0.65
    #: barrier: ...and some single wait episode spans at least this
    #: fraction of the run.  Injected delays stretch *individual*
    #: episodes (a 20 ms delay is one 20 ms wait for everyone else);
    #: barrier-bound-but-healthy runs accumulate their wait over many
    #: short episodes (clean maximum 0.09 among runs passing the other
    #: gates)
    barrier_episode_frac: float = 0.12
    #: comm: ignore timelines with fewer remote accesses than this
    hotspot_min_accesses: int = 16
    #: comm: flag a src→owner pair above this multiple of the uniform share
    hotspot_pair_skew: float = 4.0
    #: ...but only when its absolute share is at least this
    hotspot_pair_min_share: float = 0.25
    #: comm: flag a receiver above this multiple of the uniform 1/n share
    hotspot_recv_skew: float = 6.0
    #: ...but only when its absolute inbound share is at least this
    hotspot_recv_min_share: float = 0.5
    #: comm backlog: absolute floor on time-weighted mean queue depth
    queue_mean_depth: float = 2.0
    #: comm backlog: the floor scales as this many messages per
    #: processor (healthy aggregate service load grows with the fleet:
    #: clean Sparse reaches mean depth ~n/3)
    queue_depth_per_proc: float = 0.5
    #: comm backlog: ...and the depth must be this multiple of the
    #: fleet median depth + 1 (a backlog everyone shares is the
    #: program's nature, not a hotspot)
    queue_skew: float = 4.0
    #: idle tail: flag a processor idle for this trailing fraction of the run
    idle_tail_frac: float = 0.25

    def to_dict(self) -> Dict[str, float]:
        return asdict(self)


#: the default thresholds every entry point uses
DEFAULT_THRESHOLDS = DiagnoseThresholds()


# -- shared helpers ---------------------------------------------------------


def _busy_us(timeline: Timeline, proc: int) -> float:
    """Busy time on ``proc``: span totals excluding wait episodes."""
    totals = timeline.category_totals(proc)
    return sum(
        v for cat, v in totals.items() if cat not in WAIT_CATEGORIES
    )


def _compute_stats(timeline: Timeline) -> Dict[int, Tuple[int, float]]:
    """Per-processor ``(count, total_us)`` of *compute* spans.

    Processors with no compute spans are absent — they were given no
    work, and no detector should judge them against the workers.
    """
    stats: Dict[int, Tuple[int, float]] = {}
    for p in range(timeline.n_procs):
        count, total = 0, 0.0
        for s in timeline.spans_for(p):
            if s.category == "compute":
                count += 1
                total += s.duration
        if count:
            stats[p] = (count, total)
    return stats


def _barrier_wait_profile(timeline: Timeline, proc: int) -> Tuple[float, float]:
    """``(net_wait_us, max_episode_us)`` for barrier waiting on ``proc``.

    Wait spans record the wall-clock episode; a processor servicing
    remote requests mid-wait is not idle, so the net figure subtracts
    the busy overlap.  The max episode is the longest single merged
    wait interval — the signature of a delayed barrier, as opposed to
    wait accumulated over many short episodes.
    """
    spans = timeline.spans_for(proc)
    waits = sorted(
        (s.t0, s.t1) for s in spans if s.category == "barrier_wait"
    )
    if not waits:
        return 0.0, 0.0
    merged: List[Tuple[float, float]] = []
    for t0, t1 in waits:
        if merged and t0 <= merged[-1][1]:
            if t1 > merged[-1][1]:
                merged[-1] = (merged[-1][0], t1)
        else:
            merged.append((t0, t1))
    episode = sum(t1 - t0 for t0, t1 in merged)
    busy = sorted(
        (s.t0, s.t1)
        for s in spans
        if s.category not in WAIT_CATEGORIES
    )
    nested = 0.0
    i = 0
    for b0, b1 in busy:
        while i < len(merged) and merged[i][1] <= b0:
            i += 1
        j = i
        while j < len(merged) and merged[j][0] < b1:
            lo = max(b0, merged[j][0])
            hi = min(b1, merged[j][1])
            if hi > lo:
                nested += hi - lo
            j += 1
    return episode - nested, max(t1 - t0 for t0, t1 in merged)


def _instant_count(timeline: Timeline, name: str, proc: Optional[int] = None) -> int:
    return sum(
        1
        for i in timeline.instants
        if i.name == name and (proc is None or i.proc == proc)
    )


def _mean_counter(
    timeline: Timeline, name: str
) -> Optional[float]:
    """Time-weighted mean of an on-change counter over ``[0, end_time]``.

    ``None`` when the series is absent or the run has no extent.
    """
    series = timeline.counters.get(name)
    end = timeline.end_time
    if series is None or end <= 0:
        return None
    area = 0.0
    prev_t, prev_v = 0.0, 0.0
    for t, v in series.samples:
        t = min(t, end)
        if t > prev_t:
            area += prev_v * (t - prev_t)
        prev_t, prev_v = t, float(v)
    if end > prev_t:
        area += prev_v * (end - prev_t)
    return area / end


# -- detectors --------------------------------------------------------------


def detect_stragglers(
    timeline: Timeline, thresholds: DiagnoseThresholds = DEFAULT_THRESHOLDS
) -> List[Finding]:
    """Processors whose compute *actions* run slow against the fleet."""
    if timeline.n_procs < 2 or timeline.end_time <= 0:
        return []
    stats = _compute_stats(timeline)
    if len(stats) < thresholds.straggler_min_procs:
        return []
    mean_dur = {p: total / count for p, (count, total) in stats.items()}
    fleet = median(mean_dur.values())
    med_count = median(count for count, _ in stats.values())
    if fleet <= 0:
        return []
    findings: List[Finding] = []
    for p in sorted(mean_dur):
        slowdown = mean_dur[p] / fleet
        if slowdown < thresholds.straggler_slow_factor:
            continue
        if stats[p][0] < thresholds.straggler_min_action_share * med_count:
            # Far fewer actions than the fleet: different work, not
            # the same work running slow.
            continue
        evidence = {
            "mean_action_us": mean_dur[p],
            "fleet_median_us": fleet,
            "slowdown": slowdown,
            "n_actions": stats[p][0],
            "busy_us": _busy_us(timeline, p),
        }
        injected = _instant_count(timeline, "fault.straggler", p)
        if injected:
            evidence["injected_stragglers"] = injected
        findings.append(
            make_finding(
                "straggler",
                min(1.0, slowdown / (2.0 * thresholds.straggler_slow_factor)),
                f"compute actions average {mean_dur[p]:.0f} us, "
                f"{slowdown:.1f}x the fleet median {fleet:.0f} us "
                f"over {stats[p][0]} actions",
                proc=p,
                **evidence,
            )
        )
    return findings


def detect_barrier_imbalance(
    timeline: Timeline, thresholds: DiagnoseThresholds = DEFAULT_THRESHOLDS
) -> List[Finding]:
    """Computing processors idle at barriers despite balanced work."""
    end = timeline.end_time
    if timeline.n_procs < 2 or end <= 0:
        return []
    stats = _compute_stats(timeline)
    if len(stats) < 2:
        return []
    workers = sorted(stats)
    busy = {p: _busy_us(timeline, p) for p in workers}
    med_busy = median(busy.values())
    if med_busy <= 0:
        return []
    balance = (max(busy.values()) - min(busy.values())) / med_busy
    if balance > thresholds.barrier_busy_balance:
        return []
    profiles = {p: _barrier_wait_profile(timeline, p) for p in workers}
    wait_frac = {p: profiles[p][0] / end for p in workers}
    hi = max(wait_frac.values())
    if hi < thresholds.barrier_wait_frac:
        return []
    max_episode = max(ep for _, ep in profiles.values())
    if max_episode < thresholds.barrier_episode_frac * end:
        # Wait accumulated over many short episodes is the program
        # being barrier-bound, not a delayed barrier.
        return []
    # The culprit arrives late, so it waits the *least*; the others
    # accumulate the wait it caused.  Ties resolve to the lowest pid.
    lo = min(wait_frac.values())
    culprit = min(p for p in workers if wait_frac[p] == lo)
    n_barriers = _instant_count(timeline, "barrier_release")
    evidence = {
        "max_wait_frac": hi,
        "min_wait_frac": lo,
        "max_episode_frac": max_episode / end,
        "busy_balance": balance,
        "n_barriers": n_barriers,
    }
    delayed = _instant_count(timeline, "fault.barrier_delay")
    if delayed:
        evidence["injected_delays"] = delayed
    return [
        make_finding(
            "barrier_imbalance",
            min(1.0, hi),
            f"barrier waits reach {hi:.0%} of the run while compute is "
            f"balanced (spread {balance:.0%} of median); proc {culprit} "
            f"arrives last and keeps the others waiting",
            proc=culprit,
            **evidence,
        )
    ]


def _access_pairs(timeline: Timeline) -> Dict[Tuple[int, int], List[float]]:
    """src→owner remote accesses: ``(src, owner) -> [count, bytes]``."""
    pairs: Dict[Tuple[int, int], List[float]] = {}
    for i in timeline.instants:
        if i.name not in ("remote_read", "remote_write"):
            continue
        args = i.args_dict()
        owner = args.get("owner")
        if owner is None:
            continue
        entry = pairs.setdefault((i.proc, int(owner)), [0, 0.0])
        entry[0] += 1
        entry[1] += float(args.get("nbytes", 0))
    return pairs


def detect_comm_hotspots(
    timeline: Timeline, thresholds: DiagnoseThresholds = DEFAULT_THRESHOLDS
) -> List[Finding]:
    """Concentrated remote-access traffic and receive-queue backlogs."""
    n = timeline.n_procs
    if n < 2 or timeline.end_time <= 0:
        return []
    findings: List[Finding] = []
    pairs = _access_pairs(timeline)
    total = sum(int(c) for c, _ in pairs.values())
    if total >= thresholds.hotspot_min_accesses:
        uniform_pair = 1.0 / (n * (n - 1))
        # Worst pair first; deterministic tie-break on (src, owner).
        for (src, owner), (count, nbytes) in sorted(
            pairs.items(), key=lambda kv: (-kv[1][0], kv[0])
        ):
            share = count / total
            if (
                share >= thresholds.hotspot_pair_min_share
                and share >= thresholds.hotspot_pair_skew * uniform_pair
            ):
                findings.append(
                    make_finding(
                        "comm_hotspot",
                        min(1.0, share),
                        f"{int(count)} of {total} remote accesses "
                        f"({share:.0%}) go proc {src} -> proc {owner} "
                        f"({nbytes:.0f} bytes requested)",
                        proc=src,
                        pair_src=src,
                        pair_owner=owner,
                        accesses=int(count),
                        total_accesses=total,
                        share=share,
                        bytes=nbytes,
                    )
                )
        # Receiver concentration: who owns the data everyone needs?
        inbound: Dict[int, int] = {}
        for (_, owner), (count, _) in pairs.items():
            inbound[owner] = inbound.get(owner, 0) + int(count)
        uniform_recv = 1.0 / n
        for owner in sorted(inbound, key=lambda o: (-inbound[o], o)):
            share = inbound[owner] / total
            if (
                share >= thresholds.hotspot_recv_min_share
                and share >= thresholds.hotspot_recv_skew * uniform_recv
            ):
                evidence = {
                    "inbound_accesses": inbound[owner],
                    "total_accesses": total,
                    "share": share,
                }
                depth = _mean_counter(
                    timeline, f"proc{owner}.rxq_depth"
                )
                if depth is not None:
                    evidence["mean_rxq_depth"] = depth
                findings.append(
                    make_finding(
                        "comm_hotspot",
                        min(1.0, share),
                        f"proc {owner} serves {inbound[owner]} of {total} "
                        f"remote accesses ({share:.0%}; uniform would be "
                        f"{uniform_recv:.0%})",
                        proc=owner,
                        **evidence,
                    )
                )
    # Standing receive-queue backlog, independent of the access count:
    # queueing delay that the pair/receiver shares cannot see.  The
    # absolute floor scales with n, and the depth must dwarf the fleet
    # median — a backlog every queue shares is load, not a hotspot.
    floor = max(
        thresholds.queue_mean_depth, thresholds.queue_depth_per_proc * n
    )
    depths = {}
    for p in range(n):
        d = _mean_counter(timeline, f"proc{p}.rxq_depth")
        depths[p] = 0.0 if d is None else d
    med_depth = median(depths.values())
    for p in range(n):
        depth = depths[p]
        if depth >= floor and depth >= thresholds.queue_skew * (med_depth + 1.0):
            findings.append(
                make_finding(
                    "comm_hotspot",
                    min(1.0, depth / (depth + 4.0)),
                    f"receive queue holds {depth:.2f} messages on "
                    f"time-weighted average (fleet median "
                    f"{med_depth:.2f})",
                    proc=p,
                    mean_rxq_depth=depth,
                    median_rxq_depth=med_depth,
                )
            )
    return findings


def detect_idle_tail(
    timeline: Timeline, thresholds: DiagnoseThresholds = DEFAULT_THRESHOLDS
) -> List[Finding]:
    """Computing processors that go dark well before the run ends.

    Processors that never compute are skipped: a processor the program
    gave no work goes dark by construction, not by imbalance.
    """
    n = timeline.n_procs
    end = timeline.end_time
    if n < 2 or end <= 0:
        return []
    findings: List[Finding] = []
    workers = _compute_stats(timeline)
    for p in sorted(workers):
        last_busy = 0.0
        for s in timeline.spans_for(p):
            if s.category not in WAIT_CATEGORIES and s.t1 > last_busy:
                last_busy = s.t1
        tail = end - last_busy
        tail_frac = tail / end
        if tail_frac >= thresholds.idle_tail_frac:
            findings.append(
                make_finding(
                    "idle_tail",
                    min(1.0, tail_frac),
                    f"idle for the last {tail:.0f} us "
                    f"({tail_frac:.0%} of the run; last busy span ends "
                    f"at {last_busy:.0f} us)",
                    proc=p,
                    last_busy_us=last_busy,
                    tail_us=tail,
                    tail_frac=tail_frac,
                )
            )
    return findings


#: detector registry, in catalog order
DETECTORS = (
    detect_stragglers,
    detect_barrier_imbalance,
    detect_comm_hotspots,
    detect_idle_tail,
)


def diagnose(
    timeline: Timeline,
    thresholds: DiagnoseThresholds = DEFAULT_THRESHOLDS,
) -> DiagnosisReport:
    """Run every detector and return the ranked report."""
    findings: List[Finding] = []
    for detector in DETECTORS:
        findings.extend(detector(timeline, thresholds))
    return DiagnosisReport(
        n_procs=timeline.n_procs,
        end_time=timeline.end_time,
        program=timeline.program,
        params_name=timeline.params_name,
        findings=findings,
        thresholds=thresholds.to_dict(),
    )
