"""Findings and the diagnosis report: the *output* side of
:mod:`repro.diagnose`.

A :class:`Finding` is one typed anomaly with a severity score in
``[0, 1]`` and machine-readable evidence; a :class:`DiagnosisReport`
is the ranked, deterministic collection of findings one diagnosis run
produced, together with enough timeline metadata to interpret them.

Determinism contract: every severity is rounded to
:data:`SEVERITY_DECIMALS` decimals, evidence is kept as sorted
``(key, value)`` pairs, findings are ranked by
``(-severity, kind, proc, summary)``, and :meth:`DiagnosisReport.to_json`
serialises with sorted keys and fixed separators — so the same timeline
always yields byte-identical report output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: bumped when the report JSON changes incompatibly
SCHEMA_VERSION = 1

#: severity rounding, decimals (floats must not leak platform noise
#: into the byte-deterministic JSON output)
SEVERITY_DECIMALS = 6

#: the finding kinds the built-in detectors emit, in catalog order
KINDS = (
    "straggler",
    "barrier_imbalance",
    "comm_hotspot",
    "idle_tail",
)


def _round6(value: float) -> float:
    """Round evidence floats so reports stay byte-deterministic."""
    return round(float(value), SEVERITY_DECIMALS)


def clamp_severity(value: float) -> float:
    """Severity clamped into [0, 1] and rounded for determinism."""
    return _round6(min(1.0, max(0.0, value)))


@dataclass(frozen=True)
class Finding:
    """One detected anomaly.

    Attributes
    ----------
    kind:
        The detector's type tag (one of :data:`KINDS` for the built-in
        detectors).
    severity:
        Ranking score in ``[0, 1]`` — 1.0 means "dominates the run".
    summary:
        One human-readable line stating what was found and where.
    proc:
        The primary simulated processor implicated, or ``None`` for
        findings that are not attributable to one processor.
    evidence:
        Sorted ``(key, value)`` pairs of the numbers behind the call —
        enough to recompute the severity by hand.
    """

    kind: str
    severity: float
    summary: str
    proc: Optional[int] = None
    evidence: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "severity", clamp_severity(self.severity))
        object.__setattr__(
            self,
            "evidence",
            tuple(
                sorted(
                    (k, _round6(v) if isinstance(v, float) else v)
                    for k, v in self.evidence
                )
            ),
        )

    def evidence_dict(self) -> Dict[str, Any]:
        return dict(self.evidence)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "severity": self.severity,
            "summary": self.summary,
            "evidence": self.evidence_dict(),
        }
        if self.proc is not None:
            out["proc"] = self.proc
        return out

    def sort_key(self) -> Tuple:
        """Most severe first; ties broken by kind, processor, text."""
        return (
            -self.severity,
            self.kind,
            self.proc if self.proc is not None else -1,
            self.summary,
        )


def make_finding(
    kind: str,
    severity: float,
    summary: str,
    *,
    proc: Optional[int] = None,
    **evidence: Any,
) -> Finding:
    """Build a :class:`Finding` from keyword evidence."""
    return Finding(
        kind=kind,
        severity=severity,
        summary=summary,
        proc=proc,
        evidence=tuple(evidence.items()),
    )


@dataclass
class DiagnosisReport:
    """The ranked outcome of one diagnosis run over one timeline."""

    n_procs: int
    end_time: float
    program: str = ""
    params_name: str = ""
    findings: List[Finding] = field(default_factory=list)
    #: the threshold values the detectors ran with (documentation of
    #: why each finding did or did not fire)
    thresholds: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.findings = sorted(self.findings, key=Finding.sort_key)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.findings)

    def by_kind(self, kind: str) -> List[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def kinds(self) -> List[str]:
        """Distinct finding kinds present, in catalog order then name."""
        present = {f.kind for f in self.findings}
        ordered = [k for k in KINDS if k in present]
        ordered += sorted(present - set(KINDS))
        return ordered

    def worst(self) -> Optional[Finding]:
        return self.findings[0] if self.findings else None

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "program": self.program,
            "params": self.params_name,
            "n_procs": self.n_procs,
            "end_time_us": self.end_time,
            "findings": [f.to_dict() for f in self.findings],
            "thresholds": dict(sorted(self.thresholds.items())),
        }

    def to_json(self) -> str:
        """Byte-deterministic JSON document (sorted keys, fixed separators)."""
        return (
            json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
            + "\n"
        )

    # -- human rendering -----------------------------------------------------

    def format(self) -> str:
        """The human report ``extrap timeline --diagnose`` prints."""
        head = (
            f"diagnosis: {self.program or 'program'} on {self.n_procs} "
            f"processors ({self.params_name or 'unknown params'}), "
            f"0 .. {self.end_time:.1f} us"
        )
        if not self.findings:
            return head + "\n  no anomalies detected"
        counts = ", ".join(
            f"{len(self.by_kind(k))} {k}" for k in self.kinds()
        )
        lines = [head, f"  {len(self.findings)} findings ({counts})"]
        for f in self.findings:
            where = f"proc {f.proc}" if f.proc is not None else "global"
            lines.append(
                f"  [{f.severity:.2f}] {f.kind:18s} {where}: {f.summary}"
            )
            ev = " ".join(
                f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in f.evidence
            )
            if ev:
                lines.append(f"         {ev}")
        return "\n".join(lines)
