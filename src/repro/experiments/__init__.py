"""Per-figure experiment harnesses.

Each module regenerates one table or figure of the paper's evaluation
(§4): it runs the measure → translate → simulate pipeline over the
appropriate benchmarks and parameter sweeps and formats the same
rows/series the paper reports.  Results come back as
:class:`ExperimentResult` objects with numeric series (for tests and
benches) and a ``format()`` text report (tables + ASCII curve shapes).

| module  | reproduces |
|---------|------------|
| fig4    | speedup curves for all benchmarks (Figure 4) |
| fig5    | comparison of different Grid extrapolations (Figure 5) |
| fig6    | execution time / speedup under MipsRatio 2.0, 1.0, 0.5 (Figure 6) |
| fig7    | MipsRatio x CommStartupTime on Mgrid (Figure 7) |
| fig8    | remote data request service policies (Figure 8) |
| fig9    | Matmul validation vs the reference CM-5 (Figure 9, Table 3) |
| tables  | Table 1 / Table 2 / Table 3 contents from the live objects |
| ablations | barrier algorithm, topology, contention, poll interval, overhead compensation |

``quick=True`` (default) uses scaled-down problem instances so every
experiment runs in seconds; ``quick=False`` uses paper-flavoured sizes.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments import (  # noqa: F401 - re-exported harness modules
    ablations,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    multithread_study,
    tables,
    validation,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ablations",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "multithread_study",
    "run_experiment",
    "tables",
    "validation",
]
