"""Ablation studies on the simulator's design choices.

Not figures from the paper, but sweeps over the substitutable model
components the paper's simulation architecture advertises (§3.3): the
barrier algorithm, the interconnect topology, the analytical contention
model, the poll interval, and instrumentation-overhead compensation in
the translation step.

The grid-shaped ablations (barrier, topology, contention, poll) route
their extrapolations through the sweep executor
(:func:`repro.sweep.executor.extrapolate_many`): pass ``jobs=N`` — the
CLI's ``extrap experiment NAME --jobs N`` does — to fan the grid across
worker processes with results identical to the serial loop.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.bench.cyclic import make_program as make_cyclic
from repro.bench.grid import make_program as make_grid
from repro.core.pipeline import extrapolate, measure
from repro.core.translation import translate
from repro.experiments.base import ExperimentResult
from repro.experiments.paramsets import (
    PROCESSOR_COUNTS,
    cyclic_config,
    figure4_params,
    grid_config,
)
from repro.pcxx.runtime import TracingRuntime
from repro.sim.topology import available_topologies
from repro.sweep.executor import extrapolate_many


def _grid_series(
    traces: Dict[int, object],
    variants: Sequence[Tuple[str, object]],
    counts: Sequence[int],
    *,
    jobs: int = 1,
) -> Dict[str, Dict[int, float]]:
    """Predicted times for every (variant, count) cell of an ablation grid.

    Builds the flat task list in (variant-major, count-minor) order,
    runs it through the executor, and folds the results back into the
    ``{variant: {count: time}}`` shape the experiment tables use.
    """
    tasks = [
        (traces[p], params) for _, params in variants for p in counts
    ]
    times = iter(extrapolate_many(tasks, jobs=jobs))
    return {
        label: {p: next(times) for p in counts} for label, _ in variants
    }


def barrier_algorithms(
    *,
    quick: bool = True,
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
    jobs: int = 1,
) -> ExperimentResult:
    """Linear vs logarithmic vs hardware barriers on Cyclic.

    The linear master–slave barrier is the paper's upper bound; the tree
    cuts the master's serial arrival processing; hardware is the floor.
    """
    counts = [p for p in processor_counts if (p & (p - 1)) == 0]
    maker = make_cyclic(cyclic_config(quick=quick))
    base = figure4_params()
    result = ExperimentResult(
        name="ablation-barrier",
        title="Barrier algorithm ablation (Cyclic execution time)",
        ylabel="execution time (us)",
    )
    traces = {p: measure(maker(p), p, name="cyclic") for p in counts}
    variants = [
        (alg, base.with_(barrier={"algorithm": alg}))
        for alg in ("linear", "log", "hardware")
    ]
    result.series = _grid_series(traces, variants, counts, jobs=jobs)
    top = max(counts)
    lin, log_, hw = (result.series[a][top] for a in ("linear", "log", "hardware"))
    result.notes.append(
        f"at P={top}: linear {lin:.0f} us >= log {log_:.0f} us >= "
        f"hardware {hw:.0f} us expected"
    )
    return result


def topologies(
    *,
    quick: bool = True,
    processor_counts: Sequence[int] = (8, 16, 32),
    jobs: int = 1,
) -> ExperimentResult:
    """Interconnect topology sweep on Grid (actual transfer sizes)."""
    maker = make_grid(grid_config(quick=quick))
    base = figure4_params()
    result = ExperimentResult(
        name="ablation-topology",
        title="Topology ablation (Grid execution time, actual sizes)",
        ylabel="execution time (us)",
    )
    traces = {
        p: measure(maker(p), p, name="grid", size_mode="actual")
        for p in processor_counts
    }
    variants = [
        (topo, base.with_(network={"topology": topo}))
        for topo in available_topologies()
    ]
    result.series = _grid_series(traces, variants, processor_counts, jobs=jobs)
    top = max(processor_counts)
    bus = result.series["bus"][top]
    xbar = result.series["crossbar"][top]
    result.notes.append(
        f"at P={top}: bus {bus:.0f} us vs crossbar {xbar:.0f} us "
        "(bisection-1 bus should be slowest under contention)"
    )
    return result


def contention(
    *,
    quick: bool = True,
    processor_counts: Sequence[int] = (8, 16, 32),
    jobs: int = 1,
) -> ExperimentResult:
    """Analytical contention model on/off and strength sweep (Grid)."""
    maker = make_grid(grid_config(quick=quick))
    base = figure4_params().with_(network={"topology": "bus"})
    result = ExperimentResult(
        name="ablation-contention",
        title="Contention-model ablation (Grid on a bus)",
        ylabel="execution time (us)",
    )
    traces = {
        p: measure(maker(p), p, name="grid", size_mode="actual")
        for p in processor_counts
    }
    variants = [
        (label, base.with_(network=overrides))
        for label, overrides in [
            ("off", {"contention": False}),
            ("factor=0.5", {"contention": True, "contention_factor": 0.5}),
            ("factor=1.0", {"contention": True, "contention_factor": 1.0}),
            ("factor=2.0", {"contention": True, "contention_factor": 2.0}),
        ]
    ]
    result.series = _grid_series(traces, variants, processor_counts, jobs=jobs)
    return result


def poll_interval(
    *,
    quick: bool = True,
    processor_counts: Sequence[int] = (8, 16, 32),
    jobs: int = 1,
) -> ExperimentResult:
    """Poll-interval sweep on Cyclic ("an optimal choice of the polling
    interval is certainly system and likely problem specific")."""
    counts = [p for p in processor_counts if (p & (p - 1)) == 0]
    maker = make_cyclic(cyclic_config(quick=quick))
    base = figure4_params()
    result = ExperimentResult(
        name="ablation-poll",
        title="Poll interval sweep (Cyclic execution time)",
        ylabel="execution time (us)",
    )
    traces = {p: measure(maker(p), p, name="cyclic") for p in counts}
    variants = [
        (
            f"poll@{interval:g}us",
            base.with_(processor={"policy": "poll", "poll_interval": interval}),
        )
        for interval in (25.0, 100.0, 400.0, 1600.0)
    ]
    result.series = _grid_series(traces, variants, counts, jobs=jobs)
    return result


def placement(
    *, quick: bool = True, processor_counts: Sequence[int] = (8, 16, 32)
) -> ExperimentResult:
    """Processor-mapping extrapolation (§2's "processor mappings" axis).

    Grid's traffic is nearest-neighbour on the patch grid; on a 2-D mesh
    the natural row-major placement keeps it short-range while a
    stride-shuffled placement stretches every exchange across the
    machine.
    """
    from repro.sim.simulator import simulate

    maker = make_grid(grid_config(quick=quick))
    base = figure4_params().with_(
        network={"topology": "mesh2d", "hop_time": 10.0}
    )
    result = ExperimentResult(
        name="ablation-placement",
        title="Processor-mapping ablation (Grid on a 2-D mesh)",
        ylabel="execution time (us)",
    )
    natural: dict = {}
    shuffled: dict = {}
    for p in processor_counts:
        trace = measure(maker(p), p, name="grid", size_mode="actual")
        tp = translate(trace)
        natural[p] = simulate(tp, base).execution_time
        # Deterministic adjacency-breaking shuffle (stride isqrt(p)+1).
        stride = int(p**0.5) + 1
        perm = sorted(range(p), key=lambda t: (t * stride) % p * p + t)
        shuffled[p] = simulate(tp, base, placement=perm).execution_time
    result.series["natural placement"] = natural
    result.series["shuffled placement"] = shuffled
    top = max(processor_counts)
    result.notes.append(
        f"at P={top}: natural {natural[top]:.0f} us vs shuffled "
        f"{shuffled[top]:.0f} us "
        f"(+{shuffled[top] / natural[top] - 1:.1%} from longer routes)"
    )
    return result


def noise_sensitivity(
    *, quick: bool = True, n_threads: int = 16, trials: int = 5
) -> ExperimentResult:
    """Prediction robustness under measurement noise (§2's uncertainty).

    Re-measures Grid with increasing relative timing noise on compute
    phases and reports the spread of the resulting predictions.  A
    technique whose predictions scatter wildly under small measurement
    jitter would be useless for ranking design alternatives; this
    quantifies how far that is from the case.
    """
    from repro.sim.simulator import simulate

    maker = make_grid(grid_config(quick=quick))
    params = figure4_params()
    result = ExperimentResult(
        name="ablation-noise",
        title="Prediction spread under measurement noise (Grid)",
        ylabel="predicted execution time (us)",
    )
    for noise in (0.0, 0.02, 0.05, 0.10, 0.20):
        times = []
        for trial in range(1 if noise == 0.0 else trials):
            trace = measure(
                maker(n_threads),
                n_threads,
                name="grid",
                size_mode="actual",
                compute_noise=noise,
                noise_seed=1000 + trial,
            )
            times.append(extrapolate(trace, params).predicted_time)
        label = f"noise={noise:.0%}"
        result.series[label] = {
            i + 1: t for i, t in enumerate(sorted(times))
        }
        if noise > 0:
            spread = (max(times) - min(times)) / min(times)
            result.notes.append(
                f"{label}: prediction spread {spread:.1%} over {trials} trials"
            )
    return result


def fault_sweep(
    *, quick: bool = True, n_threads: int = 16
) -> ExperimentResult:
    """Prediction degradation on an unreliable machine (message loss).

    Extrapolates one Grid trace under fault plans of increasing message
    loss (with the timeout/retry recovery protocol armed) and reports
    the predicted time and the recovery traffic.  Loss 0 is the ideal
    machine and must reproduce the fault-free prediction exactly.
    """
    from dataclasses import replace

    from repro.faults.plan import FaultPlan

    maker = make_grid(grid_config(quick=quick))
    base = figure4_params()
    result = ExperimentResult(
        name="ablation-faults",
        title="Fault-injection sweep (Grid under message loss + retry)",
        ylabel="predicted execution time (us)",
    )
    trace = measure(maker(n_threads), n_threads, name="grid", size_mode="actual")
    times: dict = {}
    for i, loss in enumerate((0.0, 0.01, 0.05, 0.10)):
        if loss == 0.0:
            params = base
        else:
            plan = FaultPlan(
                seed=42,
                msg_loss_rate=loss,
                request_timeout=20_000.0,
                max_retries=8,
            )
            params = replace(base, faults=plan)
        outcome = extrapolate(trace, params)
        times[i + 1] = outcome.predicted_time
        totals = outcome.result.fault_totals()
        result.notes.append(
            f"loss={loss:.0%}: {outcome.predicted_time:.0f} us, "
            f"{totals['messages_dropped']} drops, "
            f"{totals['retries']} retries, "
            f"{totals['retry_giveups']} give-ups"
        )
    result.series["msg loss 0/1/5/10%"] = times
    if times[2] < times[1]:
        result.notes.append(
            "warning: 1% loss predicted faster than fault-free "
            "(unexpected; check the recovery protocol)"
        )
    return result


def overhead_compensation(
    *, quick: bool = True, n_threads: int = 8
) -> ExperimentResult:
    """Translation-time compensation of instrumentation overhead.

    Measures Grid with a per-event recording overhead, then translates
    with and without compensation; the compensated ideal time should
    match the unperturbed measurement's.
    """
    from repro.bench.grid import make_program

    cfg = grid_config(quick=quick)
    maker = make_program(cfg)
    overhead = 50.0
    result = ExperimentResult(
        name="ablation-overhead",
        title="Instrumentation-overhead compensation in translation",
        ylabel="ideal execution time (us)",
    )
    clean = measure(maker(n_threads), n_threads, name="grid")
    perturbed = measure(
        maker(n_threads), n_threads, name="grid", event_overhead=overhead
    )
    t_clean = translate(clean).ideal_execution_time()
    t_raw = translate(perturbed).ideal_execution_time()
    t_comp = translate(
        perturbed, event_overhead=overhead
    ).ideal_execution_time()
    result.series["ideal time"] = {
        1: t_clean,
        2: t_raw,
        3: t_comp,
    }
    result.notes.append(
        f"clean measurement: {t_clean:.0f} us; perturbed (+{overhead:g}us/event): "
        f"{t_raw:.0f} us; compensated: {t_comp:.0f} us "
        f"(residual {abs(t_comp - t_clean) / t_clean:.2%})"
    )
    return result
