"""Common experiment result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.util.asciiplot import ascii_series_plot
from repro.util.tables import format_table


@dataclass
class ExperimentResult:
    """Numeric series plus a formatted report for one experiment.

    Attributes
    ----------
    name:
        Experiment id, e.g. ``"fig4"``.
    title:
        Human title, e.g. the figure caption.
    series:
        ``{series_name: {x: y}}`` — the curves the figure plots
        (x is usually the processor count; y a time in us or a speedup).
    ylabel:
        What the y values are.
    notes:
        Free-form observations recorded by the harness (the qualitative
        claims the paper makes about this figure).
    """

    name: str
    title: str
    series: Dict[str, Dict[int, float]] = field(default_factory=dict)
    ylabel: str = "value"
    notes: List[str] = field(default_factory=list)

    def xs(self) -> List[int]:
        out = sorted({x for s in self.series.values() for x in s})
        return out

    def table(self, float_fmt: str = ".2f") -> str:
        """One row per x, one column per series."""
        xs = self.xs()
        headers = ["P"] + list(self.series)
        rows = []
        for x in xs:
            rows.append(
                [x] + [self.series[s].get(x, float("nan")) for s in self.series]
            )
        return format_table(headers, rows, float_fmt=float_fmt)

    def plot(self, *, logx: bool = True) -> str:
        data = {
            name: sorted((float(x), float(y)) for x, y in s.items())
            for name, s in self.series.items()
            if s
        }
        return ascii_series_plot(
            data, title=self.title, xlabel="processors", ylabel=self.ylabel, logx=logx
        )

    def to_csv(self) -> str:
        """The series as CSV (one row per x, one column per series) for
        downstream plotting tools."""
        headers = ["x"] + list(self.series)
        lines = [",".join(headers)]
        for x in self.xs():
            cells = [str(x)] + [
                repr(self.series[s][x]) if x in self.series[s] else ""
                for s in self.series
            ]
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def format(self) -> str:
        parts = [f"== {self.name}: {self.title} =="]
        parts.append(self.table())
        try:
            parts.append(self.plot())
        except ValueError:
            pass
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {n}" for n in self.notes)
        return "\n\n".join(parts)
