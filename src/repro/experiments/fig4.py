"""Figure 4 — speedup curves for all benchmarks.

One parameter combination (the distributed-memory preset: 20 MB/s links,
high start-up and synchronisation costs), every suite benchmark, P in
{1, 2, 4, 8, 16, 32}.  The curves should show the suite's range of
behaviours: Embar close to linear, Cyclic and Poisson reasonable, the
others limited by communication or barrier costs — with Grid and Mgrid
levelling off after four processors because the (BLOCK, BLOCK)
distribution idles processors at non-square counts.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bench.suite import BENCHMARKS
from repro.experiments.base import ExperimentResult
from repro.experiments.paramsets import PROCESSOR_COUNTS, figure4_params, suite_configs
from repro.metrics.scaling import ScalingStudy, run_scaling_study


def run(
    *,
    quick: bool = True,
    benchmarks: Sequence[str] | None = None,
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
) -> ExperimentResult:
    """Regenerate the Figure 4 speedup curves."""
    params = figure4_params()
    configs = suite_configs(quick=quick)
    names = list(benchmarks) if benchmarks else list(configs)
    result = ExperimentResult(
        name="fig4",
        title="Speedup curves for all Benchmarks (distributed-memory preset)",
        ylabel="speedup",
    )
    studies: Dict[str, ScalingStudy] = {}
    for name in names:
        info = BENCHMARKS[name]
        counts = [
            p
            for p in processor_counts
            if not info.power_of_two_only or (p & (p - 1)) == 0
        ]
        study = run_scaling_study(
            info.make_program(configs[name]),
            params,
            name=name,
            processor_counts=counts,
        )
        studies[name] = study
        result.series[name] = study.speedup_curve

    # Record the figure's qualitative claims for EXPERIMENTS.md.
    if "embar" in result.series:
        s = result.series["embar"]
        top = max(s)
        result.notes.append(
            f"embar speedup at P={top}: {s[top]:.1f} (expected near-linear)"
        )
    for name in ("grid", "mgrid"):
        if name in result.series:
            s = result.series[name]
            if 4 in s and 8 in s:
                result.notes.append(
                    f"{name} speedup 4->8 processors: {s[4]:.2f} -> {s[8]:.2f} "
                    "(the (BLOCK,BLOCK) idle-processor artifact)"
                )
    result.studies = studies  # type: ignore[attr-defined]
    return result
