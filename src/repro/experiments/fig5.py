"""Figure 5 — comparison of different Grid extrapolations.

The §4.1 performance-debugging story, replayed end to end:

1. **base** — distributed-memory preset, compiler-reported transfer
   sizes (every remote access recorded at the 231456-byte element size);
2. **high-bw** — communication bandwidth raised to 200 MB/s (the
   shared-memory approximation): better, but only about half the
   speedup of the shared-memory case;
3. **ideal** — all synchronisation and communication costs null: close
   to the desired speedup, proving the computation itself scales;
4. **actual-size** — the real fix: traces recorded with the *actual*
   remote transfer sizes (2 and 128 bytes), original parameters;
5. **actual+low-startup** — actual sizes plus reduced communication
   start-up: the best of the distributed-memory variants.

All five runs use the same single-processor measurements — the point of
the exercise is that every "what if" was answered without touching the
target machine.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.grid import make_program
from repro.core import presets
from repro.core.pipeline import extrapolate, measure
from repro.core.translation import translate
from repro.experiments.base import ExperimentResult
from repro.experiments.paramsets import PROCESSOR_COUNTS, figure4_params, grid_config
from repro.util.units import mbytes_per_s_to_us_per_byte


def run(
    *,
    quick: bool = True,
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
) -> ExperimentResult:
    """Regenerate the Figure 5 Grid comparison (execution times in us)."""
    cfg = grid_config(quick=quick)
    maker = make_program(cfg)
    base = figure4_params()
    high_bw = base.with_(
        network={"byte_transfer_time": mbytes_per_s_to_us_per_byte(200.0)}
    )
    low_startup = base.with_(network={"comm_startup_time": 10.0})
    ideal = presets.ideal()

    variants = [
        ("base (compiler sizes)", "compiler", base),
        ("200 MB/s bandwidth", "compiler", high_bw),
        ("ideal (no comm/sync)", "compiler", ideal),
        ("actual sizes (2/128 B)", "actual", base),
        ("actual + 10us startup", "actual", low_startup),
    ]

    result = ExperimentResult(
        name="fig5",
        title="Comparison of Different Extrapolations (Grid)",
        ylabel="execution time (us)",
    )
    # One measurement per (P, size_mode) — every variant reuses them.
    traces = {}
    for p in processor_counts:
        for mode in ("compiler", "actual"):
            traces[(p, mode)] = measure(
                maker(p), p, name="grid", size_mode=mode
            )
    for label, mode, params in variants:
        result.series[label] = {
            p: extrapolate(traces[(p, mode)], params).predicted_time
            for p in processor_counts
        }

    # The trace statistics that drove the §4.1 diagnosis.
    top = max(processor_counts)
    tr = traces[(top, "actual")]
    from repro.trace.stats import compute_stats

    st = compute_stats(tr)
    result.notes.append(
        f"trace statistics at P={top}: {st.n_barriers} barriers, "
        f"{st.n_remote_reads} remote reads, actual sizes "
        f"min={st.remote_bytes_min} B / max={st.remote_bytes_max} B "
        f"(compiler mode records {cfg.effective_element_nbytes()} B per access)"
    )
    ideal_time = translate(traces[(top, "compiler")]).ideal_execution_time()
    result.notes.append(
        f"ideal execution time at P={top}: {ideal_time:.0f} us "
        "(translation alone, zero-cost environment)"
    )
    return result
