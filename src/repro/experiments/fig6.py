"""Figure 6 — execution time and speedup with different MipsRatio.

Extrapolating processor speed: MipsRatio 2.0 (target half as fast), 1.0
(same), 0.5 (twice as fast) across the suite.  The paper highlights:

* (i) Embar execution times scale directly with MipsRatio;
* (ii)/(iii) Cyclic and Sort *speedup* curves barely move — their
  comp/comm balance is insensitive at these scales;
* (iv) Mgrid speedup responds strongly (communication-bound at coarse
  levels, so slower processors look relatively better);
* Poisson's communication bottleneck is "not significant until 32".
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bench.suite import BENCHMARKS
from repro.experiments.base import ExperimentResult
from repro.experiments.paramsets import PROCESSOR_COUNTS, figure4_params, suite_configs
from repro.metrics.scaling import run_scaling_study

MIPS_RATIOS = (2.0, 1.0, 0.5)

#: The four panels of Figure 6: benchmark -> which quantity it plots.
PANELS = {
    "embar": "time",
    "cyclic": "speedup",
    "sort": "speedup",
    "mgrid": "speedup",
    "poisson": "speedup",
}


def run(
    *,
    quick: bool = True,
    benchmarks: Sequence[str] | None = None,
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
) -> ExperimentResult:
    """Regenerate Figure 6's panels (series named bench@ratio)."""
    params0 = figure4_params()
    configs = suite_configs(quick=quick)
    names = list(benchmarks) if benchmarks else list(PANELS)
    result = ExperimentResult(
        name="fig6",
        title="Execution Time and Speedup Results with Different MipsRatio",
        ylabel="time (us) for embar, speedup otherwise",
    )
    for name in names:
        info = BENCHMARKS[name]
        counts = [
            p
            for p in processor_counts
            if not info.power_of_two_only or (p & (p - 1)) == 0
        ]
        maker = info.make_program(configs[name])
        for ratio in MIPS_RATIOS:
            params = params0.with_(processor={"mips_ratio": ratio})
            study = run_scaling_study(
                maker, params, name=name, processor_counts=counts
            )
            key = f"{name}@x{ratio}"
            if PANELS.get(name) == "time":
                result.series[key] = study.times
            else:
                result.series[key] = study.speedup_curve

    # Qualitative checks the paper calls out.
    def spread(name: str, p: int) -> float:
        vals = [
            result.series[f"{name}@x{r}"][p]
            for r in MIPS_RATIOS
            if p in result.series.get(f"{name}@x{r}", {})
        ]
        if not vals or min(vals) == 0:
            return 0.0
        return max(vals) / min(vals) - 1.0

    top = max(processor_counts)
    if "embar" in names:
        base_p = min(processor_counts)
        t2 = result.series["embar@x2.0"].get(base_p)
        t05 = result.series["embar@x0.5"].get(base_p)
        if t2 and t05:
            result.notes.append(
                f"embar time ratio x2.0 / x0.5 at P={base_p}: {t2 / t05:.2f} "
                "(expected ~4: compute-bound time tracks MipsRatio)"
            )
        t2, t05 = result.series["embar@x2.0"].get(top), result.series[
            "embar@x0.5"
        ].get(top)
        if t2 and t05:
            result.notes.append(
                f"embar time ratio x2.0 / x0.5 at P={top}: {t2 / t05:.2f} "
                "(< 4 as communication grows in relative weight)"
            )
    for name in ("cyclic", "sort", "mgrid"):
        if name in names:
            result.notes.append(
                f"{name} speedup spread across MipsRatio at P={top}: "
                f"{spread(name, top):.1%}"
            )
    return result
