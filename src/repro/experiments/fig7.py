"""Figure 7 — effect of MipsRatio and CommStartupTime on Mgrid.

Execution times for MipsRatio in {1.0, 0.25} x CommStartupTime in
{5, 100, 200} us.  The paper's observation: the processor count
delivering minimum execution time moves from 16 (MipsRatio 1.0) down to
4 (MipsRatio 0.25) — with faster processors, communication overhead
bites earlier.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.mgrid import make_program
from repro.experiments.base import ExperimentResult
from repro.experiments.paramsets import PROCESSOR_COUNTS, figure4_params, mgrid_config
from repro.metrics.scaling import run_scaling_study

MIPS_RATIOS = (1.0, 0.25)
STARTUPS = (5.0, 100.0, 200.0)


def run(
    *,
    quick: bool = True,
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
) -> ExperimentResult:
    """Regenerate Figure 7 (Mgrid execution times in us)."""
    cfg = mgrid_config(quick=quick)
    maker = make_program(cfg)
    base = figure4_params()
    result = ExperimentResult(
        name="fig7",
        title="Effect of MipsRatio and CommStartupTime on Mgrid",
        ylabel="execution time (us)",
    )
    best = {}
    for ratio in MIPS_RATIOS:
        for startup in STARTUPS:
            params = base.with_(
                processor={"mips_ratio": ratio},
                network={"comm_startup_time": startup},
            )
            study = run_scaling_study(
                maker, params, name="mgrid", processor_counts=processor_counts
            )
            key = f"mips={ratio} startup={startup:g}us"
            result.series[key] = study.times
            best[(ratio, startup)] = study.best_processor_count()

    for (ratio, startup), p in sorted(best.items()):
        result.notes.append(
            f"minimum execution time at MipsRatio={ratio}, "
            f"CommStartupTime={startup:g}us: P={p}"
        )
    slow = {s: best[(1.0, s)] for s in STARTUPS}
    fast = {s: best[(0.25, s)] for s in STARTUPS}
    result.notes.append(
        "expected: the faster processor (MipsRatio 0.25) reaches its "
        f"minimum at fewer processors — got {slow} vs {fast}"
    )
    return result
