"""Figure 8 — effects of the remote data request service policy.

Cyclic and Grid under four runtime-system policies, with
CommStartupTime = 100 us (as the paper notes for this experiment):

* **no-interrupt/poll** — requests serviced only while waiting (worst,
  "but only by a maximum of 10% ... in the case of Grid; in Cyclic the
  performance is significantly worse");
* **interrupt** — arrivals preempt computation (best for Grid);
* **poll @ 100 us** and **poll @ 1000 us** — chopped computation with
  periodic queue drains; for Cyclic "a polling policy wins out for
  larger numbers of processors ... larger polling times perform better".

All runs replay the same measured traces — only the processor model's
service policy changes.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.cyclic import make_program as make_cyclic
from repro.bench.grid import make_program as make_grid
from repro.core.pipeline import extrapolate, measure
from repro.experiments.base import ExperimentResult
from repro.experiments.paramsets import (
    PROCESSOR_COUNTS,
    cyclic_config,
    figure8_params,
    grid_config,
)

POLICIES = (
    ("no-interrupt", {"policy": "no_interrupt"}),
    ("interrupt", {"policy": "interrupt"}),
    ("poll@100us", {"policy": "poll", "poll_interval": 100.0}),
    ("poll@1000us", {"policy": "poll", "poll_interval": 1000.0}),
)


def run(
    *,
    quick: bool = True,
    processor_counts: Sequence[int] = PROCESSOR_COUNTS,
) -> ExperimentResult:
    """Regenerate Figure 8 (execution times in us, series bench/policy)."""
    base = figure8_params()
    result = ExperimentResult(
        name="fig8",
        title="Effects of Remote Data Request Service Policy (Cyclic, Grid)",
        ylabel="execution time (us)",
    )
    programs = {
        "cyclic": (make_cyclic(cyclic_config(quick=quick)), True),
        "grid": (make_grid(grid_config(quick=quick)), False),
    }
    for bench, (maker, pow2_only) in programs.items():
        counts = [
            p for p in processor_counts if not pow2_only or (p & (p - 1)) == 0
        ]
        # Grid uses actual transfer sizes here (the post-fix traces);
        # whole-element transfers would swamp the policy differences.
        mode = "actual" if bench == "grid" else "compiler"
        traces = {p: measure(maker(p), p, name=bench, size_mode=mode) for p in counts}
        for label, overrides in POLICIES:
            params = base.with_(processor=overrides)
            result.series[f"{bench}/{label}"] = {
                p: extrapolate(traces[p], params).predicted_time for p in counts
            }

    top = max(p for p in processor_counts)
    for bench in programs:
        series = {
            label: result.series[f"{bench}/{label}"]
            for label, _ in POLICIES
            if f"{bench}/{label}" in result.series
        }
        pts = {lab: s.get(max(s)) for lab, s in series.items() if s}
        if pts:
            best = min(pts, key=pts.get)
            worst = max(pts, key=pts.get)
            result.notes.append(
                f"{bench} at largest P: best policy {best} "
                f"({pts[best]:.0f} us), worst {worst} ({pts[worst]:.0f} us, "
                f"+{(pts[worst] / pts[best] - 1):.0%})"
            )
    return result
