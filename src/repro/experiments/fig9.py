"""Figure 9 / Table 3 — Matmul validation against the (simulated) CM-5.

Nine two-dimensional distribution combinations (Block/Cyclic/Whole per
dimension), processor scaling, two curves per combination:

* **predicted** — trace on the "Sun4" tracing runtime, extrapolated with
  the Table 3 CM-5 parameter set (MipsRatio 0.41, CommStartupTime 10 us,
  ByteTransferTime 0.118 us/B, BarrierModelTime 5 us);
* **measured** — the same program directly executed on the reference
  CM-5 machine simulator (message-level fat-tree network, hardware
  barriers).

The paper's validation criteria, which this harness checks and records:
the predicted curves match the general shape of the measured ones, the
relative ranking of distributions is reasonably preserved, and the
predicted best choice is the measured best (or within a few percent of
it) at every processor count.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bench.matmul import ALL_DISTRIBUTIONS, MatmulConfig, make_program
from repro.core import presets
from repro.core.pipeline import measure_and_extrapolate
from repro.experiments.base import ExperimentResult
from repro.machine import CM5_SPEC, run_on_machine

#: Figure 9 plots 4..32 processors (1-processor runs have no comm).
FIG9_COUNTS: Sequence[int] = (4, 8, 16, 32)


def ranking_agreement(
    predicted: Dict[str, float], measured: Dict[str, float]
) -> float:
    """Normalised rank agreement between two orderings (1.0 = identical).

    Uses Spearman's footrule distance, normalised by its maximum.
    """
    names = sorted(predicted)
    if sorted(measured) != names:
        raise ValueError("predicted and measured cover different configurations")
    n = len(names)
    if n < 2:
        return 1.0
    p_rank = {k: r for r, k in enumerate(sorted(names, key=predicted.get))}
    m_rank = {k: r for r, k in enumerate(sorted(names, key=measured.get))}
    footrule = sum(abs(p_rank[k] - m_rank[k]) for k in names)
    max_footrule = (n * n) // 2  # maximum possible footrule distance
    return 1.0 - footrule / max_footrule


def run(
    *,
    quick: bool = True,
    processor_counts: Sequence[int] = FIG9_COUNTS,
    distributions: Sequence[Tuple[str, str]] | None = None,
) -> ExperimentResult:
    """Regenerate Figure 9 (times in us; series '<dist> pred|meas')."""
    params = presets.cm5()
    dists = list(distributions) if distributions else list(ALL_DISTRIBUTIONS)
    size = 12 if quick else 16
    result = ExperimentResult(
        name="fig9",
        title="Results from Matmul program (predicted vs CM-5 reference)",
        ylabel="execution time (us)",
    )
    predicted: Dict[int, Dict[str, float]] = {p: {} for p in processor_counts}
    measured: Dict[int, Dict[str, float]] = {p: {} for p in processor_counts}
    for rd, cd in dists:
        cfg = MatmulConfig(size=size, row_dist=rd, col_dist=cd)
        maker = make_program(cfg)
        label = cfg.dist_label
        pred_series, meas_series = {}, {}
        for p in processor_counts:
            outcome = measure_and_extrapolate(maker(p), p, params, name="matmul")
            pred_series[p] = outcome.predicted_time
            mres = run_on_machine(maker(p), p, spec=CM5_SPEC, name="matmul")
            meas_series[p] = mres.execution_time
            predicted[p][label] = pred_series[p]
            measured[p][label] = meas_series[p]
        result.series[f"{label} pred"] = pred_series
        result.series[f"{label} meas"] = meas_series

    # Validation criteria.
    for p in processor_counts:
        agreement = ranking_agreement(predicted[p], measured[p])
        best_pred = min(predicted[p], key=predicted[p].get)
        best_meas = min(measured[p], key=measured[p].get)
        gap = (
            measured[p][best_pred] / measured[p][best_meas] - 1.0
            if measured[p][best_meas] > 0
            else 0.0
        )
        result.notes.append(
            f"P={p}: ranking agreement {agreement:.2f}; predicted best "
            f"{best_pred}, measured best {best_meas} "
            f"(predicted choice within {gap:.1%} of measured optimum)"
        )
    result.predicted = predicted  # type: ignore[attr-defined]
    result.measured = measured  # type: ignore[attr-defined]
    return result
