"""The §6 multithreading extension as an experiment.

Extrapolates one n-thread measurement onto every processor count
m <= n under both thread-assignment schemes, quantifying the locality
benefit of packing communicating threads together.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.grid import GridConfig, make_program
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.experiments.base import ExperimentResult
from repro.experiments.paramsets import figure4_params
from repro.sim.multithread import simulate_multithreaded


def run(
    *,
    quick: bool = True,
    n_threads: int = 16,
    processor_counts: Sequence[int] = (1, 2, 4, 8, 16),
) -> ExperimentResult:
    """Grid with ``n_threads`` threads on m multithreaded processors."""
    cfg = (
        GridConfig(patch_rows=4, patch_cols=4, m=8, iterations=4)
        if quick
        else GridConfig()
    )
    trace = measure(
        make_program(cfg)(n_threads), n_threads, name="grid", size_mode="actual"
    )
    tp = translate(trace)
    params = figure4_params()
    result = ExperimentResult(
        name="ablation-multithread",
        title=f"{n_threads}-thread Grid on m multithreaded processors",
        ylabel="execution time (us)",
    )
    locality = {}
    for scheme in ("block", "cyclic"):
        series = {}
        for m in processor_counts:
            if m > n_threads:
                continue
            res = simulate_multithreaded(tp, params, m, assignment_scheme=scheme)
            series[m] = res.execution_time
            if scheme == "block":
                locality[m] = sum(p.local_requests for p in res.processors)
        result.series[scheme] = series

    result.notes.append(
        f"block-assignment local (intra-processor) accesses by m: {locality}"
    )
    mid = [m for m in processor_counts if 1 < m < n_threads]
    if mid:
        m = mid[len(mid) // 2]
        blk, cyc = result.series["block"][m], result.series["cyclic"][m]
        result.notes.append(
            f"at m={m}: block {blk:.0f} us vs cyclic {cyc:.0f} us "
            f"({'block wins' if blk <= cyc else 'cyclic wins'} — packing "
            "neighbouring patches' threads localises their exchanges)"
        )
    return result
