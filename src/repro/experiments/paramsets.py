"""Benchmark configurations and parameter sets used by the experiments.

``quick`` configurations keep every experiment in the seconds range;
``paper`` configurations use paper-flavoured sizes (e.g. Grid with
~650 barriers and 231456-byte elements).
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.bench.cyclic import CyclicConfig
from repro.bench.embar import EmbarConfig
from repro.bench.grid import GridConfig, PAPER_ELEMENT_NBYTES
from repro.bench.matmul import MatmulConfig
from repro.bench.mgrid import MgridConfig
from repro.bench.poisson import PoissonConfig
from repro.bench.sort import SortConfig
from repro.bench.sparse import SparseConfig
from repro.core import presets
from repro.core.parameters import SimulationParameters

#: The processor counts of §4.1.
PROCESSOR_COUNTS: Sequence[int] = (1, 2, 4, 8, 16, 32)


def suite_configs(quick: bool = True) -> Dict[str, Any]:
    """One config per suite benchmark (Matmul is separate, §4.2)."""
    if quick:
        return {
            "embar": EmbarConfig(total_pairs=1 << 13, chunks=32),
            "cyclic": CyclicConfig(system_size=1 << 14),
            "sparse": SparseConfig(size=192, density=0.06, iterations=3),
            "grid": GridConfig(patch_rows=6, patch_cols=6, m=8, iterations=4),
            "mgrid": MgridConfig(patch_rows=6, patch_cols=6, m=16, cycles=1),
            "poisson": PoissonConfig(size=48),
            "sort": SortConfig(total_keys=1 << 12),
        }
    return {
        "embar": EmbarConfig(total_pairs=1 << 17, chunks=64),
        "cyclic": CyclicConfig(system_size=1 << 15),
        "sparse": SparseConfig(),
        "grid": GridConfig(),
        "mgrid": MgridConfig(),
        "poisson": PoissonConfig(),
        "sort": SortConfig(),
    }


def grid_config(quick: bool = True) -> GridConfig:
    """Grid instance for the Figure 5 / Figure 8 studies.

    Uses the paper's element abstraction (231456-byte compiler-reported
    elements, 2/128-byte actual transfers with 16-wide patches).
    """
    if quick:
        return GridConfig(
            patch_rows=6,
            patch_cols=6,
            m=16,
            iterations=4,
            element_nbytes=PAPER_ELEMENT_NBYTES,
        )
    return GridConfig.paper_like()


def mgrid_config(quick: bool = True) -> MgridConfig:
    if quick:
        return MgridConfig(patch_rows=6, patch_cols=6, m=16, cycles=1)
    return MgridConfig()


def cyclic_config(quick: bool = True) -> CyclicConfig:
    return CyclicConfig(system_size=1 << 14 if quick else 1 << 15)


def matmul_config(
    row_dist: str = "block", col_dist: str = "block", quick: bool = True
) -> MatmulConfig:
    return MatmulConfig(
        size=12 if quick else 16, row_dist=row_dist, col_dist=col_dist
    )


def figure4_params() -> SimulationParameters:
    """Figure 4's environment: distributed memory, 20 MB/s links,
    relatively high communication overheads and synchronisation costs."""
    return presets.distributed_memory()


def figure8_params() -> SimulationParameters:
    """Figure 8 keeps CommStartupTime = 100 us (stated in §4.1)."""
    return presets.distributed_memory().with_(
        network={"comm_startup_time": 100.0}
    )
