"""One-shot reproduction: run every experiment, write the artefacts.

``extrap reproduce --out results/`` regenerates the paper's evaluation
into files — one text report per experiment plus an index — so a review
of this reproduction can diff artefacts instead of reading terminals.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Sequence

from repro.experiments import tables
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.util.atomic import atomic_write_text
from repro.util.log import get_logger

log = get_logger("experiments.reproduce")


def reproduce(
    out_dir: str | Path,
    *,
    quick: bool = True,
    experiments: Sequence[str] | None = None,
) -> Path:
    """Run experiments and write one report file each plus an index.

    Returns the index file path.  Failures don't abort the batch; they
    are recorded in the index (a reproduction run should always produce
    a complete account).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    names = list(experiments) if experiments else sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}")

    # Static tables first.
    atomic_write_text(
        out / "tables.txt",
        "\n\n".join([tables.table1(), tables.table2(), tables.table3()]) + "\n",
    )

    index_rows: List[str] = [
        "# Reproduction run",
        "",
        f"mode: {'quick' if quick else 'paper-scale'}",
        "",
        "| experiment | status | seconds | report |",
        "|---|---|---|---|",
        "| tables 1-3 | ok | - | [tables.txt](tables.txt) |",
    ]
    for i, name in enumerate(names, 1):
        path = out / f"{name}.txt"
        log.info("[%d/%d] running %s", i, len(names), name)
        t0 = time.perf_counter()
        try:
            result = run_experiment(name, quick=quick)
            atomic_write_text(path, result.format() + "\n")
            atomic_write_text(out / f"{name}.csv", result.to_csv())
            status = "ok"
        except Exception as exc:  # record, keep going
            atomic_write_text(path, f"FAILED: {exc!r}\n")
            status = f"FAILED ({type(exc).__name__})"
            log.warning("%s failed: %r", name, exc)
        elapsed = time.perf_counter() - t0
        log.info("[%d/%d] %s: %s in %.1f s", i, len(names), name, status, elapsed)
        index_rows.append(
            f"| {name} | {status} | {elapsed:.1f} | [{path.name}]({path.name}) |"
        )

    index = out / "REPORT.md"
    atomic_write_text(index, "\n".join(index_rows) + "\n")
    return index
