"""One-shot reproduction: run every experiment, write the artefacts.

``extrap reproduce --out results/`` regenerates the paper's evaluation
into files — one text report per experiment plus an index — so a review
of this reproduction can diff artefacts instead of reading terminals.
``--jobs N`` fans independent experiments across worker processes
through the sweep executor (:mod:`repro.sweep.executor`); the reports
and the index row order are identical to a serial run, only the wall
time changes.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Sequence, Tuple

from repro.experiments import tables
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.sweep.executor import ParallelExecutor
from repro.util.atomic import atomic_write_text
from repro.util.log import get_logger

log = get_logger("experiments.reproduce")


def _experiment_task(task: Tuple[str, bool]) -> dict:
    """Worker: run one experiment and return its rendered artefacts.

    Top-level (hence picklable) and returning plain strings, so it runs
    identically in-process (``jobs=1``) and in a pool worker.
    """
    name, quick = task
    t0 = time.perf_counter()
    result = run_experiment(name, quick=quick)
    return {
        "text": result.format(),
        "csv": result.to_csv(),
        "seconds": time.perf_counter() - t0,
    }


def reproduce(
    out_dir: str | Path,
    *,
    quick: bool = True,
    experiments: Sequence[str] | None = None,
    jobs: int = 1,
) -> Path:
    """Run experiments and write one report file each plus an index.

    Returns the index file path.  Failures don't abort the batch; they
    are recorded in the index (a reproduction run should always produce
    a complete account).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    names = list(experiments) if experiments else sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}")

    # Static tables first.
    atomic_write_text(
        out / "tables.txt",
        "\n\n".join([tables.table1(), tables.table2(), tables.table3()]) + "\n",
    )

    log.info(
        "running %d experiments with %d job%s",
        len(names), jobs, "" if jobs == 1 else "s",
    )
    executor = ParallelExecutor(jobs, progress_label="experiment")
    outcomes = executor.map(
        _experiment_task, [(name, quick) for name in names]
    )

    index_rows: List[str] = [
        "# Reproduction run",
        "",
        f"mode: {'quick' if quick else 'paper-scale'}",
        "",
        "| experiment | status | seconds | report |",
        "|---|---|---|---|",
        "| tables 1-3 | ok | - | [tables.txt](tables.txt) |",
    ]
    for name, outcome in zip(names, outcomes):
        path = out / f"{name}.txt"
        if outcome.ok:
            atomic_write_text(path, outcome.value["text"] + "\n")
            atomic_write_text(out / f"{name}.csv", outcome.value["csv"])
            status = "ok"
            elapsed = outcome.value["seconds"]
        else:
            atomic_write_text(
                path, f"FAILED: {outcome.error_type}: {outcome.error}\n"
            )
            status = f"FAILED ({outcome.error_type})"
            elapsed = 0.0
            log.warning("%s failed: %s: %s", name, outcome.error_type, outcome.error)
        index_rows.append(
            f"| {name} | {status} | {elapsed:.1f} | [{path.name}]({path.name}) |"
        )

    index = out / "REPORT.md"
    atomic_write_text(index, "\n".join(index_rows) + "\n")
    return index
