"""Experiment registry and dispatch (used by the CLI and benches)."""

from __future__ import annotations

import difflib
import inspect
from typing import Callable, Dict

from repro.experiments import (
    ablations,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    multithread_study,
    validation,
)
from repro.experiments.base import ExperimentResult
from repro.util.log import get_logger

log = get_logger("experiments")

#: name -> callable(quick=...) returning an ExperimentResult
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "validation-suite": validation.run,
    "ablation-barrier": ablations.barrier_algorithms,
    "ablation-topology": ablations.topologies,
    "ablation-contention": ablations.contention,
    "ablation-poll": ablations.poll_interval,
    "ablation-placement": ablations.placement,
    "ablation-noise": ablations.noise_sensitivity,
    "ablation-overhead": ablations.overhead_compensation,
    "ablation-faults": ablations.fault_sweep,
    "ablation-multithread": multithread_study.run,
}


def run_experiment(
    name: str, *, quick: bool = True, jobs: int = 1, **kwargs
) -> ExperimentResult:
    """Run one experiment by registry name.

    ``jobs`` is forwarded to experiments whose run function accepts it
    (the ablation grids fan their extrapolations across processes via
    :func:`repro.sweep.executor.extrapolate_many`); experiments without
    internal parallelism simply run serially.
    """
    key = name.strip().lower()
    try:
        fn = EXPERIMENTS[key]
    except KeyError:
        close = difflib.get_close_matches(key, sorted(EXPERIMENTS), n=3)
        hint = (
            f"; did you mean {', '.join(repr(c) for c in close)}?" if close else ""
        )
        raise ValueError(
            f"unknown experiment {name!r}{hint}; available: {sorted(EXPERIMENTS)}"
        ) from None
    if jobs != 1 and "jobs" in inspect.signature(fn).parameters:
        kwargs["jobs"] = jobs
    log.debug("running experiment %s (quick=%s)", name, quick)
    return fn(quick=quick, **kwargs)
