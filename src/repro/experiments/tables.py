"""Tables 1–3: regenerated from the live parameter objects.

These are not measurements — they are the paper's parameter tables, and
this module renders them from the actual defaults in
:mod:`repro.core.parameters` and :mod:`repro.core.presets`, so any drift
between code and documentation shows up as a failing bench.
"""

from __future__ import annotations

from repro.bench.suite import BENCHMARKS
from repro.core import presets
from repro.core.parameters import BarrierParams
from repro.util.tables import format_table

#: Table 1's example column, keyed by our field names.
TABLE1_PAPER_EXAMPLES = {
    "entry_time": 5.0,
    "exit_time": 5.0,
    "check_time": 2.0,
    "exit_check_time": 2.0,
    "model_time": 10.0,
    "by_msgs": True,
    "msg_size": 128,
}

#: Table 3's values.
TABLE3_PAPER_VALUES = {
    "BarrierModelTime": 5.0,
    "CommStartupTime": 10.0,
    "ByteTransferTime": 0.118,
    "MipsRatio": 0.41,
}

_TABLE1_DESCRIPTIONS = {
    "entry_time": "Time for each thread to enter a barrier.",
    "exit_time": "Time for each thread to come out of the barrier after it has been lowered.",
    "check_time": "Delay incurred by the master thread every time it checks if all the threads have reached the barrier.",
    "exit_check_time": "Delay incurred by a slave thread every time it checks to see if the master has released the barrier.",
    "model_time": "Time taken by the master thread to start lowering the barrier after all the slaves have reached the barrier.",
    "by_msgs": "Use actual messages for barrier synchronisation (transfer time contributes to barrier time).",
    "msg_size": "Size of a message used for barrier synchronisation.",
}


def table1() -> str:
    """Table 1: parameters for the barrier model (live defaults)."""
    b = BarrierParams()
    rows = []
    for field_, paper in TABLE1_PAPER_EXAMPLES.items():
        ours = getattr(b, field_)
        rows.append([field_, _TABLE1_DESCRIPTIONS[field_], ours, paper])
    return format_table(
        ["parameter", "description", "default", "paper example"],
        rows,
        title="Table 1. Parameters for the Barrier Model",
    )


def table1_matches_paper() -> bool:
    """True when the live defaults equal the paper's example column."""
    b = BarrierParams()
    return all(
        getattr(b, f) == v for f, v in TABLE1_PAPER_EXAMPLES.items()
    )


def table2() -> str:
    """Table 2: the benchmark codes used for extrapolation studies."""
    rows = [
        [name, info.description]
        for name, info in BENCHMARKS.items()
        if name != "matmul"
    ]
    return format_table(
        ["Benchmark name", "Description"],
        rows,
        title="Table 2. pC++ Benchmark Codes used for Extrapolation Studies",
    )


def table3() -> str:
    """Table 3: parameters used for matching CM-5 characteristics."""
    p = presets.cm5()
    rows = [
        ["BarrierModelTime", p.barrier.model_time, TABLE3_PAPER_VALUES["BarrierModelTime"]],
        ["CommStartupTime", p.network.comm_startup_time, TABLE3_PAPER_VALUES["CommStartupTime"]],
        ["ByteTransferTime", p.network.byte_transfer_time, TABLE3_PAPER_VALUES["ByteTransferTime"]],
        ["MipsRatio", p.processor.mips_ratio, TABLE3_PAPER_VALUES["MipsRatio"]],
    ]
    return format_table(
        ["Parameter", "preset value", "paper value"],
        rows,
        title="Table 3. Parameters used for Matching CM-5 Characteristics",
    )


def table3_matches_paper() -> bool:
    """True when the CM-5 preset equals Table 3's values."""
    p = presets.cm5()
    return (
        p.barrier.model_time == TABLE3_PAPER_VALUES["BarrierModelTime"]
        and p.network.comm_startup_time == TABLE3_PAPER_VALUES["CommStartupTime"]
        and p.network.byte_transfer_time == TABLE3_PAPER_VALUES["ByteTransferTime"]
        and p.processor.mips_ratio == TABLE3_PAPER_VALUES["MipsRatio"]
    )
