"""Extended validation: predicted vs reference machine beyond Matmul.

The paper validates ExtraP on Matmul only (Figure 9); with the reference
machine in hand we can cheaply extend the same methodology to other
suite benchmarks — predicted CM-5 times from 1-processor traces vs the
direct message-level simulation, across processor counts.  The claim
under test is the paper's: shapes and relative orderings, not absolute
numbers.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.bench.cyclic import CyclicConfig
from repro.bench.cyclic import make_program as make_cyclic
from repro.bench.grid import GridConfig
from repro.bench.grid import make_program as make_grid
from repro.bench.sort import SortConfig
from repro.bench.sort import make_program as make_sort
from repro.core import presets
from repro.core.pipeline import extrapolate, measure
from repro.experiments.base import ExperimentResult
from repro.machine import CM5_SPEC, run_on_machine


def _programs(quick: bool) -> Dict[str, Tuple[Callable, str]]:
    """name -> (maker, size_mode) for the validation set."""
    return {
        "grid": (
            make_grid(
                GridConfig(patch_rows=4, patch_cols=4, m=8, iterations=3)
                if quick
                else GridConfig()
            ),
            "actual",
        ),
        "cyclic": (
            make_cyclic(CyclicConfig(system_size=1 << 12 if quick else 1 << 14)),
            "compiler",
        ),
        "sort": (
            make_sort(SortConfig(total_keys=1 << 10 if quick else 1 << 14)),
            "compiler",
        ),
    }


def run(
    *,
    quick: bool = True,
    processor_counts: Sequence[int] = (4, 8, 16),
    benchmarks: Sequence[str] | None = None,
) -> ExperimentResult:
    """Predicted vs reference-machine times for several benchmarks."""
    params = presets.cm5()
    progs = _programs(quick)
    names = list(benchmarks) if benchmarks else list(progs)
    result = ExperimentResult(
        name="validation-suite",
        title="Predicted vs reference-machine times (CM-5 parameters)",
        ylabel="execution time (us)",
    )
    for name in names:
        maker, mode = progs[name]
        counts = [
            p
            for p in processor_counts
            if name not in ("cyclic", "sort") or (p & (p - 1)) == 0
        ]
        pred, meas = {}, {}
        for p in counts:
            trace = measure(maker(p), p, name=name, size_mode=mode)
            pred[p] = extrapolate(trace, params).predicted_time
            meas[p] = run_on_machine(maker(p), p, spec=CM5_SPEC, name=name).execution_time
        result.series[f"{name} pred"] = pred
        result.series[f"{name} meas"] = meas
        ratios = [pred[p] / meas[p] for p in counts if meas[p] > 0]
        result.notes.append(
            f"{name}: predicted/measured ratio "
            f"{min(ratios):.2f}..{max(ratios):.2f} across P={list(counts)}"
        )
        # Shape agreement: do both sides order the processor counts the
        # same way (does adding processors help or hurt consistently)?
        pred_order = sorted(counts, key=pred.get)
        meas_order = sorted(counts, key=meas.get)
        result.notes.append(
            f"{name}: processor-count ordering "
            + ("agrees" if pred_order == meas_order else
               f"differs (pred {pred_order} vs meas {meas_order})")
        )
    return result
