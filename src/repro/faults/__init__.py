"""Fault injection and unreliable-machine modeling.

The extrapolation models of §3 assume an ideal target: every message is
delivered, every barrier completes, every run finishes.  This package
drops that assumption.  A :class:`~repro.faults.plan.FaultPlan` is a
deterministic, seed-driven description of how the target machine
misbehaves — message loss, duplication and latency jitter on the
interconnect, transient processor slowdowns ("stragglers"), and delayed
barrier arrivals — and a :class:`~repro.faults.injector.FaultInjector`
turns the plan into reproducible per-event decisions during simulation.

The protocol machinery to *survive* those faults (request timeout +
bounded retry with backoff) lives in :mod:`repro.sim.processor`; the
watchdog that turns a non-survivable plan into a diagnosable
:class:`~repro.des.engine.SimulationStalled` instead of a hang lives in
:mod:`repro.des.engine` / :mod:`repro.sim.simulator`.

A null plan (:meth:`FaultPlan.is_null`) is never attached to the
simulation at all, so the zero-fault configuration stays byte-identical
to a run without this subsystem.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import DATA_MSG_KINDS, FaultPlan, load_fault_plan

__all__ = [
    "DATA_MSG_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "load_fault_plan",
]
