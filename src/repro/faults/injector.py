"""The fault injector: turns a :class:`FaultPlan` into per-event decisions.

One injector is created per simulation (when the plan is non-null) and
attached to the engine's ``Environment.faults`` slot before the model
components are built — the same capture-at-construction pattern as the
observability slot, so custom network factories inherit fault injection
for free and the zero-fault path pays exactly one ``is None`` test per
hook site.

Each fault category draws from its own RNG stream derived from the plan
seed, so the loss schedule does not shift when, say, jitter is turned
on, and two runs of the same (trace, parameters, plan) triple are
event-for-event identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.faults.plan import FaultPlan
from repro.util.rng import spawn_rngs


@dataclass
class FaultStats:
    """Aggregate injected-fault counters for one simulation."""

    messages_dropped: int = 0
    messages_duplicated: int = 0
    jitter_messages: int = 0
    total_jitter: float = 0.0
    stragglers: int = 0
    straggler_extra_time: float = 0.0
    barrier_delays: int = 0
    barrier_delay_time: float = 0.0
    dropped_by_kind: Dict[str, int] = field(default_factory=dict)

    def any_injected(self) -> bool:
        return bool(
            self.messages_dropped
            or self.messages_duplicated
            or self.jitter_messages
            or self.stragglers
            or self.barrier_delays
        )


class FaultInjector:
    """Deterministic per-event fault decisions for one simulation run."""

    def __init__(self, plan: FaultPlan):
        if plan.is_null():
            raise ValueError(
                "refusing to build an injector for a null fault plan; "
                "attach nothing instead so results stay byte-identical"
            )
        self.plan = plan
        (
            self._loss_rng,
            self._dup_rng,
            self._jitter_rng,
            self._straggler_rng,
            self._barrier_rng,
        ) = spawn_rngs(plan.seed, 5)
        self._loss_kinds = frozenset(plan.loss_kinds)
        self.stats = FaultStats()

    # -- network hooks ------------------------------------------------------

    def message_fate(self, kind: str) -> Tuple[bool, bool, float]:
        """Decide ``(dropped, duplicated, extra_latency_us)`` for one send.

        Called once per :meth:`repro.sim.network.Network.send` in
        injection order; the decision order (loss, then duplication,
        then jitter) is fixed so schedules are stable.
        """
        p = self.plan
        stats = self.stats
        dropped = duplicated = False
        if kind in self._loss_kinds:
            if p.msg_loss_rate and self._loss_rng.random() < p.msg_loss_rate:
                dropped = True
                stats.messages_dropped += 1
                stats.dropped_by_kind[kind] = (
                    stats.dropped_by_kind.get(kind, 0) + 1
                )
            elif p.msg_dup_rate and self._dup_rng.random() < p.msg_dup_rate:
                duplicated = True
                stats.messages_duplicated += 1
        extra = 0.0
        if p.msg_jitter and not dropped:
            extra = float(self._jitter_rng.random()) * p.msg_jitter
            if extra > 0.0:
                stats.jitter_messages += 1
                stats.total_jitter += extra
        return dropped, duplicated, extra

    # -- processor hooks ------------------------------------------------------

    def straggle_factor(self) -> float:
        """Slowdown multiplier for one compute action (1.0 = healthy)."""
        p = self.plan
        if p.straggler_rate and self._straggler_rng.random() < p.straggler_rate:
            self.stats.stragglers += 1
            return p.straggler_factor
        return 1.0

    def note_straggler_time(self, extra_us: float) -> None:
        """Account the extra busy time a straggling action cost."""
        self.stats.straggler_extra_time += extra_us

    # -- barrier hooks ------------------------------------------------------

    def barrier_arrival_delay(self) -> float:
        """Extra delay before one processor enters one barrier episode."""
        p = self.plan
        if (
            p.barrier_delay_rate
            and p.barrier_delay > 0.0
            and self._barrier_rng.random() < p.barrier_delay_rate
        ):
            self.stats.barrier_delays += 1
            self.stats.barrier_delay_time += p.barrier_delay
            return p.barrier_delay
        return 0.0
