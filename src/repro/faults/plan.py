"""The fault plan: a declarative, seed-driven description of target
machine unreliability.

A :class:`FaultPlan` is pure configuration — no randomness lives here.
The :class:`~repro.faults.injector.FaultInjector` derives independent
RNG streams from ``seed`` (one per fault category, via
:func:`repro.util.rng.spawn_rngs`), so enabling one fault category never
perturbs the random decisions of another, and a fixed seed yields the
same fault schedule on every run.

Plans are JSON-serialisable (``extrap predict --faults plan.json``)::

    {
      "seed": 7,
      "msg_loss_rate": 0.05,
      "request_timeout": 5000.0,
      "max_retries": 5
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple

#: Data-plane message kinds (the remote-access protocol).  Loss and
#: duplication default to these: barrier synchronisation messages have
#: no retry protocol, so dropping them can only stall the simulation
#: (the watchdog will diagnose it, but it is rarely what a sweep wants).
#: Latency jitter applies to every kind regardless.
DATA_MSG_KINDS: Tuple[str, ...] = ("request", "reply", "write", "write_ack")

#: Every message kind a plan may name in ``loss_kinds``.
ALL_MSG_KINDS: Tuple[str, ...] = DATA_MSG_KINDS + (
    "barrier_arrive",
    "barrier_release",
)


def _require_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def _require_nonneg(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic description of how the target machine misbehaves.

    Attributes
    ----------
    seed:
        Root seed for every fault decision.  Two runs of the same plan
        on the same trace are identical; change the seed to sample a
        different fault schedule.
    msg_loss_rate:
        Probability that a message of a kind in ``loss_kinds`` is
        silently dropped in transit.
    msg_dup_rate:
        Probability that such a message is delivered twice (the second
        copy arrives after an independent transit time).
    msg_jitter:
        Maximum extra transit latency, in microseconds; each message
        (of any kind) gets a uniform draw from ``[0, msg_jitter]``.
    loss_kinds:
        Message kinds subject to loss/duplication.  Defaults to the
        data-plane kinds (:data:`DATA_MSG_KINDS`); may name barrier
        kinds explicitly to model a lossy control network.
    straggler_rate:
        Probability that one compute action runs slowed (a transient
        straggler interval: OS noise, thermal throttling, a co-tenant).
    straggler_factor:
        Slowdown multiplier for straggling compute actions (>= 1).
    barrier_delay_rate:
        Probability that a processor's arrival at a barrier episode is
        delayed.
    barrier_delay:
        The extra arrival delay, in microseconds.
    request_timeout:
        Remote-access reply timeout in microseconds; 0 disables the
        timeout/retry protocol (a lost request then blocks its issuer
        until the watchdog diagnoses the stall).
    max_retries:
        Bounded retransmission budget per remote access.  When
        exhausted the access is abandoned and the processor parks as
        *blocked* — visible in the watchdog's stall diagnosis.
    retry_backoff:
        Timeout multiplier applied after each retry (>= 1).
    """

    seed: int = 0
    msg_loss_rate: float = 0.0
    msg_dup_rate: float = 0.0
    msg_jitter: float = 0.0
    loss_kinds: Tuple[str, ...] = DATA_MSG_KINDS
    straggler_rate: float = 0.0
    straggler_factor: float = 4.0
    barrier_delay_rate: float = 0.0
    barrier_delay: float = 0.0
    request_timeout: float = 0.0
    max_retries: int = 3
    retry_backoff: float = 2.0

    def __post_init__(self):
        object.__setattr__(self, "loss_kinds", tuple(self.loss_kinds))
        _require_rate("msg_loss_rate", self.msg_loss_rate)
        _require_rate("msg_dup_rate", self.msg_dup_rate)
        _require_rate("straggler_rate", self.straggler_rate)
        _require_rate("barrier_delay_rate", self.barrier_delay_rate)
        _require_nonneg("msg_jitter", self.msg_jitter)
        _require_nonneg("barrier_delay", self.barrier_delay)
        _require_nonneg("request_timeout", self.request_timeout)
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        if self.retry_backoff < 1.0:
            raise ValueError(
                f"retry_backoff must be >= 1, got {self.retry_backoff}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        unknown = set(self.loss_kinds) - set(ALL_MSG_KINDS)
        if unknown:
            raise ValueError(
                f"unknown message kinds in loss_kinds: {sorted(unknown)}; "
                f"expected a subset of {list(ALL_MSG_KINDS)}"
            )

    # -- classification ------------------------------------------------------

    def is_null(self) -> bool:
        """True when the plan injects nothing and runs no protocol.

        A null plan is never attached to the simulation, so results stay
        byte-identical to a run without any plan at all.  Note that
        ``request_timeout > 0`` alone makes a plan non-null: the
        timeout/retry machinery can retransmit on congestion-delayed
        replies even when nothing is ever dropped.
        """
        return (
            self.msg_loss_rate == 0.0
            and self.msg_dup_rate == 0.0
            and self.msg_jitter == 0.0
            and self.straggler_rate == 0.0
            and self.barrier_delay_rate == 0.0
            and self.request_timeout == 0.0
        )

    # -- (de)serialisation ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "msg_loss_rate": self.msg_loss_rate,
            "msg_dup_rate": self.msg_dup_rate,
            "msg_jitter": self.msg_jitter,
            "loss_kinds": list(self.loss_kinds),
            "straggler_rate": self.straggler_rate,
            "straggler_factor": self.straggler_factor,
            "barrier_delay_rate": self.barrier_delay_rate,
            "barrier_delay": self.barrier_delay,
            "request_timeout": self.request_timeout,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault plan fields: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)

    def describe(self) -> str:
        """One-line human-readable summary of the active faults."""
        parts = []
        if self.msg_loss_rate:
            parts.append(f"loss={self.msg_loss_rate:g}")
        if self.msg_dup_rate:
            parts.append(f"dup={self.msg_dup_rate:g}")
        if self.msg_jitter:
            parts.append(f"jitter<={self.msg_jitter:g}us")
        if self.straggler_rate:
            parts.append(
                f"stragglers={self.straggler_rate:g}x{self.straggler_factor:g}"
            )
        if self.barrier_delay_rate:
            parts.append(
                f"barrier_delay={self.barrier_delay_rate:g}x{self.barrier_delay:g}us"
            )
        if self.request_timeout:
            parts.append(
                f"timeout={self.request_timeout:g}us "
                f"retries={self.max_retries} backoff={self.retry_backoff:g}"
            )
        if not parts:
            return "faults: none"
        return f"faults (seed={self.seed}): " + " ".join(parts)


def load_fault_plan(path: "str | Path") -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file.

    Raises :class:`ValueError` with the file name on malformed JSON or
    unknown/invalid fields.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(data, dict):
        raise ValueError(
            f"{path}: fault plan must be a JSON object, got {type(data).__name__}"
        )
    try:
        return FaultPlan.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{path}: bad fault plan: {exc}") from None
