"""Reference target-machine simulator (the "actual CM-5" stand-in).

The paper validates ExtraP by running Matmul on a real CM-5 (§4.2,
Figure 9).  Without 1990s hardware, this package provides the measured
side of that comparison: a *direct simulation* that runs the same
benchmark programs on n simulated processors with a message-level
network model — strictly more detailed than the extrapolation models:

* every message individually occupies its source and destination network
  ports (endpoint contention is simulated, not analytical);
* remote requests are serviced by a per-node active-message handler
  (CM-5 style), concurrent with computation;
* barriers use a dedicated control-network model (the CM-5's hardware
  barrier), with per-node entry/exit costs and a tree-latency release.

Because it executes the real program (not a trace), it produces a
measured trace and execution time to validate extrapolated predictions
against — "the key is to capture as best as possible the
characteristics of the execution environment".
"""

from repro.machine.spec import CM5_SPEC, PARAGON_SPEC, MachineSpec
from repro.machine.machine import Machine, MachineResult, run_on_machine

__all__ = [
    "CM5_SPEC",
    "Machine",
    "MachineResult",
    "MachineSpec",
    "PARAGON_SPEC",
    "run_on_machine",
]
