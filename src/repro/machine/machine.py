"""Direct simulation of benchmark programs on a target machine.

Runs the *same* program factories the tracing runtime accepts (they only
use ``rt.n_threads`` and the ThreadCtx generator API), but every
operation takes simulated time on a message-level machine model:

* ``compute(flops)`` — busy for ``flops / node_mflops``;
* ``get``/``put`` of a remote element — request/reply (or write/ack)
  messages through the port-based fat-tree network
  (:mod:`repro.machine.network`), serviced by the owner's
  active-message handler process;
* ``barrier()`` — the control-network hardware barrier.

The result carries the measured execution time and a measured trace
(barrier/remote events with machine timestamps) so the validation
experiment can compare predicted against "measured" performance
information, exactly as Figure 9 does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.des import Environment, Event, Store
from repro.machine.network import PortNetwork, WireMessage
from repro.machine.spec import CM5_SPEC, MachineSpec
from repro.pcxx.collection import Collection, Index
from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import ThreadTrace, TraceMeta


@dataclass
class NodeStats:
    """Per-node accounting for the reference machine."""

    pid: int = 0
    compute_time: float = 0.0
    local_accesses: int = 0
    remote_accesses: int = 0
    requests_served: int = 0
    barrier_time: float = 0.0
    comm_wait: float = 0.0
    end_time: float = 0.0


@dataclass
class MachineResult:
    """Measured performance information from one direct-simulated run."""

    meta: TraceMeta
    spec: MachineSpec
    execution_time: float
    nodes: List[NodeStats]
    threads: List[ThreadTrace]
    messages: int = 0
    message_bytes: int = 0

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def summary(self) -> str:
        return (
            f"{self.meta.program or 'program'} on {self.n_nodes}-node "
            f"{self.spec.name}: measured time {self.execution_time:.1f} us, "
            f"{self.messages} messages"
        )


class _HwBarrier:
    """The control-network barrier: release fires ``latency`` after the
    last arrival of each episode."""

    def __init__(self, env: Environment, n: int, latency: float):
        self.env = env
        self.n = n
        self.latency = latency
        self._arrived: Dict[int, int] = {}
        self._released: Dict[int, Event] = {}

    def release_event(self, bid: int) -> Event:
        if bid not in self._released:
            self._released[bid] = Event(self.env)
        return self._released[bid]

    def arrive(self, bid: int) -> Event:
        self._arrived[bid] = self._arrived.get(bid, 0) + 1
        release = self.release_event(bid)
        if self._arrived[bid] >= self.n and not release.triggered:
            release.succeed(delay=self.latency)
        return release


class Machine:
    """An n-node direct-simulated target machine."""

    def __init__(self, n: int, spec: MachineSpec = CM5_SPEC):
        if n < 1:
            raise ValueError(f"need at least 1 node, got {n}")
        self.n = n
        self.spec = spec
        self.env = Environment()
        self.network = PortNetwork(self.env, n, spec)
        self.barrier = _HwBarrier(self.env, n, spec.barrier_latency)
        self.nodes: List[MachineNode] = [
            MachineNode(self, pid) for pid in range(n)
        ]
        self.network.attach([node.deliver for node in self.nodes])
        self._msg_ids = itertools.count()
        self._ran = False

    @property
    def n_threads(self) -> int:
        """Program factories address the machine like a tracing runtime."""
        return self.n

    def run(self, program_factory: Callable, *, name: str = "") -> MachineResult:
        """Execute a program factory to completion on the machine."""
        if self._ran:
            raise RuntimeError("machine already ran a program; create a new one")
        self._ran = True
        bodies = program_factory(self)
        if callable(bodies):
            bodies = [bodies] * self.n
        if len(bodies) != self.n:
            raise ValueError(f"{len(bodies)} bodies for {self.n} nodes")
        for node, body in zip(self.nodes, bodies):
            self.env.process(node.main(body), name=f"node{node.pid}")
            self.env.process(node.handler(), name=f"handler{node.pid}")
        done = self.env.all_of([node.done for node in self.nodes])
        while not done.triggered:
            if self.env.peek() == float("inf"):
                stuck = [nd.pid for nd in self.nodes if not nd.done.triggered]
                raise RuntimeError(f"machine deadlocked; nodes {stuck} never finished")
            self.env.step()
        self.env.run(None)
        return MachineResult(
            meta=TraceMeta(program=name, n_threads=self.n, size_mode="actual"),
            spec=self.spec,
            execution_time=max(nd.stats.end_time for nd in self.nodes),
            nodes=[nd.stats for nd in self.nodes],
            threads=[ThreadTrace(nd.pid, nd.out_events) for nd in self.nodes],
            messages=self.network.stats.messages,
            message_bytes=self.network.stats.bytes,
        )


class MachineNode:
    """One node: the program thread plus its active-message handler.

    Presents the same generator API as
    :class:`repro.pcxx.runtime.ThreadCtx`, so benchmark bodies run
    unmodified.
    """

    def __init__(self, machine: Machine, pid: int):
        self.machine = machine
        self.env = machine.env
        self.spec = machine.spec
        self.pid = pid
        self.tid = pid  # ThreadCtx-compatible alias
        self.inbox: Store = Store(self.env)
        self.pending: Dict[int, Event] = {}
        self.stats = NodeStats(pid=pid)
        self.out_events: List[TraceEvent] = []
        self.done = Event(self.env)
        self._barrier_seq = 0

    # -- ThreadCtx-compatible introspection ---------------------------------

    @property
    def n_threads(self) -> int:
        return self.machine.n

    @property
    def now(self) -> float:
        return self.env.now

    def local_indices(self, coll: Collection) -> List[Index]:
        return coll.local_indices(self.pid)

    def _record(self, kind: EventKind, **kw) -> None:
        self.out_events.append(TraceEvent(self.env.now, self.pid, kind, **kw))

    # -- processes ------------------------------------------------------------

    def main(self, body: Callable) -> Generator:
        """The program thread."""
        self._record(EventKind.THREAD_BEGIN)
        yield from body(self)
        self._record(EventKind.THREAD_END)
        self.stats.end_time = self.env.now
        self.done.succeed()

    def handler(self) -> Generator:
        """Active-message handler: services remote requests concurrently
        with computation (network-interface work, not node CPU)."""
        while True:
            msg: WireMessage = yield self.inbox.get()
            if msg.kind in ("reply", "write_ack"):
                ev = self.pending.pop(msg.msg_id, None)
                if ev is None:
                    raise RuntimeError(
                        f"node {self.pid}: unexpected {msg.kind} id={msg.msg_id}"
                    )
                ev.succeed(msg)
                continue
            yield self.env.timeout(self.spec.service_time)
            self.stats.requests_served += 1
            if msg.kind == "request":
                # Read the element *now* (the program's barrier discipline
                # guarantees read/write phases do not overlap).
                value = msg.coll._load(msg.index)
                yield from self.machine.network.send(
                    WireMessage(
                        "reply",
                        src=self.pid,
                        dst=msg.src,
                        nbytes=msg.reply_nbytes,
                        msg_id=msg.msg_id,
                        payload=value,
                    )
                )
            elif msg.kind == "write":
                msg.coll._store(msg.index, msg.payload)
                yield from self.machine.network.send(
                    WireMessage(
                        "write_ack",
                        src=self.pid,
                        dst=msg.src,
                        nbytes=0,
                        msg_id=msg.msg_id,
                    )
                )
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unhandled message kind {msg.kind}")

    def deliver(self, msg: WireMessage) -> None:
        self.inbox.put(msg)

    # -- ThreadCtx-compatible operations ----------------------------------------

    def compute(self, flops: float) -> Generator:
        if flops < 0:
            raise ValueError(f"negative flop count {flops}")
        dt = flops / self.spec.node_mflops
        yield self.env.timeout(dt)
        self.stats.compute_time += dt

    def compute_us(self, us: float) -> Generator:
        if us < 0:
            raise ValueError(f"negative compute time {us}")
        yield self.env.timeout(us)
        self.stats.compute_time += us

    def get(self, coll: Collection, index: Index, nbytes: int | None = None) -> Generator:
        owner = coll.owner(index)
        if owner == self.pid:
            self.stats.local_accesses += 1
            if self.spec.local_access_time:
                yield self.env.timeout(self.spec.local_access_time)
            return coll._load(index)
        reply_nbytes = nbytes if nbytes is not None else coll.element_nbytes
        self._record(
            EventKind.REMOTE_READ,
            owner=owner,
            nbytes=int(reply_nbytes),
            collection=coll.name,
        )
        mid = next(self.machine._msg_ids)
        ev = Event(self.env)
        self.pending[mid] = ev
        t0 = self.env.now
        yield from self.machine.network.send(
            WireMessage(
                "request",
                src=self.pid,
                dst=owner,
                nbytes=self.spec.request_nbytes,
                msg_id=mid,
                coll=coll,
                index=index,
                reply_nbytes=int(reply_nbytes),
            )
        )
        reply = yield ev
        self.stats.remote_accesses += 1
        self.stats.comm_wait += self.env.now - t0
        return reply.payload

    def put(
        self, coll: Collection, index: Index, value: Any, nbytes: int | None = None
    ) -> Generator:
        owner = coll.owner(index)
        if owner == self.pid:
            self.stats.local_accesses += 1
            coll._store(index, value)
            if self.spec.local_access_time:
                yield self.env.timeout(self.spec.local_access_time)
            return
        wire_nbytes = nbytes if nbytes is not None else coll.element_nbytes
        self._record(
            EventKind.REMOTE_WRITE,
            owner=owner,
            nbytes=int(wire_nbytes),
            collection=coll.name,
        )
        mid = next(self.machine._msg_ids)
        ev = Event(self.env)
        self.pending[mid] = ev
        t0 = self.env.now
        yield from self.machine.network.send(
            WireMessage(
                "write",
                src=self.pid,
                dst=owner,
                nbytes=int(wire_nbytes),
                msg_id=mid,
                coll=coll,
                index=index,
                payload=value,
            )
        )
        yield ev
        self.stats.remote_accesses += 1
        self.stats.comm_wait += self.env.now - t0

    def barrier(self) -> Generator:
        bid = self._barrier_seq
        self._barrier_seq += 1
        t0 = self.env.now
        self._record(EventKind.BARRIER_ENTER, barrier_id=bid)
        if self.spec.barrier_entry_time:
            yield self.env.timeout(self.spec.barrier_entry_time)
        release = self.machine.barrier.arrive(bid)
        yield release
        if self.spec.barrier_exit_time:
            yield self.env.timeout(self.spec.barrier_exit_time)
        self._record(EventKind.BARRIER_EXIT, barrier_id=bid)
        self.stats.barrier_time += self.env.now - t0

    def mark(self, tag: str) -> Generator:
        self._record(EventKind.MARK, tag=tag)
        return
        yield  # pragma: no cover


def run_on_machine(
    program_factory: Callable,
    n: int,
    *,
    spec: MachineSpec = CM5_SPEC,
    name: str = "",
) -> MachineResult:
    """Convenience: build a machine, run the program, return the result."""
    return Machine(n, spec).run(program_factory, name=name)
