"""Port-based fat-tree network for the reference machine.

More detailed than the extrapolation simulator's analytical contention:
every message individually occupies its source node's injection port and
its destination node's ejection port for ``bytes * byte_time`` each, so
endpoint contention (the dominant effect on a CM-5-class fat tree, which
preserves bisection bandwidth) is *simulated*, message by message, with
FIFO queueing on the :class:`~repro.des.resources.Resource` ports.

``send`` is a generator: the caller is busy for the software start-up
and until its injection port accepts the message; the rest of the
transfer (switch hops, ejection, delivery) proceeds asynchronously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional

from repro.des import Environment, Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.spec import MachineSpec
    from repro.pcxx.collection import Collection, Index


@dataclass
class WireMessage:
    """A message on the reference machine's data network."""

    kind: str  # request | reply | write | write_ack
    src: int
    dst: int
    nbytes: int
    msg_id: int
    coll: Optional["Collection"] = None
    index: Optional["Index"] = None
    payload: Any = None
    reply_nbytes: int = 0


@dataclass
class PortNetworkStats:
    messages: int = 0
    bytes: int = 0
    max_inject_queue: int = 0
    max_eject_queue: int = 0


class PortNetwork:
    """Fat-tree data network with per-node injection/ejection ports."""

    def __init__(self, env: Environment, n: int, spec: "MachineSpec"):
        from repro.sim.topology import make_topology

        self.env = env
        self.n = n
        self.spec = spec
        self.inject = [Resource(env, 1) for _ in range(n)]
        self.eject = [Resource(env, 1) for _ in range(n)]
        self.stats = PortNetworkStats()
        self._topology = make_topology(spec.topology, n)
        self._inboxes: List[Callable[[WireMessage], None]] = []

    def attach(self, inboxes: List[Callable[[WireMessage], None]]) -> None:
        if len(inboxes) != self.n:
            raise ValueError(f"{len(inboxes)} inboxes for {self.n} nodes")
        self._inboxes = inboxes

    def hops(self, src: int, dst: int) -> int:
        """Path length through the configured data-network topology.

        (For the CM-5's 4-ary fat tree this is twice the height of the
        lowest common ancestor; other topologies come from
        :mod:`repro.sim.topology`.)
        """
        return self._topology.hops(src, dst)

    def send(self, msg: WireMessage) -> Generator:
        """Inject ``msg``; the generator returns once injection finishes.

        The caller is busy for ``msg_startup`` plus any wait for its
        injection port plus the injection occupancy itself; the switch
        traversal and ejection happen in a detached delivery process.
        """
        if not self._inboxes:
            raise RuntimeError("network not attached to nodes")
        if msg.src == msg.dst:
            raise ValueError(f"message to self: {msg.kind} at node {msg.src}")
        spec = self.spec
        wire_bytes = msg.nbytes + spec.header_nbytes
        occupancy = wire_bytes * spec.byte_time

        self.stats.messages += 1
        self.stats.bytes += msg.nbytes

        if spec.msg_startup:
            yield self.env.timeout(spec.msg_startup)
        req = self.inject[msg.src].request()
        self.stats.max_inject_queue = max(
            self.stats.max_inject_queue, self.inject[msg.src].queue_length
        )
        yield req
        if occupancy:
            yield self.env.timeout(occupancy)
        self.inject[msg.src].release(req)
        self.env.process(self._deliver(msg, occupancy), name=f"wire{msg.msg_id}")

    def _deliver(self, msg: WireMessage, occupancy: float) -> Generator:
        """Switch traversal + ejection-port occupancy + delivery."""
        lat = self.hops(msg.src, msg.dst) * self.spec.hop_time
        if lat:
            yield self.env.timeout(lat)
        req = self.eject[msg.dst].request()
        self.stats.max_eject_queue = max(
            self.stats.max_eject_queue, self.eject[msg.dst].queue_length
        )
        yield req
        if occupancy:
            yield self.env.timeout(occupancy)
        self.eject[msg.dst].release(req)
        self._inboxes[msg.dst](msg)
