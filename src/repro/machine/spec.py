"""Machine specifications for the reference simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.pcxx.runtime import CM5_MFLOPS


@dataclass(frozen=True)
class MachineSpec:
    """Hardware description of a direct-simulated target machine.

    All times in microseconds.

    Attributes
    ----------
    name:
        Label for reports.
    node_mflops:
        Scalar floating-point rate of one node; ``compute(flops)`` takes
        ``flops / node_mflops``.
    local_access_time:
        Cost of a local collection-element access.
    msg_startup:
        Sender software overhead per message (CMAML-style send).
    byte_time:
        Per-byte port occupancy (both injection and ejection).
    hop_time:
        Per-hop switch latency on the data network.
    topology:
        Data-network topology name (any of
        :func:`repro.sim.topology.available_topologies`); the CM-5 uses
        ``"fattree"``.
    fat_tree_arity:
        Arity when the topology is a fat tree (CM-5: 4).
    service_time:
        Active-message handler time per serviced request.
    header_nbytes:
        Wire header per message.
    request_nbytes:
        Size of a remote-read request message.
    barrier_entry_time / barrier_exit_time:
        Per-node cost entering/leaving the control-network barrier.
    barrier_latency:
        Control-network combine+broadcast latency after the last arrival.
    """

    name: str = "cm5"
    node_mflops: float = CM5_MFLOPS
    local_access_time: float = 0.5
    msg_startup: float = 10.0
    byte_time: float = 0.118
    hop_time: float = 0.2
    topology: str = "fattree"
    fat_tree_arity: int = 4
    service_time: float = 2.0
    header_nbytes: int = 8
    request_nbytes: int = 16
    barrier_entry_time: float = 2.0
    barrier_exit_time: float = 2.0
    barrier_latency: float = 5.0

    def __post_init__(self):
        if self.node_mflops <= 0:
            raise ValueError(f"node_mflops must be positive, got {self.node_mflops}")
        if self.fat_tree_arity < 2:
            raise ValueError("fat tree arity must be >= 2")
        for field_ in (
            "local_access_time",
            "msg_startup",
            "byte_time",
            "hop_time",
            "service_time",
            "barrier_entry_time",
            "barrier_exit_time",
            "barrier_latency",
        ):
            if getattr(self, field_) < 0:
                raise ValueError(f"{field_} must be >= 0")


#: The Thinking Machines CM-5 per Table 3 / Kwan, Totty & Reed: 2.7645
#: scalar MFLOPS nodes, ~10 us message start-up, 8.5 MB/s realised
#: point-to-point bandwidth (0.118 us/byte), 4-ary fat-tree data network,
#: fast hardware barriers on the control network.
CM5_SPEC = MachineSpec()

#: A Paragon-flavoured contrast machine: faster links but a 2-D mesh
#: with per-hop latency, costlier message start-up, and slower software
#: barriers.  Used to show validation against more than one target.
PARAGON_SPEC = MachineSpec(
    name="paragon",
    node_mflops=10.0,
    msg_startup=30.0,
    byte_time=0.02,  # ~50 MB/s endpoint rate
    hop_time=0.4,
    topology="mesh2d",
    service_time=4.0,
    barrier_entry_time=5.0,
    barrier_exit_time=5.0,
    barrier_latency=40.0,  # software combining, no control network
)
