"""Performance metrics (PM): quantities derived from performance information.

The paper defines a performance metric as "a measure of the quality of a
parallel program", always relative to an execution environment.  This
package derives the metrics the evaluation uses — execution time,
speedup, efficiency, computation/communication ratio, utilisation,
barrier statistics — from :class:`~repro.sim.result.SimulationResult`
objects, and provides the processor-scaling machinery
(:class:`~repro.metrics.scaling.ScalingStudy`) that the per-figure
experiments build on.
"""

from repro.metrics.metrics import (
    PerformanceMetrics,
    derive_metrics,
    metrics_from_result,
    speedups,
)
from repro.metrics.phases import PhaseStats, phase_stats, phase_table
from repro.metrics.report import full_report, profile_section
from repro.metrics.scaling import ScalingPoint, ScalingStudy

__all__ = [
    "PerformanceMetrics",
    "PhaseStats",
    "ScalingPoint",
    "ScalingStudy",
    "derive_metrics",
    "full_report",
    "metrics_from_result",
    "phase_stats",
    "phase_table",
    "profile_section",
    "speedups",
]
