"""Scalar performance metrics derived from simulation results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.sim.result import SimulationResult


@dataclass(frozen=True)
class PerformanceMetrics:
    """Predicted performance metrics for one (program, environment) pair.

    All times in microseconds.
    """

    execution_time: float
    n_processors: int
    speedup: Optional[float]
    efficiency: Optional[float]
    comp_comm_ratio: float
    utilization: float
    compute_time_total: float
    comm_time_total: float
    barrier_time_total: float
    barrier_count: int
    messages: int
    message_bytes: int

    def as_row(self) -> list:
        """Row for tabular reports."""
        return [
            self.n_processors,
            self.execution_time,
            self.speedup if self.speedup is not None else float("nan"),
            self.efficiency if self.efficiency is not None else float("nan"),
            self.utilization,
            self.comp_comm_ratio,
            self.messages,
        ]

    ROW_HEADERS = ["P", "time_us", "speedup", "efficiency", "util", "comp/comm", "msgs"]


def derive_metrics(
    result: SimulationResult, baseline_time: float | None = None
) -> PerformanceMetrics:
    """Derive metrics from one simulation result.

    ``baseline_time`` is the 1-processor execution time in the *same*
    target environment; speedup/efficiency are None without it.  A
    degenerate result (zero/negative ``execution_time``, or no
    processors) also yields ``None`` for both rather than raising.
    """
    n = result.n_processors
    speedup = efficiency = None
    if baseline_time is not None:
        if baseline_time <= 0:
            raise ValueError(f"baseline time must be positive, got {baseline_time}")
        if result.execution_time > 0 and n > 0:
            speedup = baseline_time / result.execution_time
            efficiency = speedup / n
    return PerformanceMetrics(
        execution_time=result.execution_time,
        n_processors=n,
        speedup=speedup,
        efficiency=efficiency,
        comp_comm_ratio=result.comp_comm_ratio(),
        utilization=result.utilization(),
        compute_time_total=result.total_compute_time(),
        comm_time_total=result.total_comm_time(),
        barrier_time_total=result.total_barrier_time(),
        barrier_count=result.barrier_count,
        messages=result.network.messages,
        message_bytes=result.network.bytes,
    )


#: Alias matching the "metrics from a result" naming used elsewhere in
#: the docs; same callable as :func:`derive_metrics`.
metrics_from_result = derive_metrics


def speedups(times: Mapping[int, float]) -> Dict[int, float]:
    """Speedup curve from a {processors: time} mapping.

    The baseline is the smallest processor count present (normally 1).

    >>> speedups({1: 100.0, 2: 50.0, 4: 30.0})
    {1: 1.0, 2: 2.0, 4: 3.3333333333333335}
    """
    if not times:
        return {}
    base_p = min(times)
    base = times[base_p]
    if base <= 0:
        raise ValueError(f"non-positive baseline time {base} at P={base_p}")
    out: Dict[int, float] = {}
    for p in sorted(times):
        t = times[p]
        if t <= 0:
            raise ValueError(f"non-positive time {t} at P={p}")
        out[p] = base / t
    return out
