"""Per-phase metrics from MARK events.

Programs annotate algorithm phases with paired marks::

    yield from ctx.mark("begin:transpose")
    ...
    yield from ctx.mark("end:transpose")

Marks survive measurement, translation, and simulation (they ride along
with zero timing-model cost), so the *extrapolated* traces carry
predicted per-phase timings — the difference between "the program is
slow" and "the transposes are slow on this machine", which is the
diagnosis granularity performance debugging needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.trace.events import EventKind
from repro.trace.trace import ThreadTrace
from repro.util.tables import format_table

BEGIN_PREFIX = "begin:"
END_PREFIX = "end:"


@dataclass
class PhaseStats:
    """Aggregate timings of one named phase across threads."""

    name: str
    #: per-thread total time spent inside the phase
    per_thread: Dict[int, float] = field(default_factory=dict)
    #: number of (begin, end) episodes observed
    episodes: int = 0

    @property
    def total(self) -> float:
        return sum(self.per_thread.values())

    @property
    def max_thread(self) -> float:
        return max(self.per_thread.values(), default=0.0)

    @property
    def min_thread(self) -> float:
        return min(self.per_thread.values(), default=0.0)

    @property
    def imbalance(self) -> float:
        """max/mean per-thread time (1.0 = perfectly balanced)."""
        if not self.per_thread:
            return 0.0
        mean = self.total / len(self.per_thread)
        return self.max_thread / mean if mean > 0 else 0.0


class PhaseError(ValueError):
    """Malformed phase markers (unmatched or interleaved begin/end)."""


def phase_stats(threads: Sequence[ThreadTrace]) -> Dict[str, PhaseStats]:
    """Extract per-phase timings from (measured or extrapolated) traces.

    Phases may repeat (each begin/end pair adds an episode) and may nest
    *different* names; re-entering a phase already open on the same
    thread is an error.
    """
    out: Dict[str, PhaseStats] = {}
    for tt in threads:
        open_at: Dict[str, float] = {}
        for ev in tt.events:
            if ev.kind != EventKind.MARK:
                continue
            if ev.tag.startswith(BEGIN_PREFIX):
                name = ev.tag[len(BEGIN_PREFIX):]
                if name in open_at:
                    raise PhaseError(
                        f"thread {tt.thread}: phase {name!r} begun twice"
                    )
                open_at[name] = ev.time
            elif ev.tag.startswith(END_PREFIX):
                name = ev.tag[len(END_PREFIX):]
                if name not in open_at:
                    raise PhaseError(
                        f"thread {tt.thread}: phase {name!r} ended "
                        "without a begin"
                    )
                start = open_at.pop(name)
                st = out.setdefault(name, PhaseStats(name))
                st.per_thread[tt.thread] = (
                    st.per_thread.get(tt.thread, 0.0) + ev.time - start
                )
                st.episodes += 1
        if open_at:
            raise PhaseError(
                f"thread {tt.thread}: phases never ended: {sorted(open_at)}"
            )
    return out


def phase_table(threads: Sequence[ThreadTrace], *, float_fmt: str = ".1f") -> str:
    """Formatted per-phase report, sorted by total time descending."""
    stats = phase_stats(threads)
    if not stats:
        return "(no phase markers in the trace)"
    rows: List[List] = []
    for st in sorted(stats.values(), key=lambda s: s.total, reverse=True):
        rows.append(
            [
                st.name,
                st.episodes,
                st.total,
                st.max_thread,
                st.imbalance,
            ]
        )
    return format_table(
        ["phase", "episodes", "total us", "max thread us", "imbalance"],
        rows,
        float_fmt=float_fmt,
        title="per-phase breakdown",
    )
