"""Performance-debugging reports.

The paper positions extrapolation inside a *performance debugging*
system: predicted performance information must support diagnosis, not
just a headline number.  This module renders an
:class:`~repro.core.pipeline.ExtrapolationOutcome` into the artefacts a
debugging session needs:

* a per-processor **breakdown table** (compute / overheads / waits);
* an ASCII **timeline** (Gantt-style) of the extrapolated execution,
  showing barrier episodes and remote-access positions per thread;
* a **bottleneck summary** naming the dominant cost and the processors
  most idle.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.pipeline import ExtrapolationOutcome
from repro.sim.result import SimulationResult
from repro.trace.events import EventKind
from repro.trace.trace import ThreadTrace
from repro.util.tables import format_table


def breakdown_table(result: SimulationResult) -> str:
    """Per-processor time breakdown (all values in microseconds)."""
    headers = [
        "proc",
        "compute",
        "comm ovh",
        "service",
        "comm wait",
        "barr ovh",
        "barr wait",
        "end",
    ]
    return format_table(
        headers,
        result.breakdown_rows(),
        float_fmt=".1f",
        title="per-processor breakdown (us)",
    )


def timeline(
    threads: Sequence[ThreadTrace],
    *,
    width: int = 72,
    end_time: float | None = None,
) -> str:
    """ASCII Gantt of extrapolated per-thread executions.

    Per thread, one lane of ``width`` characters covering [0, end]:

    * ``=`` compute / busy span,
    * ``B`` inside a barrier (entry to exit),
    * ``r`` a remote access issue,
    * ``.`` after the thread ended.
    """
    if not threads:
        return "(no threads)"
    end = end_time or max((tt.end_time for tt in threads), default=0.0)
    if end <= 0:
        return "(empty timeline)"

    def col(t: float) -> int:
        return min(width - 1, int(t / end * width))

    lines = [f"timeline 0 .. {end:.0f} us ('=' busy, 'B' barrier, 'r' remote access)"]
    for tt in threads:
        lane = ["="] * width
        # Mark the post-END tail.
        for c in range(col(tt.end_time) + 1, width):
            lane[c] = "."
        # Barrier spans.
        entry_at = {}
        for ev in tt.events:
            if ev.kind == EventKind.BARRIER_ENTER:
                entry_at[ev.barrier_id] = ev.time
            elif ev.kind == EventKind.BARRIER_EXIT:
                start = entry_at.pop(ev.barrier_id, ev.time)
                for c in range(col(start), col(ev.time) + 1):
                    lane[c] = "B"
        # Remote accesses (drawn last so they stay visible).
        for ev in tt.events:
            if ev.kind in (EventKind.REMOTE_READ, EventKind.REMOTE_WRITE):
                lane[col(ev.time)] = "r"
        lines.append(f"  t{tt.thread:<3d} |{''.join(lane)}|")
    return "\n".join(lines)


def bottleneck_summary(result: SimulationResult) -> str:
    """Name the dominant cost category and the most idle processors."""
    total_busy = {
        "compute": result.total_compute_time(),
        "communication": result.total_comm_time(),
        "barriers": result.total_barrier_time(),
    }
    dominant = max(total_busy, key=total_busy.get)
    lines = [
        "bottleneck summary:",
        "  totals across processors: "
        + ", ".join(f"{k} {v:.0f} us" for k, v in total_busy.items()),
        f"  dominant non-idle cost: {dominant}",
    ]
    idle = sorted(
        result.processors, key=lambda p: p.idle_fraction, reverse=True
    )[:3]
    for p in idle:
        if p.idle_fraction > 0:
            lines.append(
                f"  proc {p.pid}: {p.idle_fraction:.0%} idle "
                f"(comm wait {p.comm_wait:.0f} us, "
                f"barrier wait {p.barrier_wait:.0f} us)"
            )
    if result.execution_time > 0:
        lines.append(f"  mean utilisation: {result.utilization():.1%}")
    return "\n".join(lines)


def fault_section(result: SimulationResult) -> str:
    """The injected-faults block for a result, if a fault plan ran.

    Empty string for a fault-free simulation — callers can append it
    unconditionally, like :func:`profile_section`.
    """
    if result.faults is None:
        return ""
    totals = result.fault_totals()
    fs = result.faults
    net = result.network
    lines = [
        "fault model:",
        f"  {result.params.faults.describe()}"
        if result.params.faults is not None
        else "  (plan unavailable)",
        f"  network: {net.dropped} dropped / {net.duplicated} duplicated "
        f"of {net.messages} messages, "
        f"{fs.jitter_messages} jittered (+{net.total_jitter:.0f} us total)",
        f"  protocol: {totals['timeouts']} timeouts, {totals['retries']} "
        f"retries, {totals['late_replies']} late replies, "
        f"{totals['retry_giveups']} give-ups",
    ]
    if fs.dropped_by_kind:
        by_kind = ", ".join(
            f"{kind}={count}" for kind, count in sorted(fs.dropped_by_kind.items())
        )
        lines.append(f"  drops by kind: {by_kind}")
    if fs.stragglers:
        lines.append(
            f"  stragglers: {fs.stragglers} slowed compute actions "
            f"(+{fs.straggler_extra_time:.0f} us busy time)"
        )
    if fs.barrier_delays:
        lines.append(
            f"  barrier delays: {fs.barrier_delays} late arrivals "
            f"(+{fs.barrier_delay_time:.0f} us)"
        )
    return "\n".join(lines)


def profile_section(result: SimulationResult) -> str:
    """The engine-profile block for a result, if one was collected.

    Empty string when the simulation ran without ``profile=True`` —
    callers can unconditionally append it.
    """
    if result.profile is None:
        return ""
    return result.profile.format()


def predict_summary(params, outcome: ExtrapolationOutcome) -> str:
    """The canonical ``extrap predict`` report.

    Single source of the prediction text: the CLI prints exactly this,
    and the serve API returns it as the ``report`` field, so the two
    surfaces can never drift apart.
    """
    lines = [
        params.describe(),
        f"measured trace: {outcome.trace_stats.summary()}",
        f"ideal execution time:     {outcome.ideal_time:12.1f} us",
        f"predicted execution time: {outcome.predicted_time:12.1f} us",
        outcome.result.summary(),
    ]
    if outcome.result.faults is not None:
        lines.append(fault_section(outcome.result))
    if outcome.result.profile is not None:
        lines.append(profile_section(outcome.result))
    return "\n".join(lines)


def full_report(outcome: ExtrapolationOutcome, *, width: int = 72) -> str:
    """Everything a debugging session wants on one screen."""
    from repro.metrics.phases import phase_stats, phase_table

    res = outcome.result
    parts = [
        f"=== extrapolation report: {res.meta.program or 'program'} "
        f"on {res.n_processors} processors ({res.params.name}) ===",
        f"measured trace : {outcome.trace_stats.summary()}",
        f"ideal time     : {outcome.ideal_time:.1f} us (zero-cost environment)",
        f"predicted time : {outcome.predicted_time:.1f} us",
        "",
        breakdown_table(res),
        "",
        timeline(res.threads, width=width, end_time=res.execution_time),
        "",
        bottleneck_summary(res),
    ]
    if phase_stats(res.threads):
        parts += ["", phase_table(res.threads)]
    if res.faults is not None:
        parts += ["", fault_section(res)]
    if res.profile is not None:
        parts += ["", profile_section(res)]
    return "\n".join(parts)
