"""Processor-scaling studies: run one program across processor counts.

This is the machinery behind every speedup figure in the paper's
evaluation: measure the program at each thread count on the (virtual)
1-processor machine, extrapolate each trace to the target environment,
and tabulate times and speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.parameters import SimulationParameters
from repro.core.pipeline import ExtrapolationOutcome, extrapolate, measure
from repro.metrics.metrics import PerformanceMetrics, derive_metrics, speedups
from repro.util.tables import format_table

#: The processor counts used throughout the paper's evaluation (§4.1).
PAPER_PROCESSOR_COUNTS = (1, 2, 4, 8, 16, 32)

#: ``make_program(n_threads) -> ProgramFactory`` — benchmarks expose this
#: shape so the study can re-generate the program per thread count.
ProgramMaker = Callable[[int], Callable]


@dataclass
class ScalingPoint:
    """One (processor count, environment) data point."""

    n: int
    outcome: ExtrapolationOutcome
    metrics: PerformanceMetrics


@dataclass
class ScalingStudy:
    """Times and speedups of one program across processor counts.

    Attributes
    ----------
    program_name:
        Label for reports.
    params:
        Target environment the traces were extrapolated to.
    points:
        One :class:`ScalingPoint` per processor count, ascending.
    """

    program_name: str
    params: SimulationParameters
    points: List[ScalingPoint] = field(default_factory=list)

    @property
    def times(self) -> Dict[int, float]:
        return {pt.n: pt.metrics.execution_time for pt in self.points}

    @property
    def speedup_curve(self) -> Dict[int, float]:
        return speedups(self.times)

    def point(self, n: int) -> ScalingPoint:
        for pt in self.points:
            if pt.n == n:
                return pt
        raise KeyError(f"no data point for {n} processors")

    def best_processor_count(self) -> int:
        """Processor count with minimum predicted execution time."""
        return min(self.times, key=self.times.get)

    def format(self) -> str:
        """Tabular report: one row per processor count."""
        curve = self.speedup_curve
        rows = []
        for pt in self.points:
            m = pt.metrics
            rows.append(
                [
                    pt.n,
                    m.execution_time,
                    curve[pt.n],
                    curve[pt.n] / pt.n,
                    m.utilization,
                    m.barrier_count,
                    m.messages,
                ]
            )
        return format_table(
            ["P", "time_us", "speedup", "efficiency", "util", "barriers", "msgs"],
            rows,
            title=f"{self.program_name} — {self.params.name}",
        )


def run_scaling_study(
    make_program: ProgramMaker,
    params: SimulationParameters,
    *,
    name: str = "",
    processor_counts: Sequence[int] = PAPER_PROCESSOR_COUNTS,
    size_mode: str = "compiler",
    compensate_overhead: float = 0.0,
    problem: Optional[Dict[str, Any]] = None,
) -> ScalingStudy:
    """Measure + extrapolate at each processor count; collect the curve."""
    study = ScalingStudy(program_name=name, params=params)
    for n in sorted(processor_counts):
        trace = measure(
            make_program(n), n, name=name, size_mode=size_mode, problem=problem
        )
        outcome = extrapolate(trace, params, compensate_overhead=compensate_overhead)
        study.points.append(
            ScalingPoint(n=n, outcome=outcome, metrics=derive_metrics(outcome.result))
        )
    # Fill in speedups relative to the smallest count.
    base = study.points[0].metrics.execution_time if study.points else None
    if base:
        for pt in study.points:
            pt.metrics = derive_metrics(pt.outcome.result, baseline_time=base)
    return study
