"""Simulation observability: timelines of the *simulated* execution.

ExtraP's whole method is trace-driven — it turns one merged trace into
per-thread extrapolated traces — yet until this package the simulator
only reported end-of-run aggregates.  :mod:`repro.obs` records the
event-level timeline of the simulated n-processor run: who computed,
waited, serviced remote requests and sat in barriers, and *when*.  That
is what lets a user see why a prediction came out the way it did.

The pieces:

* :class:`TimelineRecorder` (:mod:`repro.obs.recorder`) — the narrow
  hook interface (``span`` / ``instant`` / ``counter``) the simulation
  models call at the points where they already account busy/wait time.
  Components reach it through the engine's ``Environment.obs`` slot;
  when it is ``None`` (the default) every hook site is a single pointer
  test, so the fast path keeps its throughput.
* :mod:`repro.obs.samplers` — the on-state-change sampling discipline
  plus derived series (bucketed busy fractions, utilization).
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable,
  deterministic, round-trips through :func:`load_chrome_trace`) and
  counter CSV.
* :mod:`repro.obs.gantt` — terminal Gantt rendering.

Turn it on with ``Simulator(..., observe=True)`` /
``extrapolate(..., observe=True)`` — the result then carries a
:class:`Timeline` as ``SimulationResult.timeline`` — or from the CLI
with ``extrap predict TRACE --timeline out.json`` and explore with
``extrap timeline out.json --ascii``.
"""

from repro.obs.export import (
    chrome_trace_json,
    counters_csv,
    load_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_counters_csv,
)
from repro.obs.gantt import ascii_gantt
from repro.obs.recorder import (
    CounterSeries,
    Instant,
    Span,
    Timeline,
    TimelineRecorder,
    WAIT_CATEGORIES,
)
from repro.obs.samplers import (
    OnChangeSampler,
    busy_fraction_series,
    counter_points,
    utilization_series,
)

__all__ = [
    "CounterSeries",
    "Instant",
    "OnChangeSampler",
    "Span",
    "Timeline",
    "TimelineRecorder",
    "WAIT_CATEGORIES",
    "ascii_gantt",
    "busy_fraction_series",
    "chrome_trace_json",
    "counter_points",
    "counters_csv",
    "load_chrome_trace",
    "to_chrome_trace",
    "utilization_series",
    "write_chrome_trace",
    "write_counters_csv",
]
