"""Timeline exporters: Chrome trace-event JSON, counter CSV.

The JSON export follows the Chrome trace-event format (the JSON array
flavour under a ``traceEvents`` key) so a recorded timeline drops
straight into `Perfetto <https://ui.perfetto.dev>`_ or
``chrome://tracing``:

* one track per simulated processor (``pid``/``tid`` = processor id),
  with complete spans (``ph: "X"``) named and categorised by the
  busy/wait category — Perfetto colours by name, so the categories of
  :data:`repro.sim.result.CATEGORIES` come out visually distinct;
* instant events (``ph: "i"``, thread scope) for marks, remote-access
  issues and barrier releases;
* counter events (``ph: "C"``) for the sampled series.  Per-processor
  counters (``procN.*``) attach to that processor's track; global
  series (network, barriers) attach to a pseudo-process with
  ``pid = n_procs``.

Timestamps are simulation microseconds, which is exactly the ``ts``
unit the format specifies — no conversion needed.

Exports are **deterministic**: events are fully sorted, keys are
sorted, and no wall-clock or platform information is embedded, so the
same simulation (same seed, same parameters) produces a byte-identical
file.  :func:`load_chrome_trace` reads the format back into a
:class:`~repro.obs.recorder.Timeline`, making the JSON file the
interchange format between ``extrap predict --timeline`` and
``extrap timeline``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.obs.recorder import CounterSeries, Instant, Span, Timeline
from repro.util.atomic import atomic_write_text

#: bumped when the exported structure changes incompatibly
SCHEMA_VERSION = 1

#: pseudo-pid offset for series not owned by one processor
_GLOBAL_TRACK = "global"


def _counter_pid(name: str, n_procs: int) -> int:
    """Track assignment for a counter: ``procN.*`` series ride on
    processor ``N``; everything else goes to the global pseudo-process."""
    if name.startswith("proc"):
        head = name[4:].split(".", 1)[0]
        if head.isdigit():
            return int(head)
    return n_procs


def to_chrome_trace(timeline: Timeline) -> dict:
    """Render a timeline as a Chrome trace-event JSON object."""
    events: List[dict] = []
    for s in timeline.spans:
        events.append(
            {
                "name": s.category,
                "cat": s.category,
                "ph": "X",
                "pid": s.proc,
                "tid": s.proc,
                "ts": s.t0,
                "dur": s.duration,
            }
        )
    for i in timeline.instants:
        ev = {
            "name": i.name,
            "ph": "i",
            "s": "t",
            "pid": i.proc,
            "tid": i.proc,
            "ts": i.t,
        }
        if i.args:
            ev["args"] = i.args_dict()
        events.append(ev)
    for name, series in timeline.counters.items():
        pid = _counter_pid(name, timeline.n_procs)
        for t, value in series.samples:
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "ts": t,
                    "args": {"value": value},
                }
            )
    events.sort(
        key=lambda e: (e["ts"], e["pid"], e["tid"], e["ph"], e["name"])
    )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": SCHEMA_VERSION,
            "program": timeline.program,
            "params": timeline.params_name,
            "n_processors": timeline.n_procs,
            "end_time_us": timeline.end_time,
        },
    }


def chrome_trace_json(timeline: Timeline) -> str:
    """The deterministic serialised form of :func:`to_chrome_trace`."""
    return (
        json.dumps(
            to_chrome_trace(timeline), sort_keys=True, separators=(",", ":")
        )
        + "\n"
    )


def write_chrome_trace(timeline: Timeline, path: str | Path) -> Path:
    """Write the Perfetto-loadable JSON export to ``path``."""
    path = Path(path)
    atomic_write_text(path, chrome_trace_json(timeline))
    return path


def _ev_number(ev: dict, key: str, where: str, *, default=None):
    """A required-or-defaulted numeric event field, or a one-line error."""
    value = ev.get(key, default)
    if value is None:
        raise ValueError(f"{where}: missing required field {key!r}")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"{where}: field {key!r} must be a number, got {value!r}"
        )
    return value


def load_chrome_trace(path: str | Path) -> Timeline:
    """Read a file written by :func:`write_chrome_trace` back into a
    :class:`~repro.obs.recorder.Timeline`.

    Malformed trace-event JSON — an event missing ``ph`` or ``ts``, or
    carrying a non-numeric timestamp — raises :class:`ValueError` with
    a one-line message naming the offending event, which the CLI maps
    to its usual exit-2 input error.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError(
            f"{path}: not a Chrome trace-event file (no traceEvents key)"
        )
    if not isinstance(data["traceEvents"], list):
        raise ValueError(f"{path}: traceEvents must be a list")
    other = data.get("otherData", {})
    schema = other.get("schema")
    if schema is not None and schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported timeline schema {schema!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    spans: List[Span] = []
    instants: List[Instant] = []
    counters: Dict[str, CounterSeries] = {}
    max_pid = -1
    for i, ev in enumerate(data["traceEvents"]):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(
                f"{where}: expected an object, got {type(ev).__name__}"
            )
        ph = ev.get("ph")
        if ph is None:
            raise ValueError(f"{where}: missing required field 'ph'")
        if ph not in ("X", "i", "C"):
            # Unknown phases are skipped: other tools add metadata
            # events (ph "M", "b"/"e", ...), but they still must be
            # tagged as such — an event with no phase at all is refused
            # above rather than silently dropped.
            continue
        ts = _ev_number(ev, "ts", where)
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(
                f"{where}: field 'name' must be a non-empty string, "
                f"got {name!r}"
            )
        if ph == "X":
            pid = int(_ev_number(ev, "pid", where))
            spans.append(
                Span(
                    proc=pid,
                    category=name,
                    t0=ts,
                    t1=ts + _ev_number(ev, "dur", where, default=0),
                )
            )
            max_pid = max(max_pid, pid)
        elif ph == "i":
            pid = int(_ev_number(ev, "pid", where))
            instants.append(
                Instant(
                    proc=pid,
                    name=name,
                    t=ts,
                    args=tuple(sorted(ev.get("args", {}).items())),
                )
            )
            max_pid = max(max_pid, pid)
        elif ph == "C":
            series = counters.get(name)
            if series is None:
                series = counters[name] = CounterSeries(name)
            # Keep JSON-native number types (int vs float) so a loaded
            # timeline re-exports byte-identically.
            series.samples.append(
                (ts, ev.get("args", {}).get("value", 0))
            )
    n_procs = other.get("n_processors", max_pid + 1)
    end_time = other.get(
        "end_time_us", max((s.t1 for s in spans), default=0.0)
    )
    return Timeline(
        n_procs=int(n_procs),
        end_time=float(end_time),
        program=other.get("program", ""),
        params_name=other.get("params", ""),
        spans=sorted(spans, key=lambda s: (s.proc, s.t0, s.t1, s.category)),
        instants=sorted(instants, key=lambda i: (i.t, i.proc, i.name)),
        counters={name: counters[name] for name in sorted(counters)},
    )


# -- CSV -----------------------------------------------------------------


#: characters that would break the one-record-per-line CSV contract
_CSV_UNSAFE = frozenset(',"\n\r')


def _csv_name(name: str) -> str:
    """A counter name as a safe CSV field.

    Counter names flow in from user-controlled benchmark/span names; a
    name containing a comma, quote, newline or other control/non-ASCII
    character is emitted JSON-quoted (``json.dumps`` escapes all of
    them), so hostile names can never smear a record across lines or
    columns.  Plain names stay unquoted, keeping the common output
    byte-stable.
    """
    if (
        name
        and name.isascii()
        and name.isprintable()
        and name == name.strip()
        and not (_CSV_UNSAFE & set(name))
    ):
        return name
    return json.dumps(name)


def counters_csv(timeline: Timeline) -> str:
    """Counter series as long-format CSV: ``counter,t_us,value``.

    Names needing escaping appear as JSON string literals (see
    :func:`_csv_name`); ``json.loads`` recovers the original name.
    """
    lines = ["counter,t_us,value"]
    for name, series in timeline.counters.items():
        field = _csv_name(name)
        for t, value in series.samples:
            lines.append(f"{field},{t:g},{value:g}")
    return "\n".join(lines) + "\n"


def write_counters_csv(timeline: Timeline, path: str | Path) -> Path:
    """Write :func:`counters_csv` to ``path``."""
    path = Path(path)
    atomic_write_text(path, counters_csv(timeline))
    return path
