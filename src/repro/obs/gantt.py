"""ASCII Gantt rendering of a recorded timeline.

A terminal-resolution view of the same data the Perfetto export
carries: one lane per simulated processor, category-coded cells, waits
painted under busy work so a cell always shows the most specific thing
the processor was doing at that instant.  Built on
:func:`repro.util.asciiplot.ascii_lanes`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.recorder import Timeline
from repro.util.asciiplot import ascii_lanes

#: category -> (mark, paint priority); higher priority wins a cell.
#: Waits are low priority: busy spans recorded *during* a wait episode
#: (servicing remote requests, barrier overhead) overpaint it.
CATEGORY_MARKS: Dict[str, tuple] = {
    "comm_wait": ("w", 1),
    "barrier_wait": ("B", 1),
    "compute": ("=", 2),
    "comm_overhead": ("c", 2),
    "service": ("s", 2),
    "barrier_overhead": ("b", 2),
    "interrupt_overhead": ("i", 2),
    "poll_overhead": ("p", 2),
}

#: mark for categories this module does not know (custom hooks)
_OTHER_MARK = ("?", 2)

#: idle / after-end filler
_IDLE = "."


def ascii_gantt(timeline: Timeline, *, width: int = 72) -> str:
    """Render a per-processor Gantt chart of ``timeline``.

    Each lane covers ``[0, end_time]`` in ``width`` cells.  A cell takes
    the mark of the highest-priority category overlapping it (latest
    span wins ties, matching the nesting order of the recording); cells
    nothing overlaps stay idle (``.``).
    """
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    end = timeline.end_time
    if timeline.n_procs == 0 or end <= 0:
        return "(empty timeline)"

    def col(t: float) -> int:
        return max(0, min(width - 1, int(t / end * width)))

    lanes = []
    seen_marks: Dict[str, str] = {}
    for proc in range(timeline.n_procs):
        cells: List[str] = [_IDLE] * width
        prio: List[int] = [0] * width
        for s in timeline.spans:
            if s.proc != proc:
                continue
            mark, p = CATEGORY_MARKS.get(s.category, _OTHER_MARK)
            seen_marks.setdefault(mark, s.category)
            for c in range(col(s.t0), col(s.t1) + 1):
                if p >= prio[c]:
                    cells[c] = mark
                    prio[c] = p
        lanes.append((f"p{proc}", "".join(cells)))

    legend = {mark: seen_marks[mark] for mark in sorted(seen_marks)}
    legend[_IDLE] = "idle"
    return ascii_lanes(
        lanes,
        title=(
            f"timeline gantt: {timeline.program or 'program'} on "
            f"{timeline.n_procs} processors "
            f"({timeline.params_name or 'unknown params'})"
        ),
        footer=f"0 .. {end:.1f} us",
        legend=legend,
    )
