"""The timeline recorder: the write side of :mod:`repro.obs`.

:class:`TimelineRecorder` is the narrow hook interface the simulation
models call at the points where they already account busy/wait time:

* :meth:`~TimelineRecorder.span` — a closed interval of activity on one
  simulated processor, attributed to a category (the busy categories of
  :data:`repro.sim.result.CATEGORIES`, plus the wait-episode categories
  ``comm_wait`` / ``barrier_wait``);
* :meth:`~TimelineRecorder.instant` — a point event (a remote-access
  issue, a mark, a barrier release);
* :meth:`~TimelineRecorder.counter` — one sample of a named time series
  (receive-queue depth, messages in flight, cumulative busy time).
  Samples are taken **on state change**, not on a clock: the recorder
  drops a sample whose value equals the series' previous value, so an
  idle simulation records nothing.

The recorder itself never reads the simulation clock — every hook takes
explicit timestamps — so it has no dependency on the DES engine and can
be unit-tested standalone.  Components reach it through the engine's
``Environment.obs`` slot (``None`` when observation is off; every hook
site is behind a single ``if obs is not None`` guard so the fast path
pays one pointer test, nothing more).

:meth:`~TimelineRecorder.finalize` freezes the recording into an
immutable :class:`Timeline`, the value carried on
``SimulationResult.timeline`` and consumed by :mod:`repro.obs.export`
and :mod:`repro.obs.gantt`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

#: Wait-episode span categories.  Unlike the busy categories, these
#: cover the *wall-clock* waiting interval; busy spans recorded while
#: servicing requests during the wait nest inside them, so summing a
#: wait category gives elapsed episode time, not the elapsed-minus-busy
#: figure ``ProcessorStats`` reports.
WAIT_CATEGORIES = ("comm_wait", "barrier_wait")


@dataclass(frozen=True)
class Span:
    """One closed activity interval on one simulated processor."""

    proc: int
    category: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class Instant:
    """One point event on one simulated processor."""

    proc: int
    name: str
    t: float
    #: sorted (key, value) pairs — kept as a tuple so Instants stay
    #: hashable and deterministic to serialise
    args: Tuple[Tuple[str, object], ...] = ()

    def args_dict(self) -> Dict[str, object]:
        return dict(self.args)


class CounterSeries:
    """A named time series sampled on state change.

    ``sample(t, value)`` appends only when ``value`` differs from the
    last recorded value, so the series is a compact step function: the
    value holds from one sample until the next.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def sample(self, t: float, value: float) -> None:
        if self.samples and self.samples[-1][1] == value:
            return
        self.samples.append((t, value))

    def value_at(self, t: float) -> float:
        """Step-function value at time ``t`` (0.0 before the first sample)."""
        out = 0.0
        for st, sv in self.samples:
            if st > t:
                break
            out = sv
        return out

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterSeries({self.name!r}, {len(self.samples)} samples)"


class TimelineRecorder:
    """Collects spans, instants and counter samples during a simulation."""

    def __init__(self):
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._counters: Dict[str, CounterSeries] = {}

    # -- hook interface (called from the simulation models) -----------------

    def span(self, proc: int, category: str, t0: float, t1: float) -> None:
        """Record activity on ``proc`` over ``[t0, t1]``; zero/negative
        length spans are dropped (float residue, not real activity)."""
        if t1 > t0:
            self.spans.append(Span(proc, category, t0, t1))

    def instant(self, proc: int, name: str, t: float, **args) -> None:
        """Record a point event (args become the exported ``args`` dict)."""
        self.instants.append(
            Instant(proc, name, t, tuple(sorted(args.items())))
        )

    def counter(self, name: str, t: float, value: float) -> None:
        """Sample counter ``name``; dropped when the value is unchanged."""
        series = self._counters.get(name)
        if series is None:
            series = self._counters[name] = CounterSeries(name)
        series.sample(t, value)

    # -- freeze ----------------------------------------------------------------

    def finalize(
        self,
        *,
        n_procs: int,
        end_time: float,
        program: str = "",
        params_name: str = "",
    ) -> "Timeline":
        """Freeze the recording into an immutable, sorted :class:`Timeline`."""
        timeline = Timeline(
            n_procs=n_procs,
            end_time=end_time,
            program=program,
            params_name=params_name,
            spans=sorted(
                self.spans, key=lambda s: (s.proc, s.t0, s.t1, s.category)
            ),
            instants=sorted(
                self.instants, key=lambda i: (i.t, i.proc, i.name)
            ),
            counters={
                name: self._counters[name]
                for name in sorted(self._counters)
            },
        )
        # Precompute the per-processor span index while the timeline is
        # hot: per-proc queries (diagnosis, Gantt lanes) then never
        # rescan the flat span list.
        timeline._index()
        return timeline


@dataclass
class Timeline:
    """An immutable recorded timeline of one simulated execution.

    This is the observability twin of the aggregate
    :class:`~repro.sim.result.SimulationResult` statistics: the same
    accounting, kept as *events in time* instead of totals.
    """

    n_procs: int
    end_time: float
    program: str = ""
    params_name: str = ""
    spans: List[Span] = field(default_factory=list)
    instants: List[Instant] = field(default_factory=list)
    counters: Mapping[str, CounterSeries] = field(default_factory=dict)

    # -- per-processor span index --------------------------------------------

    def _index(self) -> Dict[int, List[Span]]:
        """Per-processor span lists + category totals, built once.

        :meth:`TimelineRecorder.finalize` precomputes this; lazily
        (re)built otherwise, keyed on the span count so hand-assembled
        timelines that append spans after a query stay correct.
        """
        if getattr(self, "_index_spans", -1) != len(self.spans):
            by_proc: Dict[int, List[Span]] = {}
            totals: Dict[int, Dict[str, float]] = {}
            for s in self.spans:
                by_proc.setdefault(s.proc, []).append(s)
                t = totals.setdefault(s.proc, {})
                t[s.category] = t.get(s.category, 0.0) + s.duration
            self._by_proc = by_proc
            self._totals_by_proc = totals
            self._index_spans = len(self.spans)
        return self._by_proc

    # -- queries -------------------------------------------------------------

    def spans_for(self, proc: int) -> List[Span]:
        return list(self._index().get(proc, ()))

    def category_totals(self, proc: Optional[int] = None) -> Dict[str, float]:
        """Summed span duration per category (optionally one processor).

        For busy categories this agrees with the matching
        ``ProcessorStats.categories`` entry to float tolerance; wait
        categories sum to *episode* (wall) time — see
        :data:`WAIT_CATEGORIES`.
        """
        self._index()
        if proc is not None:
            return dict(self._totals_by_proc.get(proc, {}))
        # Merge per-proc subtotals in ascending pid order: deterministic
        # (and agrees with a flat scan to float associativity).
        totals: Dict[str, float] = {}
        for p in sorted(self._totals_by_proc):
            for cat, v in self._totals_by_proc[p].items():
                totals[cat] = totals.get(cat, 0.0) + v
        return totals

    def counter_names(self) -> List[str]:
        return list(self.counters)

    def summary(self) -> str:
        """One-paragraph text summary (the default `extrap timeline` view)."""
        totals = self.category_totals()
        lines = [
            f"timeline: {self.program or 'program'} on {self.n_procs} "
            f"processors ({self.params_name or 'unknown params'}), "
            f"0 .. {self.end_time:.1f} us",
            f"  {len(self.spans)} spans, {len(self.instants)} instants, "
            f"{len(self.counters)} counter series",
        ]
        for cat in sorted(totals):
            lines.append(f"  span total {cat:18s} {totals[cat]:14.1f} us")
        for name, series in self.counters.items():
            lines.append(f"  counter    {name:18s} {len(series):6d} samples")
        return "\n".join(lines)
