"""Time-series samplers and derived series over recorded timelines.

The *write-side* sampling discipline of :mod:`repro.obs` is on state
change: the simulation models sample a counter exactly when its value
may have changed (a message injected or delivered, a queue grown or
drained, a busy span closed), and :class:`~repro.obs.recorder.CounterSeries`
drops the sample when the value is in fact unchanged.  That keeps the
series exact — no clock-driven sampling grid, no aliasing — at a cost
proportional to activity, not to simulated time.

:class:`OnChangeSampler` wraps that discipline for callers that want to
push values unconditionally.  The rest of this module is the *read
side*: derived series computed from a finalized
:class:`~repro.obs.recorder.Timeline` (bucketed busy fractions, step
resampling) used by the ``extrap timeline`` CLI and the docs examples.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.recorder import Timeline, TimelineRecorder, WAIT_CATEGORIES


class OnChangeSampler:
    """Push-style adapter: forwards samples to a recorder counter.

    Useful when the observed value is cheap to read but the call site
    cannot easily tell whether it changed::

        depth = OnChangeSampler(recorder, "proc3.rxq_depth")
        depth.sample(env.now, len(inbox.items))   # dedup handled inside
    """

    __slots__ = ("_recorder", "name")

    def __init__(self, recorder: TimelineRecorder, name: str):
        self._recorder = recorder
        self.name = name

    def sample(self, t: float, value: float) -> None:
        self._recorder.counter(self.name, t, value)


def step_resample(
    samples: List[Tuple[float, float]], times: List[float]
) -> List[float]:
    """Evaluate an on-change (step) series at the given sorted ``times``."""
    out: List[float] = []
    idx, value = 0, 0.0
    for t in times:
        while idx < len(samples) and samples[idx][0] <= t:
            value = samples[idx][1]
            idx += 1
        out.append(value)
    return out


def busy_fraction_series(
    timeline: Timeline,
    proc: int,
    *,
    n_buckets: int = 32,
    include_waits: bool = False,
) -> List[Tuple[float, float]]:
    """Per-bucket busy fraction for one processor.

    Buckets partition ``[0, end_time]``; each value is the fraction of
    the bucket covered by busy spans (wait episodes excluded unless
    ``include_waits``, since busy time nests inside them and would be
    double-counted).  Returns ``[(bucket_midpoint, fraction), ...]``.
    """
    if n_buckets < 1:
        raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
    end = timeline.end_time
    if end <= 0:
        return []
    width = end / n_buckets
    busy = [0.0] * n_buckets
    for s in timeline.spans:
        if s.proc != proc:
            continue
        if not include_waits and s.category in WAIT_CATEGORIES:
            continue
        lo = max(0, min(n_buckets - 1, int(s.t0 / width)))
        hi = max(0, min(n_buckets - 1, int(s.t1 / width)))
        for b in range(lo, hi + 1):
            b0, b1 = b * width, (b + 1) * width
            overlap = min(s.t1, b1) - max(s.t0, b0)
            if overlap > 0:
                busy[b] += overlap
    return [
        ((b + 0.5) * width, min(1.0, busy[b] / width))
        for b in range(n_buckets)
    ]


def utilization_series(
    timeline: Timeline, *, n_buckets: int = 32
) -> Dict[str, List[Tuple[float, float]]]:
    """Mean busy fraction across processors, bucketed over the run.

    Returns a single-series mapping ready for
    :func:`repro.util.asciiplot.ascii_series_plot`.
    """
    if timeline.n_procs == 0 or timeline.end_time <= 0:
        return {"utilization": []}
    per_proc = [
        busy_fraction_series(timeline, p, n_buckets=n_buckets)
        for p in range(timeline.n_procs)
    ]
    out: List[Tuple[float, float]] = []
    for i in range(n_buckets):
        t = per_proc[0][i][0]
        out.append(
            (t, sum(series[i][1] for series in per_proc) / timeline.n_procs)
        )
    return {"utilization": out}


def counter_points(
    timeline: Timeline, name: str, *, max_points: Optional[int] = None
) -> List[Tuple[float, float]]:
    """The (t, value) samples of one counter, optionally thinned.

    Thinning keeps the first and last samples and an even stride in
    between — enough for a terminal plot of a long series.
    """
    try:
        series = timeline.counters[name]
    except KeyError:
        available = ", ".join(timeline.counter_names()) or "(none)"
        raise KeyError(
            f"no counter {name!r} in timeline; available: {available}"
        ) from None
    pts = list(series.samples)
    if max_points is not None and len(pts) > max_points > 2:
        stride = (len(pts) - 1) / (max_points - 1)
        pts = [pts[round(i * stride)] for i in range(max_points)]
    return pts
