"""A pC++-style object-parallel runtime (the measured environment E1).

pC++ distributes a *collection* of element objects across n threads
(HPF-style Block/Cyclic/Whole distributions), invokes methods over all
local elements in parallel phases separated by global barriers, and lets
threads read elements they do not own via *remote element requests*
serviced by the owner ("owner computes").

This package reproduces that model in Python:

* :mod:`repro.pcxx.distribution` — per-dimension distribution attributes,
  including the paper's integer-sqrt (BLOCK, BLOCK) rule whose idle
  processors explain the Grid/Mgrid 4-to-8 processor plateau (§4.1);
* :mod:`repro.pcxx.collection` — distributed element containers;
* :mod:`repro.pcxx.runtime` — the tracing runtime: runs n generator
  threads on one virtual processor (via :mod:`repro.threads`) and records
  the high-level event trace;
* :mod:`repro.pcxx.patterns` — broadcast / reduction / shift communication
  patterns written against the thread API, shared by the benchmarks.
"""

from repro.pcxx.distribution import (
    Dist,
    Distribution1D,
    Distribution2D,
    make_distribution,
)
from repro.pcxx.collection import Collection
from repro.pcxx.invoke import parallel_invoke, parallel_reduce
from repro.pcxx.runtime import ThreadCtx, TracingRuntime

__all__ = [
    "Collection",
    "Dist",
    "Distribution1D",
    "Distribution2D",
    "ThreadCtx",
    "TracingRuntime",
    "make_distribution",
    "parallel_invoke",
    "parallel_reduce",
]
