"""Distributed collections of elements.

A :class:`Collection` is the pC++ unit of data parallelism: a named,
distributed container of element objects.  In the 1-processor tracing run
all elements live in one global space (as in the paper's modified runtime
system), so remote reads return the value directly; what distinguishes a
remote access is only the *ownership* relation given by the distribution,
which is what gets recorded in the trace.

``element_nbytes`` is the collection element's size as the compiler sees
it; the tracing runtime records this size for every remote access when
running in ``"compiler"`` size mode, or the caller-supplied actual request
size in ``"actual"`` mode (reproducing the Grid measurement-abstraction
story of §4.1).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Tuple, Union

from repro.pcxx.distribution import Distribution1D, Distribution2D

Index = Union[int, Tuple[int, int]]


class Collection:
    """A named, distributed container of elements.

    Parameters
    ----------
    name:
        Collection name (appears in trace events).
    distribution:
        A :class:`Distribution1D` or :class:`Distribution2D`.
    element_nbytes:
        Per-element size in bytes as recorded by the compiler.
    element_factory:
        Optional ``factory(index) -> value`` used to populate elements
        lazily on first read.
    """

    def __init__(
        self,
        name: str,
        distribution: Distribution1D | Distribution2D,
        element_nbytes: int = 8,
        element_factory: Callable[[Index], Any] | None = None,
    ):
        if element_nbytes <= 0:
            raise ValueError(f"element_nbytes must be positive, got {element_nbytes}")
        self.name = name
        self.dist = distribution
        self.element_nbytes = int(element_nbytes)
        self._factory = element_factory
        self._data: Dict[Index, Any] = {}

    # -- ownership -----------------------------------------------------------

    def owner(self, index: Index) -> int:
        """Thread that owns ``index``."""
        return self.dist.owner(index)

    def local_indices(self, thread: int) -> List[Index]:
        """Indices owned by ``thread``."""
        return self.dist.local_indices(thread)

    @property
    def n_threads(self) -> int:
        return self.dist.n_threads

    # -- element storage (global space of the 1-processor run) ---------------

    def __contains__(self, index: Index) -> bool:
        return index in self._data

    def peek(self, index: Index) -> Any:
        """Read an element without ownership bookkeeping (test/debug aid)."""
        return self._load(index)

    def poke(self, index: Index, value: Any) -> None:
        """Write an element without ownership bookkeeping (initialisation)."""
        self.dist.owner(index)  # index validation
        self._data[index] = value

    def _load(self, index: Index) -> Any:
        if index not in self._data:
            if self._factory is None:
                raise KeyError(
                    f"collection {self.name!r} has no element {index!r} "
                    "and no element factory"
                )
            self._data[index] = self._factory(index)
        return self._data[index]

    def _store(self, index: Index, value: Any) -> None:
        self.dist.owner(index)  # index validation
        self._data[index] = value

    def fill(self, values: Dict[Index, Any] | Iterable[Tuple[Index, Any]]) -> None:
        """Bulk-initialise elements."""
        items = values.items() if isinstance(values, dict) else values
        for idx, val in items:
            self.poke(idx, val)

    def __repr__(self) -> str:
        return (
            f"<Collection {self.name!r} {type(self.dist).__name__} "
            f"{len(self._data)} elements, {self.element_nbytes} B/elem>"
        )
