"""HPF-style data distributions.

pC++ distributes collections with per-dimension attributes — BLOCK,
CYCLIC, WHOLE — over an (implicit) thread grid.  The rules here follow
the paper:

* 1-D: BLOCK gives contiguous chunks of ``ceil(size / n)``, CYCLIC deals
  round-robin, WHOLE places everything on thread 0.
* 2-D with both dimensions distributed: the thread grid is
  ``q x q`` with ``q = isqrt(n)`` (integer square root).  When n is not a
  perfect square the trailing ``n - q*q`` threads own no elements — this
  is exactly the artifact the paper observes for Grid/Mgrid, where going
  from 4 to 8 processors brings no improvement because 4 of the 8
  processors sit idle (§4.1).
* 2-D with one WHOLE dimension: the thread grid collapses to ``n x 1`` or
  ``1 x n`` along the distributed dimension.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


class Dist(enum.Enum):
    """Per-dimension distribution attribute."""

    BLOCK = "block"
    CYCLIC = "cyclic"
    WHOLE = "whole"

    @classmethod
    def parse(cls, s: "str | Dist") -> "Dist":
        if isinstance(s, Dist):
            return s
        try:
            return cls[s.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown distribution attribute {s!r}; expected one of "
                f"{[d.name for d in cls]}"
            ) from None


def _dim_coord(attr: Dist, index: int, extent: int, nprocs: int) -> int:
    """Processor coordinate of ``index`` along one dimension."""
    if attr is Dist.WHOLE or nprocs == 1:
        return 0
    if attr is Dist.BLOCK:
        block = -(-extent // nprocs)  # ceil division
        return index // block
    if attr is Dist.CYCLIC:
        return index % nprocs
    raise AssertionError(attr)


def _dim_local(attr: Dist, coord: int, extent: int, nprocs: int) -> List[int]:
    """Indices owned by processor ``coord`` along one dimension."""
    if attr is Dist.WHOLE or nprocs == 1:
        return list(range(extent)) if coord == 0 else []
    if attr is Dist.BLOCK:
        block = -(-extent // nprocs)
        return list(range(coord * block, min((coord + 1) * block, extent)))
    if attr is Dist.CYCLIC:
        return list(range(coord, extent, nprocs))
    raise AssertionError(attr)


@dataclass(frozen=True)
class Distribution1D:
    """Distribution of a 1-D collection of ``size`` elements over ``n_threads``."""

    size: int
    n_threads: int
    attr: Dist = Dist.BLOCK

    def __post_init__(self):
        if self.size < 0:
            raise ValueError(f"negative size {self.size}")
        if self.n_threads < 1:
            raise ValueError(f"need at least 1 thread, got {self.n_threads}")

    def owner(self, index: int) -> int:
        """Thread owning element ``index``."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range 0..{self.size - 1}")
        if self.attr is Dist.WHOLE:
            return 0
        return _dim_coord(self.attr, index, self.size, self.n_threads)

    def local_indices(self, thread: int) -> List[int]:
        """Elements owned by ``thread``, ascending."""
        if not 0 <= thread < self.n_threads:
            raise IndexError(f"thread {thread} out of range")
        return _dim_local(self.attr, thread, self.size, self.n_threads)

    def threads_used(self) -> int:
        """Number of threads owning at least one element."""
        return len({self.owner(i) for i in range(self.size)})

    def indices(self) -> Iterator[int]:
        return iter(range(self.size))


@dataclass(frozen=True)
class Distribution2D:
    """Distribution of a ``rows x cols`` collection over ``n_threads``.

    The thread grid shape follows the paper's rules (see module docstring);
    thread id = ``grid_row * grid_cols + grid_col`` in row-major order.
    """

    rows: int
    cols: int
    n_threads: int
    row_attr: Dist = Dist.BLOCK
    col_attr: Dist = Dist.BLOCK

    def __post_init__(self):
        if self.rows < 0 or self.cols < 0:
            raise ValueError(f"negative shape ({self.rows}, {self.cols})")
        if self.n_threads < 1:
            raise ValueError(f"need at least 1 thread, got {self.n_threads}")

    @property
    def grid_shape(self) -> Tuple[int, int]:
        """(grid_rows, grid_cols) of the thread grid."""
        n = self.n_threads
        rw = self.row_attr is Dist.WHOLE
        cw = self.col_attr is Dist.WHOLE
        if rw and cw:
            return (1, 1)
        if rw:
            return (1, n)
        if cw:
            return (n, 1)
        q = math.isqrt(n)
        return (q, q)

    def owner(self, index: Tuple[int, int]) -> int:
        """Thread owning element ``(row, col)``."""
        r, c = index
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise IndexError(f"index {index} out of range {self.rows}x{self.cols}")
        gr, gc = self.grid_shape
        pr = _dim_coord(self.row_attr, r, self.rows, gr)
        pc = _dim_coord(self.col_attr, c, self.cols, gc)
        return pr * gc + pc

    def local_indices(self, thread: int) -> List[Tuple[int, int]]:
        """Elements owned by ``thread``, row-major."""
        if not 0 <= thread < self.n_threads:
            raise IndexError(f"thread {thread} out of range")
        gr, gc = self.grid_shape
        if thread >= gr * gc:
            return []  # idle thread (the 4->8 processor artifact)
        pr, pc = divmod(thread, gc)
        rows = _dim_local(self.row_attr, pr, self.rows, gr)
        cols = _dim_local(self.col_attr, pc, self.cols, gc)
        return [(r, c) for r in rows for c in cols]

    def threads_used(self) -> int:
        """Number of threads owning at least one element."""
        return sum(1 for t in range(self.n_threads) if self.local_indices(t))

    def indices(self) -> Iterator[Tuple[int, int]]:
        return ((r, c) for r in range(self.rows) for c in range(self.cols))


def make_distribution(
    shape: int | Tuple[int, ...],
    n_threads: int,
    attrs: str | Dist | Sequence[str | Dist] = Dist.BLOCK,
) -> Distribution1D | Distribution2D:
    """Build a distribution from a shape and attribute spec.

    ``attrs`` may be a single attribute (applied to every dimension) or a
    per-dimension sequence, each given as a :class:`Dist` or its name.
    """
    if isinstance(shape, int):
        shape = (shape,)
    if isinstance(attrs, (str, Dist)):
        attrs = [attrs] * len(shape)
    if len(attrs) != len(shape):
        raise ValueError(
            f"{len(attrs)} attributes for a {len(shape)}-D shape {shape}"
        )
    parsed = [Dist.parse(a) for a in attrs]
    if len(shape) == 1:
        return Distribution1D(shape[0], n_threads, parsed[0])
    if len(shape) == 2:
        return Distribution2D(shape[0], shape[1], n_threads, parsed[0], parsed[1])
    raise ValueError(f"only 1-D and 2-D collections are supported, got {shape}")
