"""Parallel method invocation — the pC++ object-parallel core (§3.1).

"The collection inherits certain member functions of its elements, so
that when such a member function is called, it is called for every
element in the collection … The compiler accomplishes a parallel method
invocation by generating code so that each thread calls the method for
all its local elements.  At the end of each parallel method invocation,
the threads are synchronized by a global barrier."

:func:`parallel_invoke` is that compiler-generated shape as a library
call: apply a method to every local element, charge its cost, barrier.
Methods may be plain functions (local computation on the element) or
generators (which may perform remote reads through the thread context —
how a stencil method fetches its neighbours).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Generator, Optional

from repro.pcxx.collection import Collection, Index
from repro.pcxx.runtime import ThreadCtx

#: method(ctx, coll, index, element, *args) -> new element value | None
ElementMethod = Callable[..., Any]


def parallel_invoke(
    ctx: ThreadCtx,
    coll: Collection,
    method: ElementMethod,
    *args: Any,
    flops_per_element: float = 0.0,
    barrier: bool = True,
) -> Generator[Any, Any, int]:
    """Invoke ``method`` on every element of ``coll`` owned by this thread.

    ``method(ctx, coll, index, element, *args)`` is called per local
    element; if it is a generator function it is driven with ``yield
    from`` (so it can perform remote reads); its return value, when not
    None, replaces the element.  ``flops_per_element`` charges the
    method's computational cost.  The trailing global barrier — the one
    the pC++ compiler always inserts — can be suppressed with
    ``barrier=False`` for fused invocations.

    Returns the number of elements processed (0 for idle threads, which
    still take the barrier).
    """
    if flops_per_element < 0:
        raise ValueError(f"negative flops_per_element {flops_per_element}")
    local = ctx.local_indices(coll)
    is_gen = inspect.isgeneratorfunction(method)
    for index in local:
        element = coll._load(index)
        if is_gen:
            result = yield from method(ctx, coll, index, element, *args)
        else:
            result = method(ctx, coll, index, element, *args)
        if result is not None:
            yield from ctx.put(coll, index, result)
    if flops_per_element:
        yield from ctx.compute(len(local) * flops_per_element)
    if barrier:
        yield from ctx.barrier()
    return len(local)


def parallel_reduce(
    ctx: ThreadCtx,
    coll: Collection,
    extract: Callable[[Index, Any], float],
    scratch: Collection,
    op: Callable[[Any, Any], Any],
    *,
    initial: float = 0.0,
    flops_per_element: float = 1.0,
) -> Generator[Any, Any, Any]:
    """Reduce ``extract(index, element)`` over the whole collection.

    Local partials accumulate per thread, then combine through
    ``scratch`` (a one-element-per-thread collection) with a tree
    reduction; thread 0 returns the global value, others their partial
    view (use :func:`repro.pcxx.patterns.all_reduce_via_root` semantics
    if every thread needs it).
    """
    from repro.pcxx.patterns import reduce_tree

    partial = initial
    local = ctx.local_indices(coll)
    for index in local:
        partial = op(partial, extract(index, coll._load(index)))
    yield from ctx.compute(len(local) * flops_per_element)
    yield from ctx.put(scratch, ctx.tid, partial)
    result = yield from reduce_tree(ctx, scratch, op)
    return result
