"""Reusable communication patterns over per-thread collections.

pC++ programs express global communication (broadcast, reduction, shifts)
through remote element reads plus barriers.  The benchmark suite shares
these helpers; each operates on a 1-D collection with one element per
thread (index == thread id) and is a generator usable from thread bodies.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.pcxx.collection import Collection
from repro.pcxx.runtime import ThreadCtx


def bcast(
    ctx: ThreadCtx,
    coll: Collection,
    root: int = 0,
    nbytes: int | None = None,
) -> Generator[Any, Any, Any]:
    """Broadcast thread ``root``'s element to every thread.

    Every non-root thread performs one remote read of the root element;
    a barrier before the reads makes sure the root has published its
    value, and one after keeps the phases aligned.  Returns the value.
    """
    yield from ctx.barrier()
    if ctx.tid == root:
        value = yield from ctx.get(coll, root, nbytes=nbytes)
    else:
        value = yield from ctx.get(coll, root, nbytes=nbytes)
    yield from ctx.barrier()
    return value


def reduce_tree(
    ctx: ThreadCtx,
    coll: Collection,
    op: Callable[[Any, Any], Any],
    nbytes: int | None = None,
) -> Generator[Any, Any, Any]:
    """Logarithmic pairwise reduction; the result lands on thread 0.

    Each stage halves the number of active threads: thread t with
    ``t % (2*step) == 0`` reads its partner ``t + step``'s element and
    combines.  Every thread returns the value its element holds at the
    end (thread 0 holds the global result).
    """
    n = ctx.n_threads
    step = 1
    while step < n:
        yield from ctx.barrier()
        if ctx.tid % (2 * step) == 0 and ctx.tid + step < n:
            mine = yield from ctx.get(coll, ctx.tid)
            theirs = yield from ctx.get(coll, ctx.tid + step, nbytes=nbytes)
            yield from ctx.put(coll, ctx.tid, op(mine, theirs))
        step *= 2
    yield from ctx.barrier()
    return (yield from ctx.get(coll, ctx.tid))


def reduce_linear(
    ctx: ThreadCtx,
    coll: Collection,
    op: Callable[[Any, Any], Any],
    nbytes: int | None = None,
) -> Generator[Any, Any, Any]:
    """Right-to-left linear reduction (as Matmul's row summation, §4.2).

    Thread t combines thread t+1's partial into its own, sweeping from
    the right end; n-1 serial stages.  The result lands on thread 0.
    """
    n = ctx.n_threads
    for stage in range(n - 1, 0, -1):
        yield from ctx.barrier()
        if ctx.tid == stage - 1:
            mine = yield from ctx.get(coll, ctx.tid)
            theirs = yield from ctx.get(coll, stage, nbytes=nbytes)
            yield from ctx.put(coll, ctx.tid, op(mine, theirs))
    yield from ctx.barrier()
    return (yield from ctx.get(coll, ctx.tid))


def shift(
    ctx: ThreadCtx,
    coll: Collection,
    offset: int,
    nbytes: int | None = None,
) -> Generator[Any, Any, Any]:
    """Read the element of the thread ``offset`` positions away (cyclic).

    A barrier on each side brackets the exchange so all threads read a
    consistent generation of values.  Returns the neighbour's value.
    """
    n = ctx.n_threads
    partner = (ctx.tid + offset) % n
    yield from ctx.barrier()
    value = yield from ctx.get(coll, partner, nbytes=nbytes)
    yield from ctx.barrier()
    return value


def all_reduce_via_root(
    ctx: ThreadCtx,
    coll: Collection,
    op: Callable[[Any, Any], Any],
    nbytes: int | None = None,
) -> Generator[Any, Any, Any]:
    """Reduce to thread 0, then broadcast the result back to everyone."""
    result = yield from reduce_tree(ctx, coll, op, nbytes=nbytes)
    if ctx.tid == 0:
        yield from ctx.put(coll, 0, result)
    value = yield from bcast(ctx, coll, 0, nbytes=nbytes)
    return value
