"""Extrapolation-safety (race) checking — §5's applicability conditions.

Extrapolation reuses thread traces under the assumption that "the order
of a thread's measured events … [is] unaffected by the remote data
actions of other threads".  That holds when every remote read observes a
value that is *barrier-separated* from its write: if element X is
written in the same barrier epoch in which another thread reads it, the
value read — and potentially the thread's subsequent behaviour — depends
on execution timing, and the 1-processor measurement no longer predicts
the n-processor run.

The tracing runtime can watch for exactly that: per barrier epoch it
records which elements were written and which were read by non-owners,
and flags the intersection.  Programs following the read-phase /
barrier / write-phase discipline (or double buffering) produce no
findings; the paper's §5 "second case" programs do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

Key = Tuple[str, object]  # (collection name, index)


@dataclass(frozen=True)
class RaceFinding:
    """One same-epoch write/read conflict."""

    epoch: int
    collection: str
    index: object
    writer: int
    reader: int

    def describe(self) -> str:
        return (
            f"epoch {self.epoch}: thread {self.reader} reads "
            f"{self.collection}[{self.index}] written by thread "
            f"{self.writer} in the same barrier epoch — the value depends "
            "on execution timing; extrapolation may not be valid"
        )


class RaceChecker:
    """Per-epoch read/write intersection bookkeeping.

    The runtime feeds it writes, remote reads, and barrier crossings;
    epochs are global because barriers are global.  Conflicts are
    detected in both orders (write seen before the read and vice versa)
    since the serialised measurement order is not the parallel order.
    """

    def __init__(self):
        #: epoch -> {key -> first writer thread}
        self._writes: Dict[int, Dict[Key, int]] = {}
        #: epoch -> {key -> set of reader threads}
        self._reads: Dict[int, Dict[Key, Set[int]]] = {}
        self.findings: List[RaceFinding] = []
        self._seen: Set[Tuple[int, Key, int, int]] = set()

    def on_write(self, epoch: int, collection: str, index, thread: int) -> None:
        key: Key = (collection, index)
        self._writes.setdefault(epoch, {}).setdefault(key, thread)
        for reader in self._reads.get(epoch, {}).get(key, ()):
            if reader != thread:
                self._add(epoch, key, writer=thread, reader=reader)

    def on_remote_read(self, epoch: int, collection: str, index, thread: int) -> None:
        key: Key = (collection, index)
        self._reads.setdefault(epoch, {}).setdefault(key, set()).add(thread)
        writer = self._writes.get(epoch, {}).get(key)
        if writer is not None and writer != thread:
            self._add(epoch, key, writer=writer, reader=thread)

    def _add(self, epoch: int, key: Key, *, writer: int, reader: int) -> None:
        sig = (epoch, key, writer, reader)
        if sig in self._seen:
            return
        self._seen.add(sig)
        self.findings.append(
            RaceFinding(
                epoch=epoch,
                collection=key[0],
                index=key[1],
                writer=writer,
                reader=reader,
            )
        )

    def report(self) -> str:
        if not self.findings:
            return "no same-epoch read/write conflicts: extrapolation-safe"
        lines = [f"{len(self.findings)} potential extrapolation hazards:"]
        lines += [f"  - {f.describe()}" for f in self.findings[:20]]
        if len(self.findings) > 20:
            lines.append(f"  ... and {len(self.findings) - 20} more")
        return "\n".join(lines)
