"""The tracing runtime: n threads, 1 virtual processor, event trace out.

This reproduces the paper's modified pC++ runtime system (§3.2):

* all n threads execute on a single processor under a non-preemptive
  scheduler (:mod:`repro.threads`), switching only at barriers;
* elements live in a global space, so remote accesses cost the same as
  local ones and return immediately;
* the runtime records every inter-thread interaction — barrier entry,
  barrier exit, remote element access — as a high-level trace event.

Computation time is charged through an explicit work model: benchmark
threads call :meth:`ThreadCtx.compute` with a flop count, which advances
the shared virtual clock at the trace machine's MFLOPS rating (Sun4 =
1.1360 in the paper).  See DESIGN.md for why this substitution preserves
what extrapolation consumes.

Thread bodies are generator functions receiving a :class:`ThreadCtx`::

    def body(ctx):
        yield from ctx.compute(1000)           # 1000 flops of local work
        v = yield from ctx.get(coll, (r, c))   # maybe-remote element read
        yield from ctx.barrier()               # global barrier
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Sequence

from repro.pcxx.collection import Collection, Index
from repro.threads import Block, Scheduler
from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import Trace, TraceMeta

#: Default trace-machine rating: the paper's Sun4 scalar MFLOPS.
SUN4_MFLOPS = 1.1360

#: CM-5 node scalar MFLOPS (used for MipsRatio presets).
CM5_MFLOPS = 2.7645

ThreadBody = Callable[["ThreadCtx"], Generator[Any, Any, Any]]


class _BarrierState:
    """Book-keeping for one in-flight barrier episode."""

    __slots__ = ("arrived", "waiting")

    def __init__(self):
        self.arrived = 0
        self.waiting: List[int] = []


class TracingRuntime:
    """Runs an n-thread program on one virtual processor, producing a Trace.

    Parameters
    ----------
    n_threads:
        Number of pC++ threads.
    program:
        Program name recorded in trace metadata.
    trace_mflops:
        MFLOPS rating of the (virtual) trace machine; compute phases of
        ``f`` flops advance the clock by ``f / trace_mflops`` microseconds.
    size_mode:
        ``"compiler"`` records every remote access at the whole collection
        element size; ``"actual"`` records the bytes the caller actually
        requested (§4.1's Grid fix).
    event_overhead:
        Virtual time charged per recorded event — models instrumentation
        intrusion; the translation step can compensate for it.
    switch_overhead:
        Virtual time charged per thread switch in the scheduler.
        (Translation needs no special handling: switches happen at
        barrier boundaries, where exit-time snapping absorbs them.)
    flush_every / flush_overhead:
        Every ``flush_every`` recorded events the runtime flushes its
        event buffer, charging ``flush_overhead`` — the other
        measurement intrusion the paper says the translation algorithm
        "is easily modified to handle" (§3.2).  Pass the same values to
        :func:`repro.core.translation.translate` to compensate.
    compute_noise:
        Relative timing noise on compute phases: each compute advance is
        multiplied by a seeded uniform factor in
        ``[1 - noise, 1 + noise]``.  Models the measurement uncertainty
        the paper warns about in §2 ("the uncertainty in performance
        information and its effect on the accuracy of the metric"); the
        noise-sensitivity ablation sweeps it.
    noise_seed:
        Seed for the noise stream (defaults to the library seed).
    problem:
        Free-form problem parameters stored in trace metadata.
    """

    def __init__(
        self,
        n_threads: int,
        program: str = "",
        *,
        trace_mflops: float = SUN4_MFLOPS,
        size_mode: str = "compiler",
        event_overhead: float = 0.0,
        switch_overhead: float = 0.0,
        flush_every: int = 0,
        flush_overhead: float = 0.0,
        compute_noise: float = 0.0,
        noise_seed: Optional[int] = None,
        sink: Optional[Callable[[TraceEvent], None]] = None,
        problem: Optional[Dict[str, Any]] = None,
    ):
        if n_threads < 1:
            raise ValueError(f"need at least 1 thread, got {n_threads}")
        if trace_mflops <= 0:
            raise ValueError(f"trace_mflops must be positive, got {trace_mflops}")
        if size_mode not in ("compiler", "actual"):
            raise ValueError(f"size_mode must be 'compiler' or 'actual', got {size_mode!r}")
        if event_overhead < 0:
            raise ValueError(f"negative event overhead {event_overhead}")
        if flush_every < 0 or flush_overhead < 0:
            raise ValueError("flush parameters must be >= 0")
        self.n_threads = n_threads
        self.size_mode = size_mode
        self.us_per_flop = 1.0 / trace_mflops
        self.event_overhead = float(event_overhead)
        self.flush_every = int(flush_every)
        self.flush_overhead = float(flush_overhead)
        self.flush_count = 0
        if not 0.0 <= compute_noise < 1.0:
            raise ValueError(f"compute_noise must be in [0, 1), got {compute_noise}")
        self.compute_noise = float(compute_noise)
        from repro.util.rng import make_rng

        self._noise_rng = make_rng(noise_seed) if compute_noise else None
        #: optional per-event callback (e.g. a streaming trace writer)
        self._sink = sink
        self.sched = Scheduler(switch_overhead=switch_overhead)
        self.trace = Trace(
            TraceMeta(
                program=program,
                n_threads=n_threads,
                trace_mflops=trace_mflops,
                size_mode=size_mode,
                problem=dict(problem or {}),
            )
        )
        self._barriers: Dict[int, _BarrierState] = {}
        self._finished = False
        from repro.pcxx.races import RaceChecker

        #: §5 applicability watchdog: same-epoch read/write conflicts
        #: mean the trace may not be environment-independent.
        self.races = RaceChecker()

    # -- trace recording ------------------------------------------------------

    def _record(self, event: TraceEvent) -> None:
        self.trace.append(event)
        if self._sink is not None:
            self._sink(event)
        if self.event_overhead:
            self.sched.advance(self.event_overhead)
        if self.flush_every and len(self.trace.events) % self.flush_every == 0:
            self.sched.advance(self.flush_overhead)
            self.flush_count += 1

    @property
    def clock(self) -> float:
        """Current virtual time of the 1-processor run."""
        return self.sched.clock

    # -- execution ------------------------------------------------------------

    def run(self, bodies: Sequence[ThreadBody] | ThreadBody) -> Trace:
        """Execute thread bodies to completion and return the trace.

        ``bodies`` is either one callable applied to every thread or a
        sequence of ``n_threads`` callables.
        """
        if self._finished:
            raise RuntimeError("this runtime has already executed a program")
        if callable(bodies):
            bodies = [bodies] * self.n_threads
        if len(bodies) != self.n_threads:
            raise ValueError(
                f"{len(bodies)} thread bodies for {self.n_threads} threads"
            )
        for tid, body in enumerate(bodies):
            ctx = ThreadCtx(self, tid)
            self.sched.spawn(self._wrap(ctx, body))
        self.sched.run()
        self._finished = True
        # Attach the §5 safety findings to the trace (in-memory only; the
        # file formats carry events, not diagnostics).
        self.trace.race_findings = list(self.races.findings)
        return self.trace

    def _wrap(self, ctx: "ThreadCtx", body: ThreadBody) -> Generator[Any, Any, Any]:
        self._record(TraceEvent(self.clock, ctx.tid, EventKind.THREAD_BEGIN))
        result = yield from body(ctx)
        self._record(TraceEvent(self.clock, ctx.tid, EventKind.THREAD_END))
        return result

    # -- barrier implementation -------------------------------------------------

    def _barrier_enter(self, tid: int, bid: int) -> bool:
        """Record entry; return True if the caller is the last to arrive."""
        self._record(
            TraceEvent(self.clock, tid, EventKind.BARRIER_ENTER, barrier_id=bid)
        )
        st = self._barriers.setdefault(bid, _BarrierState())
        st.arrived += 1
        if st.arrived >= self.n_threads:
            # Last thread in: release everyone (they resume after we yield).
            self.sched.unblock_all(st.waiting)
            del self._barriers[bid]
            return True
        st.waiting.append(tid)
        return False

    def _barrier_exit(self, tid: int, bid: int) -> None:
        self._record(
            TraceEvent(self.clock, tid, EventKind.BARRIER_EXIT, barrier_id=bid)
        )


class ThreadCtx:
    """Per-thread handle to the runtime — the API benchmark code uses.

    All operations are generators so the same benchmark code also runs
    unmodified on the reference machine simulator, where these operations
    genuinely take simulated time.
    """

    def __init__(self, runtime: TracingRuntime, tid: int):
        self.rt = runtime
        self.tid = tid
        self._barrier_seq = 0

    @property
    def n_threads(self) -> int:
        return self.rt.n_threads

    @property
    def now(self) -> float:
        """Current virtual time (microseconds)."""
        return self.rt.clock

    # -- work model ------------------------------------------------------------

    def _noisy(self, duration: float) -> float:
        rng = self.rt._noise_rng
        if rng is None:
            return duration
        eps = self.rt.compute_noise
        return duration * float(rng.uniform(1.0 - eps, 1.0 + eps))

    def compute(self, flops: float) -> Generator[Any, Any, None]:
        """Charge ``flops`` floating-point operations of local computation."""
        if flops < 0:
            raise ValueError(f"negative flop count {flops}")
        self.rt.sched.advance(self._noisy(flops * self.rt.us_per_flop))
        return
        yield  # pragma: no cover - makes this a generator

    def compute_us(self, us: float) -> Generator[Any, Any, None]:
        """Charge ``us`` microseconds of local computation directly."""
        if us < 0:
            raise ValueError(f"negative compute time {us}")
        self.rt.sched.advance(self._noisy(us))
        return
        yield  # pragma: no cover

    # -- element access ----------------------------------------------------------

    def get(
        self, coll: Collection, index: Index, nbytes: int | None = None
    ) -> Generator[Any, Any, Any]:
        """Read a collection element; records REMOTE_READ if not owned.

        ``nbytes`` is the actual number of bytes the caller needs from the
        element; in ``"actual"`` size mode it is what gets recorded (the
        whole element size is recorded otherwise, like the pC++ compiler's
        high-level size information).
        """
        owner = coll.owner(index)
        value = coll._load(index)
        if owner != self.tid:
            self.rt.races.on_remote_read(
                self._barrier_seq, coll.name, index, self.tid
            )
            self.rt._record(
                TraceEvent(
                    self.rt.clock,
                    self.tid,
                    EventKind.REMOTE_READ,
                    owner=owner,
                    nbytes=self._record_size(coll, nbytes),
                    collection=coll.name,
                )
            )
        return value
        yield  # pragma: no cover

    def put(
        self, coll: Collection, index: Index, value: Any, nbytes: int | None = None
    ) -> Generator[Any, Any, None]:
        """Write a collection element; records REMOTE_WRITE if not owned.

        Remote writes are the paper's §5 extension; programs that want the
        deterministic-replay guarantee should only write locally.
        """
        owner = coll.owner(index)
        coll._store(index, value)
        self.rt.races.on_write(self._barrier_seq, coll.name, index, self.tid)
        if owner != self.tid:
            self.rt._record(
                TraceEvent(
                    self.rt.clock,
                    self.tid,
                    EventKind.REMOTE_WRITE,
                    owner=owner,
                    nbytes=self._record_size(coll, nbytes),
                    collection=coll.name,
                )
            )
        return
        yield  # pragma: no cover

    def _record_size(self, coll: Collection, nbytes: int | None) -> int:
        if self.rt.size_mode == "actual" and nbytes is not None:
            if nbytes <= 0:
                raise ValueError(f"actual access size must be positive, got {nbytes}")
            return int(nbytes)
        return coll.element_nbytes

    # -- synchronisation ---------------------------------------------------------

    def barrier(self) -> Generator[Any, Any, None]:
        """Global barrier across all threads.

        Every thread must call barrier the same number of times in the
        same order (the data-parallel execution model guarantees this);
        the k-th barrier of every thread is episode k.
        """
        bid = self._barrier_seq
        self._barrier_seq += 1
        last = self.rt._barrier_enter(self.tid, bid)
        if not last:
            yield Block()
        self.rt._barrier_exit(self.tid, bid)

    # -- annotations ----------------------------------------------------------

    def mark(self, tag: str) -> Generator[Any, Any, None]:
        """Record a user phase marker (no timing-model effect)."""
        self.rt._record(
            TraceEvent(self.rt.clock, self.tid, EventKind.MARK, tag=tag)
        )
        return
        yield  # pragma: no cover

    # -- convenience -------------------------------------------------------------

    def local_indices(self, coll: Collection) -> List[Index]:
        """Indices of ``coll`` owned by this thread."""
        return coll.local_indices(self.tid)
