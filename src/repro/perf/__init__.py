"""Engine observability: counters, phase timers, benchmark harness.

The PPT-Multicore lesson (Barai et al.) is that an analytical or
simulation-based predictor is only trusted at scale when it can report
on itself cheaply.  This package holds the pieces:

* :class:`EngineCounters` — event-loop counters the DES engine fills in
  when :meth:`~repro.des.Environment.enable_profiling` is on;
* :class:`PhaseTimer` / :class:`PhaseRecord` — wall + simulated time
  per named phase;
* :class:`SimulationProfile` — the bundle exported as
  ``SimulationResult.profile`` by ``Simulator(..., profile=True)``;
* :class:`SweepCounters` — cache hit/miss and throughput accounting
  filled by the design-space sweep executor (:mod:`repro.sweep`);
* :mod:`repro.perf.bench` — the seeded benchmark harness behind
  ``BENCH_engine.json`` (imported explicitly, not re-exported, so this
  package stays import-light for the engine).
"""

from repro.perf.counters import EngineCounters, SweepCounters
from repro.perf.profile import SimulationProfile
from repro.perf.timers import PhaseRecord, PhaseTimer

__all__ = [
    "EngineCounters",
    "PhaseRecord",
    "PhaseTimer",
    "SimulationProfile",
    "SweepCounters",
]
