"""Engine benchmark harness: the perf trajectory behind ``BENCH_engine.json``.

Six seeded reference workloads exercise the layers of the hot path:

* ``timeout_chain`` — the pure event loop (Timeout-only, the
  ``run_batched`` fast-path case);
* ``pingpong`` — processes + stores (get/put/timeout churn);
* ``simulator`` — a full trace-driven replay (8 processors, the
  distributed-memory preset) through :class:`repro.sim.Simulator`;
* ``sweep`` — a cold-then-warm design-space sweep through
  :func:`repro.sweep.run_sweep` (points/s plus warm-cache hit rate);
* ``serve`` — warm-cache ``POST /v1/predict`` requests against an
  in-process :mod:`repro.serve` server (memoized requests/s over HTTP);
* ``diagnose`` — repeated :func:`repro.diagnose.diagnose` passes over
  one observed replay's timeline (spans scanned/s through the
  per-processor span index);
* ``sampling`` — SimPoint-style sampled extrapolation vs the full
  simulation of one matmul trace (speedup × relative error through
  :func:`repro.sampling.estimate_sampled`).

:func:`run_benchmarks` times each (best of N repeats) and
:func:`write_baseline` persists the result as ``BENCH_engine.json`` so
future changes have a committed trajectory to regress against (see
``tests/test_perf_smoke.py``).  Run it via ``extrap bench`` or
``python -m repro.perf.bench``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict

from repro.util.atomic import atomic_write_text

SCHEMA_VERSION = 1

#: Default baseline location: the repository/working-directory root.
DEFAULT_BASELINE = "BENCH_engine.json"


# -- reference workloads ---------------------------------------------------


def timeout_chain(n: int = 20_000) -> int:
    """One process sleeping ``n`` times: the Timeout-only fast path."""
    from repro.des import Environment

    env = Environment()

    def sleeper(env):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(sleeper(env))
    env.run_batched()
    return env.processed_event_count


def pingpong(rounds: int = 5_000) -> int:
    """Two processes bouncing a token through stores."""
    from repro.des import Environment, Store

    env = Environment()

    def ping(env, store_in, store_out, n):
        for _ in range(n):
            yield store_in.get()
            yield env.timeout(1.0)
            yield store_out.put(None)

    a, b = Store(env), Store(env)
    env.process(ping(env, a, b, rounds))
    env.process(ping(env, b, a, rounds))
    a.put(None)
    env.run(None)
    return env.processed_event_count


def simulator_replay(n_threads: int = 8, iters: int = 6) -> int:
    """A full extrapolation replay on the distributed-memory preset."""
    from repro.core import presets
    from repro.core.pipeline import measure
    from repro.core.translation import translate
    from repro.pcxx import Collection, make_distribution
    from repro.sim.simulator import Simulator

    def program(rt):
        n = rt.n_threads
        coll = Collection(
            "c", make_distribution(n, n, "block"), element_nbytes=64
        )
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            for it in range(iters):
                yield from ctx.compute_us(100.0 * ((ctx.tid + it) % 3 + 1))
                yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
                yield from ctx.barrier()

        return body

    tp = translate(measure(program, n_threads, name="bench"))
    sim = Simulator(tp, presets.distributed_memory())
    sim.run()
    return sim.env.processed_event_count


def sweep_points(n_points: int = 8) -> dict:
    """A sweep run cold then warm: executor throughput + cache hit rate.

    Counts one "event" per evaluated point (cold pass executes, warm
    pass should be all cache hits), so events/s is sweep points/s.
    """
    import tempfile

    from repro.bench.suite import get_benchmark
    from repro.core.pipeline import measure
    from repro.sweep import ResultCache, SweepSpec, run_sweep

    info = get_benchmark("embar")
    trace = measure(info.make_program()(4), 4, name="embar")
    spec = SweepSpec.from_dict(
        {
            "name": "bench",
            "preset": "cm5",
            "grid": {
                "network.hop_time": [0.25 * (i + 1) for i in range(n_points)]
            },
        }
    )
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        run_sweep(spec, trace=trace, cache=cache)
        warm = run_sweep(spec, trace=trace, cache=cache)
    return {
        "events": 2 * len(spec),
        "cache_hit_rate": warm.counters.hit_rate,
    }


def serve_requests(n_requests: int = 32) -> dict:
    """The serve API's hot path: warm-cache predicts over real HTTP.

    One in-process :class:`~repro.serve.http.ExtrapServer` on an
    ephemeral loopback port; the first request populates the result
    cache and the timed loop replays it, so events/s is memoized
    requests/s end-to-end (HTTP parse, validation, cache lookup, JSON
    response).
    """
    import http.client
    import tempfile

    from repro.bench.suite import get_benchmark
    from repro.core.pipeline import measure
    from repro.serve import ExtrapService, start_server
    from repro.sweep import ResultCache
    from repro.trace import write_trace

    info = get_benchmark("embar")
    trace = measure(info.make_program()(4), 4, name="embar")
    body = json.dumps({"trace_path": "t.jsonl", "preset": "cm5"})
    with tempfile.TemporaryDirectory() as tmp:
        write_trace(trace, Path(tmp) / "t.jsonl")
        service = ExtrapService(trace_root=tmp, cache=ResultCache(Path(tmp) / "c"))
        server, thread = start_server(service, port=0)
        try:
            conn = http.client.HTTPConnection("127.0.0.1", server.port)
            warm_hit_latency = float("inf")
            for _ in range(n_requests):
                t0 = time.perf_counter()
                conn.request("POST", "/v1/predict", body=body)
                resp = conn.getresponse()
                payload = resp.read()
                if resp.status != 200:
                    raise RuntimeError(f"predict failed: {resp.status} {payload!r}")
                warm_hit_latency = min(
                    warm_hit_latency, time.perf_counter() - t0
                )
            conn.close()
            hits, misses = service.cache.hits, service.cache.misses
        finally:
            server.shutdown()
            thread.join()
            server.close(drain=False)
    return {
        "events": n_requests,
        "cache_hit_rate": hits / (hits + misses),
        "warm_hit_latency_s": warm_hit_latency,
    }


def diagnose_passes(n_passes: int = 32) -> dict:
    """Repeated diagnosis of one observed replay's timeline.

    Builds the timeline once (a 16-processor ``cyclic`` replay with
    ``observe=True``), then runs the full detector catalog ``n_passes``
    times; events/s is timeline spans scanned per second, which is what
    the per-processor span index precomputed at ``finalize()`` feeds.
    """
    from repro.bench.suite import get_benchmark
    from repro.core import presets
    from repro.core.pipeline import extrapolate, measure
    from repro.diagnose import diagnose

    info = get_benchmark("cyclic")
    trace = measure(info.make_program()(16), 16, name="cyclic")
    outcome = extrapolate(trace, presets.distributed_memory(), observe=True)
    timeline = outcome.result.timeline
    n_findings = 0
    for _ in range(n_passes):
        n_findings = len(diagnose(timeline).findings)
    return {
        "events": n_passes * len(timeline.spans),
        "findings": n_findings,
    }


def sampling_estimate(n_threads: int = 8) -> dict:
    """Sampled vs full extrapolation of one matmul trace.

    Times one full simulation and one sampled estimate of the same
    trace inside the workload body, so ``best_s`` covers both and the
    record carries the interesting ratios: ``speedup`` (full simulation
    seconds / sampled estimate seconds, clustering included) and
    ``rel_error`` (sampled vs full predicted time).  Events/s counts
    the trace events covered by the pair of runs.
    """
    from repro.bench.suite import get_benchmark
    from repro.core import presets
    from repro.core.pipeline import extrapolate, measure
    from repro.sampling import SamplingConfig, estimate_sampled

    trace = measure(
        get_benchmark("matmul").make_program()(n_threads),
        n_threads,
        name="matmul",
    )
    params = presets.distributed_memory()
    t0 = time.perf_counter()
    full = extrapolate(trace, params)
    full_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    sampled = estimate_sampled(trace, params, SamplingConfig(seed=0))
    sampled_s = time.perf_counter() - t0
    rel_error = (
        abs(sampled.predicted_time - full.predicted_time) / full.predicted_time
        if full.predicted_time
        else 0.0
    )
    return {
        "events": 2 * len(trace.events),
        "speedup": full_s / sampled_s if sampled_s > 0 else None,
        "rel_error": rel_error,
        "events_simulated": sampled.events_simulated,
        "events_total": len(trace.events),
    }


#: name -> (workload(scaled_size) -> processed event count, base size).
#: A workload may instead return a dict with an ``"events"`` key plus
#: extra metrics to merge into its results record.
WORKLOADS: Dict[str, tuple] = {
    "timeout_chain": (timeout_chain, 20_000),
    "pingpong": (pingpong, 5_000),
    "simulator": (simulator_replay, 8),
    "sweep": (sweep_points, 8),
    "serve": (serve_requests, 32),
    "diagnose": (diagnose_passes, 32),
    "sampling": (sampling_estimate, 16),
}


# -- harness ----------------------------------------------------------------


def run_benchmarks(
    *, scale: float = 1.0, repeats: int = 3, workloads=None
) -> dict:
    """Time every workload; best-of-``repeats`` wall time per workload.

    ``scale`` shrinks the per-workload problem size (events scale with
    it for the micro workloads; the simulator workload keeps its shape).
    Returns a JSON-serialisable result dict.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    results: Dict[str, dict] = {}
    selected = WORKLOADS if workloads is None else {
        name: WORKLOADS[name] for name in workloads
    }
    # These keep their shape under --scale: the simulator replay's
    # structure is its workload, and the sweep/serve fixed overhead
    # (trace measurement, the cold first request) would otherwise
    # dominate at small sizes.
    fixed_shape = ("simulator", "sweep", "serve", "diagnose", "sampling")
    for name, (fn, base_size) in selected.items():
        size = base_size if name in fixed_shape else max(1, int(base_size * scale))
        fn(size)  # warm-up run (imports, allocator)
        best = float("inf")
        out = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = fn(size)
            best = min(best, time.perf_counter() - t0)
        if isinstance(out, dict):
            events = out["events"]
            extras = {k: v for k, v in out.items() if k != "events"}
        else:
            events, extras = out, {}
        results[name] = {
            "size": size,
            "events": events,
            "best_s": best,
            "events_per_s": events / best if best > 0 else None,
            **extras,
        }
    return {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "scale": scale,
        "repeats": repeats,
        "workloads": results,
    }


def write_baseline(results: dict, path: str | Path = DEFAULT_BASELINE) -> Path:
    """Persist a benchmark result as the committed baseline."""
    path = Path(path)
    atomic_write_text(path, json.dumps(results, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: str | Path = DEFAULT_BASELINE) -> dict:
    """Load a committed baseline; raises FileNotFoundError if absent."""
    path = Path(path)
    data = json.loads(path.read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported benchmark schema {data.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return data


def format_results(results: dict, baseline: dict | None = None) -> str:
    """Human-readable table, optionally with speedup vs. a baseline."""
    lines = ["engine benchmarks (best of %d):" % results.get("repeats", 1)]
    base_wl = (baseline or {}).get("workloads", {})
    for name, r in results["workloads"].items():
        rate = r["events_per_s"]
        line = (
            f"  {name:14s} {r['events']:>8d} events  "
            f"{r['best_s'] * 1e3:8.2f} ms  {rate:>12,.0f} events/s"
        )
        ref = base_wl.get(name, {}).get("events_per_s")
        if ref:
            line += f"  ({rate / ref:.2f}x baseline)"
        if "cache_hit_rate" in r:
            line += f"  [warm hit rate {r['cache_hit_rate']:.0%}]"
        if "speedup" in r and r["speedup"] is not None:
            line += (
                f"  [sampled {r['speedup']:.1f}x faster, "
                f"rel err {r['rel_error']:.2%}]"
            )
        lines.append(line)
    return "\n".join(lines)


def main(argv=None) -> int:  # pragma: no cover - thin CLI shim
    import argparse

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("-o", "--output", default=None, help="write baseline JSON here")
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    args = ap.parse_args(argv)
    results = run_benchmarks(scale=args.scale, repeats=args.repeats)
    try:
        baseline = load_baseline(args.baseline)
    except (FileNotFoundError, ValueError):
        baseline = None
    print(format_results(results, baseline))
    if args.output:
        print(f"wrote {write_baseline(results, args.output)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
