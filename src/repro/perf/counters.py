"""Engine-level instrumentation counters.

:class:`EngineCounters` is the cheap always-additive counter block the
DES engine fills in when profiling is enabled
(:meth:`repro.des.Environment.enable_profiling`).  It deliberately has
no dependencies on the rest of the library so the engine can import it
without layering cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class EngineCounters:
    """Counters maintained by the event loop while profiling is on.

    Attributes
    ----------
    events_total:
        Events processed (same quantity as
        :attr:`~repro.des.Environment.processed_event_count`, but only
        counted while profiling was enabled).
    events_by_type:
        Processed-event histogram keyed by event class name
        (``Timeout``, ``StoreGet``, ``Process``, ...).
    callbacks_fired:
        Total callbacks invoked by event processing.
    scheduled_total:
        Events pushed onto the heap while profiling was enabled.
    heap_peak:
        Largest event-queue length observed.
    """

    events_total: int = 0
    events_by_type: Dict[str, int] = field(default_factory=dict)
    callbacks_fired: int = 0
    scheduled_total: int = 0
    heap_peak: int = 0

    def count(self, event) -> None:
        """Record one processed event (called by the engine loop)."""
        self.events_total += 1
        name = type(event).__name__
        by_type = self.events_by_type
        by_type[name] = by_type.get(name, 0) + 1
        self.callbacks_fired += len(event.callbacks)

    def as_dict(self) -> dict:
        """JSON-serialisable snapshot."""
        return {
            "events_total": self.events_total,
            "events_by_type": dict(
                sorted(self.events_by_type.items(), key=lambda kv: -kv[1])
            ),
            "callbacks_fired": self.callbacks_fired,
            "scheduled_total": self.scheduled_total,
            "heap_peak": self.heap_peak,
        }

    def format(self) -> str:
        """Short text block for reports."""
        lines = [
            f"engine counters: {self.events_total} events processed, "
            f"{self.callbacks_fired} callbacks, heap peak {self.heap_peak}",
        ]
        for name, count in sorted(
            self.events_by_type.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {name:16s} {count}")
        return "\n".join(lines)
