"""Engine-level instrumentation counters.

:class:`EngineCounters` is the cheap always-additive counter block the
DES engine fills in when profiling is enabled
(:meth:`repro.des.Environment.enable_profiling`).  It deliberately has
no dependencies on the rest of the library so the engine can import it
without layering cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class EngineCounters:
    """Counters maintained by the event loop while profiling is on.

    Attributes
    ----------
    events_total:
        Events processed (same quantity as
        :attr:`~repro.des.Environment.processed_event_count`, but only
        counted while profiling was enabled).
    events_by_type:
        Processed-event histogram keyed by event class name
        (``Timeout``, ``StoreGet``, ``Process``, ...).
    callbacks_fired:
        Total callbacks invoked by event processing.
    scheduled_total:
        Events pushed onto the heap while profiling was enabled.
    heap_peak:
        Largest event-queue length observed.
    """

    events_total: int = 0
    events_by_type: Dict[str, int] = field(default_factory=dict)
    callbacks_fired: int = 0
    scheduled_total: int = 0
    heap_peak: int = 0

    def count(self, event) -> None:
        """Record one processed event (called by the engine loop)."""
        self.events_total += 1
        name = type(event).__name__
        by_type = self.events_by_type
        by_type[name] = by_type.get(name, 0) + 1
        self.callbacks_fired += len(event.callbacks)

    def as_dict(self) -> dict:
        """JSON-serialisable snapshot."""
        return {
            "events_total": self.events_total,
            "events_by_type": dict(
                sorted(self.events_by_type.items(), key=lambda kv: -kv[1])
            ),
            "callbacks_fired": self.callbacks_fired,
            "scheduled_total": self.scheduled_total,
            "heap_peak": self.heap_peak,
        }

    def format(self) -> str:
        """Short text block for reports."""
        lines = [
            f"engine counters: {self.events_total} events processed, "
            f"{self.callbacks_fired} callbacks, heap peak {self.heap_peak}",
        ]
        for name, count in sorted(
            self.events_by_type.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {name:16s} {count}")
        return "\n".join(lines)


@dataclass
class SweepCounters:
    """Throughput and cache accounting for one sweep run.

    Filled by :func:`repro.sweep.executor.run_sweep`: how many points
    the spec expanded to, how the cache answered, how many actually
    executed (including watchdog-triggered retries), and the wall time.
    Everything here is observability — none of it participates in the
    sweep's result artifact, which must stay byte-identical across
    ``--jobs`` settings and cache states.
    """

    points_total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    retried: int = 0
    failed: int = 0
    wall_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Cache hit fraction over all lookups (0.0 with caching off)."""
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    @property
    def points_per_s(self) -> float:
        """End-to-end sweep throughput (cached points included)."""
        return self.points_total / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict:
        """JSON-serialisable snapshot."""
        return {
            "points_total": self.points_total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executed": self.executed,
            "retried": self.retried,
            "failed": self.failed,
            "wall_s": self.wall_s,
            "hit_rate": self.hit_rate,
            "points_per_s": self.points_per_s,
        }

    def format(self) -> str:
        """One-line summary for CLI output."""
        line = (
            f"cache: {self.cache_hits} hits, {self.cache_misses} misses "
            f"({self.hit_rate:.0%} hit rate)"
        )
        if self.failed:
            line += f"; {self.failed} points FAILED"
        return line
