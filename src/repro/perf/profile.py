"""The simulation profile bundle exported on :class:`SimulationResult`.

A :class:`SimulationProfile` is what ``Simulator(..., profile=True)``
attaches to its result: the engine's counters, the per-phase timers,
and headline throughput numbers.  It is JSON-serialisable so the CLI
and the benchmark harness can persist it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.perf.counters import EngineCounters
from repro.perf.timers import PhaseTimer


@dataclass
class SimulationProfile:
    """Engine observability for one simulation run."""

    counters: EngineCounters = field(default_factory=EngineCounters)
    timers: PhaseTimer = field(default_factory=PhaseTimer)
    wall_time_s: float = 0.0
    sim_time_us: float = 0.0

    @property
    def events_per_second(self) -> Optional[float]:
        """Host-side event throughput, or None for a zero-length run."""
        if self.wall_time_s <= 0:
            return None
        return self.counters.events_total / self.wall_time_s

    def as_dict(self) -> dict:
        rate = self.events_per_second
        return {
            "wall_time_s": self.wall_time_s,
            "sim_time_us": self.sim_time_us,
            "events_per_second": rate,
            "counters": self.counters.as_dict(),
            "phases": self.timers.as_dict(),
        }

    def format(self) -> str:
        """Multi-line text block for the CLI / debugging report."""
        rate = self.events_per_second
        head = (
            f"simulation profile: {self.wall_time_s * 1e3:.1f} ms wall for "
            f"{self.sim_time_us:.1f} us simulated"
        )
        if rate is not None:
            head += f" ({rate:,.0f} events/s)"
        return "\n".join([head, self.counters.format(), self.timers.format()])
