"""Per-phase wall-clock / simulated-time timers.

:class:`PhaseTimer` measures named phases of a simulation run on two
clocks at once: host wall time (``time.perf_counter``) and simulated
time (``env.now``), so a profile can say both "the replay took 80 ms of
CPU" and "it covered 26 ms of simulated execution".
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.engine import Environment


@dataclass
class PhaseRecord:
    """Accumulated timings for one named phase."""

    wall_s: float = 0.0
    sim_us: float = 0.0
    count: int = 0

    def as_dict(self) -> dict:
        return {"wall_s": self.wall_s, "sim_us": self.sim_us, "count": self.count}


@dataclass
class PhaseTimer:
    """Accumulates wall/sim time per named phase.

    Usage::

        timer = PhaseTimer(env)
        with timer.phase("replay"):
            env.run_batched(done)
    """

    env: Optional["Environment"] = None
    phases: Dict[str, PhaseRecord] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseRecord]:
        rec = self.phases.setdefault(name, PhaseRecord())
        wall0 = time.perf_counter()
        sim0 = self.env.now if self.env is not None else 0.0
        try:
            yield rec
        finally:
            rec.wall_s += time.perf_counter() - wall0
            if self.env is not None:
                rec.sim_us += self.env.now - sim0
            rec.count += 1

    @property
    def total_wall_s(self) -> float:
        return sum(rec.wall_s for rec in self.phases.values())

    def as_dict(self) -> dict:
        return {name: rec.as_dict() for name, rec in self.phases.items()}

    def format(self) -> str:
        """Short text block for reports."""
        if not self.phases:
            return "phase timers: (none)"
        lines = ["phase timers (wall ms / sim us):"]
        for name, rec in self.phases.items():
            lines.append(
                f"  {name:10s} {rec.wall_s * 1e3:9.2f} ms  {rec.sim_us:12.1f} us"
            )
        return "\n".join(lines)
