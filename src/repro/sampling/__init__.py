"""SimPoint-style sampled simulation.

Whole-trace simulation pays for every event; most parallel programs
spend that budget re-simulating near-identical iterations.  This
subsystem splits a trace into barrier-delimited (or fixed-event-count)
intervals, clusters the intervals by an event-signature vector with a
deterministic seeded k-means, simulates only each cluster's *medoid*
interval, and reconstitutes whole-run metrics as the cluster-weighted
combination — with per-metric error bars derived from how tightly each
cluster packs around its representative.

The result is a :class:`repro.sim.result.SimulationResult` marked
``estimated=True`` whose ``sampling`` attribute carries the full plan,
so estimates are never mistaken for exact simulations anywhere
downstream (CLI, sweep cache, serve API).

Submodules:

* :mod:`repro.sampling.config`    — :class:`SamplingConfig` knobs
* :mod:`repro.sampling.intervals` — interval splitting + signatures
* :mod:`repro.sampling.cluster`   — seeded k-means, BIC-style k choice,
  medoids, :class:`SamplingPlan`
* :mod:`repro.sampling.estimate`  — representative simulation and
  weighted reconstitution
"""

from repro.sampling.config import SamplingConfig
from repro.sampling.cluster import PhaseCluster, SamplingPlan, build_plan
from repro.sampling.estimate import (
    SampledOutcome,
    estimate_sampled,
    plan_report,
    representative_trace,
    sample_report,
    sampling_section,
)
from repro.sampling.intervals import (
    Interval,
    IntervalSplit,
    split_file,
    split_trace,
)

__all__ = [
    "SamplingConfig",
    "Interval",
    "IntervalSplit",
    "split_file",
    "split_trace",
    "PhaseCluster",
    "SamplingPlan",
    "build_plan",
    "SampledOutcome",
    "estimate_sampled",
    "plan_report",
    "representative_trace",
    "sample_report",
    "sampling_section",
]
