"""Phase clustering: seeded, weighted k-means over interval signatures.

Stdlib-only and fully deterministic: k-means++ initialisation draws
from ``random.Random(seed)`` (several restarts per candidate k, lowest
RSS wins), Lloyd iterations break ties by lowest index, and the number
of clusters is chosen by a BIC-style score — the same shape SimPoint
uses to stop adding phases once extra clusters stop paying for their
parameters.

After the BIC pick, clusters whose members straggle too far from their
representative (spread above :data:`_SPLIT_SPREAD`) are bisected until
every phase is tight or ``max_phases`` is exhausted — BIC optimises
global fit, but reconstitution error is per-cluster, so one lumped
heterogeneous phase (e.g. a multigrid V-cycle's coarse-level giants
pooled with fine-level slivers) can dominate the estimate even when the
overall RSS looks fine.

Each cluster is represented by its *medoid* — the member interval
closest to the centroid — because a medoid is a real interval that can
be simulated.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sampling.config import SamplingConfig
from repro.sampling.intervals import IntervalSplit

_EPS = 1e-12

#: Noise floor for the BIC variance estimate, as a fraction of the
#: normalised feature range: signature differences below this are treated
#: as measurement noise and never justify an extra phase.
_NOISE_FLOOR = 0.03

#: k-means restarts per candidate k (deterministic seeds derived from
#: the config seed); the lowest-RSS run wins.
_RESTARTS = 5

#: Spread threshold above which a cluster is bisected (normalised
#: signature-space distance).  Deliberately tight: max-abs
#: normalisation squashes within-cluster variation for dimensions with
#: a large global range, so even a small spread can hide a several-fold
#: difference in simulated time.  Splitting is bounded by ``max_phases``
#: either way.
_SPLIT_SPREAD = 0.02


@dataclass(frozen=True)
class PhaseCluster:
    """One program phase: a set of similar intervals.

    ``weight`` (= member count) is the multiplier applied to the
    representative's simulated metrics during reconstitution; ``spread``
    is the mean distance of members to the representative in normalised
    signature space — 0 for a perfectly homogeneous phase — and drives
    the error bars.
    """

    representative: int
    members: Tuple[int, ...]
    weight: int
    spread: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "representative": self.representative,
            "members": list(self.members),
            "weight": self.weight,
            "spread": self.spread,
        }


@dataclass
class SamplingPlan:
    """Complete, reproducible description of one sampling decision."""

    mode: str
    interval_events: int
    max_phases: int
    seed: int
    n_intervals: int
    events_total: int
    k: int
    clusters: List[PhaseCluster]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "interval_events": self.interval_events,
            "max_phases": self.max_phases,
            "seed": self.seed,
            "n_intervals": self.n_intervals,
            "events_total": self.events_total,
            "k": self.k,
            "clusters": [c.to_dict() for c in self.clusters],
        }


def normalize(vectors: Sequence[Sequence[float]]) -> List[Tuple[float, ...]]:
    """Scale each dimension by its max absolute value (into [-1, 1]).

    Keeps byte counts from drowning out event counts in the distance
    metric.  Deterministic; all-zero dimensions stay zero.
    """
    if not vectors:
        return []
    d = len(vectors[0])
    scale = [0.0] * d
    for v in vectors:
        for j in range(d):
            a = abs(v[j])
            if a > scale[j]:
                scale[j] = a
    return [
        tuple(v[j] / scale[j] if scale[j] > 0 else 0.0 for j in range(d))
        for v in vectors
    ]


def _dist2(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((x - y) * (x - y) for x, y in zip(a, b))


def kmeans(
    points: Sequence[Tuple[float, ...]],
    k: int,
    seed: int,
    *,
    weights: Optional[Sequence[float]] = None,
    max_iter: int = 64,
) -> Tuple[List[int], List[Tuple[float, ...]], float]:
    """Deterministic seeded (weighted) k-means: ``(labels, centroids, rss)``.

    k-means++ initialisation (candidate probability proportional to
    ``weight * D^2``), Lloyd iterations until labels stabilise (or
    ``max_iter``), nearest-centroid ties broken by lowest centroid
    index.  Centroids are weighted means and ``rss`` is the weighted sum
    of squared distances.  Clusters may come back empty for pathological
    inputs; the caller drops them.
    """
    n = len(points)
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range 1..{n}")
    w = list(weights) if weights is not None else [1.0] * n
    if len(w) != n:
        raise ValueError(f"{len(w)} weights for {n} points")
    rng = random.Random(seed)

    # k-means++ seeding.
    centroids: List[Tuple[float, ...]] = [points[rng.randrange(n)]]
    d2 = [wi * _dist2(p, centroids[0]) for wi, p in zip(w, points)]
    while len(centroids) < k:
        total = sum(d2)
        if total <= _EPS:
            # All remaining points coincide with a centroid; fill with
            # the first point not already chosen (deterministic).
            picked = 0
            for i, p in enumerate(points):
                if p not in centroids:
                    picked = i
                    break
            centroids.append(points[picked])
        else:
            r = rng.random() * total
            acc = 0.0
            pick = n - 1
            for i, wd in enumerate(d2):
                acc += wd
                if acc >= r:
                    pick = i
                    break
            centroids.append(points[pick])
        d2 = [
            min(old, wi * _dist2(p, centroids[-1]))
            for old, wi, p in zip(d2, w, points)
        ]

    labels = [0] * n
    for _ in range(max_iter):
        changed = False
        for i, p in enumerate(points):
            best, best_d = 0, _dist2(p, centroids[0])
            for c in range(1, len(centroids)):
                dd = _dist2(p, centroids[c])
                if dd < best_d - _EPS:
                    best, best_d = c, dd
            if labels[i] != best:
                labels[i] = best
                changed = True
        # Recompute centroids as weighted member means; empty clusters
        # keep their previous centroid (and are dropped by the caller if
        # they stay empty).
        sums = [[0.0] * len(points[0]) for _ in centroids]
        totals = [0.0] * len(centroids)
        for i, p in enumerate(points):
            totals[labels[i]] += w[i]
            row = sums[labels[i]]
            for j, x in enumerate(p):
                row[j] += w[i] * x
        centroids = [
            tuple(x / totals[c] for x in sums[c])
            if totals[c] > 0
            else centroids[c]
            for c in range(len(centroids))
        ]
        if not changed:
            break

    rss = sum(
        w[i] * _dist2(p, centroids[labels[i]]) for i, p in enumerate(points)
    )
    return labels, centroids, rss


def _bic_score(n: int, d: int, k: int, rss: float) -> float:
    # Spherical-Gaussian BIC, lower is better:
    #   -2 ln L ~ n·d·ln(σ²),  penalty = (k·d params)·ln n,
    # with σ² floored at _NOISE_FLOOR² so rss → 0 cannot buy unbounded
    # likelihood and k collapses to the coarsest phase structure that
    # explains the intervals to within the floor.
    mse = rss / (n * d) + _NOISE_FLOOR * _NOISE_FLOOR
    return n * d * math.log(mse) + k * d * math.log(max(n, 2))


def _best_kmeans(
    vectors: List[Tuple[float, ...]], k: int, seed: int
) -> Tuple[List[int], List[Tuple[float, ...]], float]:
    """Lowest-RSS run over :data:`_RESTARTS` deterministic restarts.

    k-means++ alone can land in a poor local optimum that lumps very
    different intervals into one phase.
    """
    run = None
    for restart in range(_RESTARTS):
        labels, centroids, rss = kmeans(vectors, k, seed * _RESTARTS + restart)
        if run is None or rss < run[2] - _EPS:
            run = (labels, centroids, rss)
    assert run is not None
    return run


def _make_cluster(
    members: List[int],
    vectors: List[Tuple[float, ...]],
    centroid: Tuple[float, ...],
) -> PhaseCluster:
    # Medoid: member closest to the centroid, ties to lowest index.
    medoid = min(members, key=lambda i: (_dist2(vectors[i], centroid), i))
    spread = sum(
        math.sqrt(_dist2(vectors[i], vectors[medoid])) for i in members
    ) / len(members)
    return PhaseCluster(
        representative=medoid,
        members=tuple(sorted(members)),
        weight=len(members),
        spread=spread,
    )


def _centroid(members: List[int], vectors: List[Tuple[float, ...]]):
    d = len(vectors[0])
    acc = [0.0] * d
    for i in members:
        for j, x in enumerate(vectors[i]):
            acc[j] += x
    return tuple(x / len(members) for x in acc)


def build_plan(split: IntervalSplit, config: SamplingConfig) -> SamplingPlan:
    """Cluster a split's intervals into a :class:`SamplingPlan`."""
    intervals = split.intervals
    if not intervals:
        raise ValueError("cannot build a sampling plan for an empty trace")
    vectors = normalize([iv.signature for iv in intervals])
    n = len(vectors)
    d = len(vectors[0])
    k_cap = min(config.max_phases, n)

    best: Tuple[float, int, List[int], List[Tuple[float, ...]]] | None = None
    for k in range(1, k_cap + 1):
        labels, centroids, rss = _best_kmeans(vectors, k, config.seed)
        score = _bic_score(n, d, k, rss)
        if best is None or score < best[0] - 1e-9:
            best = (score, k, labels, centroids)
    assert best is not None
    _, k, labels, centroids = best

    clusters: List[PhaseCluster] = []
    for c in range(k):
        members = [i for i in range(n) if labels[i] == c]
        if members:
            clusters.append(_make_cluster(members, vectors, centroids[c]))

    # Refinement: BIC optimises global fit, but estimation error is
    # per-cluster — bisect the loosest phase until every spread is under
    # the threshold or the phase budget is spent.
    while len(clusters) < k_cap:
        loose = max(
            (c for c in clusters if len(c.members) > 1 and c.spread > _SPLIT_SPREAD),
            key=lambda c: (c.spread, -c.representative),
            default=None,
        )
        if loose is None:
            break
        members = list(loose.members)
        sub_vectors = [vectors[i] for i in members]
        sub_labels, sub_centroids, _ = _best_kmeans(sub_vectors, 2, config.seed)
        halves = [
            [members[j] for j in range(len(members)) if sub_labels[j] == h]
            for h in (0, 1)
        ]
        if not halves[0] or not halves[1]:
            break  # refused to split; avoid looping forever
        clusters.remove(loose)
        for half in halves:
            clusters.append(
                _make_cluster(half, vectors, _centroid(half, vectors))
            )

    clusters.sort(key=lambda c: c.representative)

    return SamplingPlan(
        mode=split.mode,
        interval_events=split.interval_events,
        max_phases=config.max_phases,
        seed=config.seed,
        n_intervals=n,
        events_total=split.events_total,
        k=len(clusters),
        clusters=clusters,
    )
