"""Sampling knobs.

:class:`SamplingConfig` is the complete, canonicalisable description of
a sampling run: it is hashed into sweep/serve cache keys (so sampled
and full results can never collide) and round-trips through the
``"sample"`` field of serve's ``POST /v1/predict``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

#: Interval-splitting modes.  ``auto`` uses barrier-delimited intervals
#: when the trace has barriers and falls back to fixed-event-count
#: chunks otherwise.
MODES = ("auto", "barrier", "events")

#: Fixed-event-count chunk size used in events mode when
#: ``interval_events`` is 0 (= auto).
DEFAULT_INTERVAL_EVENTS = 2048

_KEYS = ("interval_events", "max_phases", "mode", "seed")


@dataclass(frozen=True)
class SamplingConfig:
    """How to split, cluster, and sample a trace.

    Attributes
    ----------
    max_phases:
        Upper bound on the number of clusters (the ``k`` chosen by the
        BIC-style score never exceeds it).
    interval_events:
        Events per interval in ``events`` mode; 0 picks
        :data:`DEFAULT_INTERVAL_EVENTS`.  Ignored in ``barrier`` mode.
    seed:
        Seed for the k-means initialisation.  The whole pipeline is
        byte-deterministic for a fixed seed.
    mode:
        One of :data:`MODES`.
    """

    max_phases: int = 8
    interval_events: int = 0
    seed: int = 0
    mode: str = "auto"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown sampling mode {self.mode!r}; expected one of "
                + ", ".join(MODES)
            )
        if self.max_phases < 1:
            raise ValueError(f"max_phases must be >= 1, got {self.max_phases}")
        if self.interval_events < 0:
            raise ValueError(
                f"interval_events must be >= 0, got {self.interval_events}"
            )

    def effective_interval_events(self) -> int:
        """Chunk size to use in events mode."""
        return self.interval_events or DEFAULT_INTERVAL_EVENTS

    def canonical_dict(self) -> Dict[str, Any]:
        """Stable key-sorted dict — the cache-key material.

        Two configs with equal canonical dicts always produce
        byte-identical sampled results for the same trace/params.
        """
        return {
            "interval_events": self.interval_events,
            "max_phases": self.max_phases,
            "mode": self.mode,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SamplingConfig":
        """Build from a JSON object, rejecting unknown keys with a
        did-you-mean hint and type errors with the offending key named.

        Raises :class:`ValueError` (so CLI/serve callers can fold it
        into their exit-2 / 400 paths).
        """
        if not isinstance(d, Mapping):
            raise ValueError(
                f"sample config must be an object, got {type(d).__name__}"
            )
        for key in d:
            if key not in _KEYS:
                from repro.sweep.spec import suggest

                hint = suggest(str(key), _KEYS)
                raise ValueError(
                    f"unknown sample config key {key!r}{hint}; "
                    f"known keys: {', '.join(_KEYS)}"
                )
        kwargs: Dict[str, Any] = {}
        for key in ("max_phases", "interval_events", "seed"):
            if key in d:
                value = d[key]
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ValueError(
                        f"sample config key {key!r} must be an integer, "
                        f"got {value!r}"
                    )
                kwargs[key] = value
        if "mode" in d:
            if not isinstance(d["mode"], str):
                raise ValueError(
                    f"sample config key 'mode' must be a string, got {d['mode']!r}"
                )
            kwargs["mode"] = d["mode"]
        return cls(**kwargs)
