"""Representative simulation and whole-run reconstitution.

Given a :class:`~repro.sampling.cluster.SamplingPlan`, each cluster's
medoid interval is lifted into a standalone sub-trace (synthetic
``THREAD_BEGIN``/``THREAD_END`` delimiters; the begin is stamped at the
thread's previous event time so the leading compute gap survives
translation) and run through the ordinary
:func:`repro.core.pipeline.extrapolate`.  Whole-run metrics are then the
cluster-weighted sums of the representatives' metrics: barriers
synchronise the program between intervals, so interval times — and all
additive counters — compose by addition.

Error bars are heuristic, not statistical: for each metric the bar is
``sum_c weight_c * metric_c * spread_c`` where ``spread_c`` is the mean
distance of cluster members to the representative in normalised
signature space.  A perfectly periodic program has spread 0 and an
exact estimate; the bar grows with within-cluster heterogeneity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.pipeline import ExtrapolationOutcome, extrapolate
from repro.sampling.cluster import SamplingPlan, build_plan
from repro.sampling.config import SamplingConfig
from repro.sampling.intervals import Interval, IntervalSplit, split_trace
from repro.sim.network import NetworkStats
from repro.sim.result import ProcessorStats, SimulationResult
from repro.trace.events import EventKind, TraceEvent
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.trace import ThreadTrace, Trace, TraceMeta

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.parameters import SimulationParameters

#: Integer per-processor counters that scale with cluster weight.
_SCALED_COUNTERS = (
    "remote_accesses",
    "requests_served",
    "interrupts",
    "polls",
    "messages_sent",
    "messages_received",
    "retries",
    "timeouts",
    "late_replies",
    "retry_giveups",
    "stragglers",
    "barrier_delays",
)


def representative_trace(meta: TraceMeta, interval: Interval) -> Trace:
    """Lift one interval into a standalone, structurally valid trace.

    Per thread: keep the interval's events; if the thread's slice does
    not already start with ``THREAD_BEGIN``, prepend a synthetic one at
    the thread's previous-event time (so translation preserves the
    compute gap that crossed the interval boundary); if it does not end
    with ``THREAD_END``, append one at the slice's last event time.
    Threads absent from the interval get a zero-length begin/end pair.
    """
    if interval.events is None:
        raise ValueError(
            f"interval {interval.index} was split without keep_events"
        )
    per: List[List[TraceEvent]] = [[] for _ in range(meta.n_threads)]
    for ev in interval.events:
        per[ev.thread].append(ev)

    threads: List[ThreadTrace] = []
    for t, evs in enumerate(per):
        anchor = interval.prev_times.get(t, interval.first_time)
        if not evs:
            evs = [
                TraceEvent(time=anchor, thread=t, kind=EventKind.THREAD_BEGIN),
                TraceEvent(time=anchor, thread=t, kind=EventKind.THREAD_END),
            ]
        else:
            if evs[0].kind != EventKind.THREAD_BEGIN:
                evs = [
                    TraceEvent(
                        time=anchor, thread=t, kind=EventKind.THREAD_BEGIN
                    )
                ] + evs
            if evs[-1].kind != EventKind.THREAD_END:
                evs = evs + [
                    TraceEvent(
                        time=evs[-1].time, thread=t, kind=EventKind.THREAD_END
                    )
                ]
        threads.append(ThreadTrace(t, evs))
    return Trace.from_thread_traces(meta, threads)


@dataclass
class SampledOutcome:
    """Sampled counterpart of :class:`ExtrapolationOutcome`.

    Duck-types the attributes reporting code reads (``trace``,
    ``trace_stats``, ``result``, ``predicted_time``, ``ideal_time``) so
    :func:`repro.metrics.report.predict_summary` works unchanged, while
    carrying the sampling plan and the per-representative outcomes for
    inspection.
    """

    trace: Trace
    trace_stats: TraceStats
    #: synthetic, weight-combined result (``estimated=True``)
    result: SimulationResult
    plan: SamplingPlan
    #: representative interval index -> its full extrapolation outcome
    representatives: Dict[int, ExtrapolationOutcome]
    #: events actually simulated (sum of representative sub-traces)
    events_simulated: int
    #: weight-combined ideal (zero-cost-communication) time estimate
    ideal_time_estimate: float
    #: sampled outcomes carry no whole-run translated program
    translated: None = None

    @property
    def predicted_time(self) -> float:
        return self.result.execution_time

    @property
    def ideal_time(self) -> float:
        return self.ideal_time_estimate


@dataclass(frozen=True)
class _ClusterScales:
    """Per-cluster multipliers for each metric family.

    Time-like metrics use the plain member-count weight: the measured
    (1-processor) interval duration is a poor proxy for the simulated
    n-processor time, and benchmarking showed the duration-ratio
    estimator consistently *hurts* accuracy there.  Additive event
    counts are different — members' signature covariates count exactly
    the events being estimated — so message counts scale by the ratio
    of the members' remote-event sum to the representative's, byte
    totals by remote byte totals, and barrier counts by barrier-exit
    counts (classic ratio estimators, exact for homogeneous phases).  A
    zero covariate on the representative falls back to the plain
    weight.
    """

    time: float
    msgs: float
    bytes: float
    barriers: float


def _covariate_ratio(
    split: IntervalSplit, cluster, dims: Tuple[int, ...]
) -> float:
    rep = sum(split.intervals[cluster.representative].signature[d] for d in dims)
    if rep <= 0.0:
        return float(cluster.weight)
    total = sum(
        split.intervals[m].signature[d] for m in cluster.members for d in dims
    )
    return total / rep


def _cluster_scales(split: IntervalSplit, plan: SamplingPlan) -> List[_ClusterScales]:
    from repro.sampling.intervals import SIGNATURE_FIELDS

    dim = {name: i for i, name in enumerate(SIGNATURE_FIELDS)}
    scales = []
    for cluster in plan.clusters:
        scales.append(
            _ClusterScales(
                time=float(cluster.weight),
                msgs=_covariate_ratio(
                    split,
                    cluster,
                    (dim["n_remote_read"], dim["n_remote_write"]),
                ),
                bytes=_covariate_ratio(
                    split, cluster, (dim["read_bytes"], dim["write_bytes"])
                ),
                barriers=_covariate_ratio(
                    split, cluster, (dim["n_barrier_exit"],)
                ),
            )
        )
    return scales


def _weighted_result(
    trace: Trace,
    params: "SimulationParameters",
    config: SamplingConfig,
    split: IntervalSplit,
    plan: SamplingPlan,
    scales: List[_ClusterScales],
    outcomes: List[ExtrapolationOutcome],
    events_simulated: int,
) -> SimulationResult:
    n_proc = len(outcomes[0].result.processors)
    procs = [ProcessorStats(pid=p) for p in range(n_proc)]
    net = NetworkStats()
    by_kind: Dict[str, float] = {}
    execution_time = 0.0
    barrier_count = 0.0

    for cluster, scale, outcome in zip(plan.clusters, scales, outcomes):
        r = outcome.result
        execution_time += scale.time * r.execution_time
        barrier_count += scale.barriers * r.barrier_count
        for dst, src in zip(procs, r.processors):
            for cat, v in src.categories.items():
                dst.categories[cat] += scale.time * v
            dst.busy_total += scale.time * src.busy_total
            dst.comm_wait += scale.time * src.comm_wait
            dst.barrier_wait += scale.time * src.barrier_wait
            dst.end_time += scale.time * src.end_time
            dst.straggler_time += scale.time * src.straggler_time
            for name in _SCALED_COUNTERS:
                setattr(
                    dst,
                    name,
                    getattr(dst, name) + scale.msgs * getattr(src, name),
                )
        rn = r.network
        net.messages += scale.msgs * rn.messages
        net.bytes += scale.bytes * rn.bytes
        net.total_wire_time += scale.msgs * rn.total_wire_time
        net.total_contention_delay += scale.msgs * rn.total_contention_delay
        net.total_jitter += scale.msgs * rn.total_jitter
        net.dropped += scale.msgs * rn.dropped
        net.duplicated += scale.msgs * rn.duplicated
        net.max_in_flight = max(net.max_in_flight, rn.max_in_flight)
        for kind, count in rn.by_kind.items():
            by_kind[kind] = by_kind.get(kind, 0.0) + scale.msgs * count

    # Count-like fields stay integers in the synthetic result (rounded
    # once, deterministically).
    net.messages = int(round(net.messages))
    net.bytes = int(round(net.bytes))
    net.dropped = int(round(net.dropped))
    net.duplicated = int(round(net.duplicated))
    net.by_kind = {k: int(round(v)) for k, v in sorted(by_kind.items())}
    for dst in procs:
        for name in _SCALED_COUNTERS:
            setattr(dst, name, int(round(getattr(dst, name))))

    def bar(scale_of, per_cluster: List[float]) -> Dict[str, float]:
        value = sum(
            scale_of(s) * m for s, m in zip(scales, per_cluster)
        )
        error = sum(
            scale_of(s) * abs(m) * c.spread
            for c, s, m in zip(plan.clusters, scales, per_cluster)
        )
        return {
            "value": value,
            "error": error,
            "relative_error": error / abs(value) if value else 0.0,
        }

    error_bars = {
        "predicted_time_us": bar(
            lambda s: s.time, [o.result.execution_time for o in outcomes]
        ),
        "compute_time_us": bar(
            lambda s: s.time, [o.result.total_compute_time() for o in outcomes]
        ),
        "message_count": bar(
            lambda s: s.msgs, [float(o.result.network.messages) for o in outcomes]
        ),
        "message_bytes": bar(
            lambda s: s.bytes, [float(o.result.network.bytes) for o in outcomes]
        ),
    }

    sampling = {
        "config": config.canonical_dict(),
        "plan": plan.to_dict(),
        "scales": [
            {
                "time": s.time,
                "msgs": s.msgs,
                "bytes": s.bytes,
                "barriers": s.barriers,
            }
            for s in scales
        ],
        "events_total": split.events_total,
        "events_simulated": events_simulated,
        "error_bars": error_bars,
    }
    return SimulationResult(
        meta=trace.meta,
        params=params,
        execution_time=execution_time,
        processors=procs,
        threads=[],
        network=net,
        barrier_count=int(round(barrier_count)),
        estimated=True,
        sampling=sampling,
    )


def estimate_sampled(
    trace: Trace,
    params: "SimulationParameters",
    config: Optional[SamplingConfig] = None,
    *,
    wall_clock_budget: Optional[float] = None,
) -> SampledOutcome:
    """Sampled counterpart of :func:`repro.core.pipeline.extrapolate`.

    Splits, clusters, simulates one representative per phase, and
    returns the weight-combined estimate.  Deterministic for a fixed
    ``config.seed``.  Raises :class:`ValueError` for an empty trace.
    """
    config = config or SamplingConfig()
    if not trace.events:
        raise ValueError("cannot sample an empty trace (no events)")
    split = split_trace(trace, config, keep_events=True)
    plan = build_plan(split, config)
    scales = _cluster_scales(split, plan)

    outcomes: List[ExtrapolationOutcome] = []
    representatives: Dict[int, ExtrapolationOutcome] = {}
    events_simulated = 0
    ideal = 0.0
    for cluster, scale in zip(plan.clusters, scales):
        interval = split.intervals[cluster.representative]
        sub = representative_trace(trace.meta, interval)
        outcome = extrapolate(sub, params, wall_clock_budget=wall_clock_budget)
        outcomes.append(outcome)
        representatives[cluster.representative] = outcome
        events_simulated += len(sub.events)
        ideal += scale.time * outcome.ideal_time

    result = _weighted_result(
        trace, params, config, split, plan, scales, outcomes, events_simulated
    )
    return SampledOutcome(
        trace=trace,
        trace_stats=compute_stats(trace),
        result=result,
        plan=plan,
        representatives=representatives,
        events_simulated=events_simulated,
        ideal_time_estimate=ideal,
    )


# -- reporting ---------------------------------------------------------------


def _members_preview(members, limit: int = 12) -> str:
    ids = list(members)
    if len(ids) <= limit:
        return ",".join(str(i) for i in ids)
    head = ",".join(str(i) for i in ids[:limit])
    return f"{head},... ({len(ids)} total)"


def plan_report(meta: TraceMeta, split: IntervalSplit, plan: SamplingPlan) -> str:
    """Human-readable sampling plan (``extrap validate --sample-report``)."""
    lines = [
        f"sampling plan: {meta.program or 'program'}, {meta.n_threads} threads",
        f"  mode: {plan.mode}"
        + (
            f" (interval_events={plan.interval_events})"
            if plan.mode == "events"
            else ""
        ),
        f"  intervals: {plan.n_intervals}  events: {plan.events_total}",
        f"  chosen k: {plan.k} (max {plan.max_phases}, seed {plan.seed})",
    ]
    total = sum(c.weight for c in plan.clusters) or 1
    for i, c in enumerate(plan.clusters):
        share = c.weight / total
        lines.append(
            f"  phase {i}: representative interval {c.representative}, "
            f"weight {c.weight} ({share:.1%}), spread {c.spread:.4f}"
        )
        lines.append(f"    members: {_members_preview(c.members)}")
    return "\n".join(lines)


def sample_report(trace: Trace, config: Optional[SamplingConfig] = None) -> str:
    """Build and format a sampling plan for a trace without simulating."""
    config = config or SamplingConfig()
    if not trace.events:
        raise ValueError("cannot sample an empty trace (no events)")
    split = split_trace(trace, config, keep_events=False)
    plan = build_plan(split, config)
    return plan_report(trace.meta, split, plan)


def sampling_section(result: SimulationResult) -> str:
    """Error-bar block appended to ``extrap predict --sample`` output."""
    info = result.sampling or {}
    plan = info.get("plan", {})
    bars = info.get("error_bars", {})
    ev_total = info.get("events_total", 0)
    ev_sim = info.get("events_simulated", 0)
    saved = ev_total - ev_sim
    pct = saved / ev_total if ev_total else 0.0
    lines = [
        "sampling:",
        f"  phases: {plan.get('k', '?')} of {plan.get('n_intervals', '?')} "
        f"intervals ({plan.get('mode', '?')} mode, seed {plan.get('seed', '?')})",
        f"  events simulated: {ev_sim} of {ev_total} "
        f"({pct:.1%} saved)",
    ]
    for name in (
        "predicted_time_us",
        "compute_time_us",
        "message_count",
        "message_bytes",
    ):
        if name in bars:
            b = bars[name]
            lines.append(
                f"  {name}: {b['value']:.1f} +/- {b['error']:.1f} "
                f"({b['relative_error']:.2%})"
            )
    return "\n".join(lines)
