"""Interval splitting and event-signature vectors.

A trace is cut into *intervals* — the sampling unit — either at barrier
boundaries (each interval is one compute phase plus the barrier episode
that closes it; the natural period of a pC++-style program) or into
fixed-event-count chunks for barrier-less traces.  Every interval gets a
:data:`SIGNATURE_FIELDS` vector summarising what the program did in it;
clustering (:mod:`repro.sampling.cluster`) runs on those vectors.

Signatures are computed in **one pass** over the event stream, so
:func:`split_file` can build a sampling plan for a compressed
million-event trace without materializing the event list (it reads
events straight off :func:`repro.trace.io.iter_trace_events`).

Barrier-mode semantics: a thread's events belong to interval ``k`` until
(and including) its ``BARRIER_EXIT`` of its ``k``-th barrier episode.
Because pC++ barriers are global, per-thread epochs stay within one of
each other, and every interval holds one complete episode per thread —
which is what makes an interval independently simulatable.  Event-count
mode only ever cuts while no thread is inside an open barrier, for the
same reason.

The compute gap *before* a thread's first event of an interval (from
that thread's last event of the previous interval) is charged to the
current interval, matching how the representative sub-trace is
reconstructed (see :func:`repro.sampling.estimate.representative_trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sampling.config import SamplingConfig
from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import Trace, TraceMeta

#: Signature vector layout, in order.  Kind counts first (one per
#: :class:`~repro.trace.events.EventKind`), then traffic, compute, and
#: shape features.
SIGNATURE_FIELDS: Tuple[str, ...] = tuple(
    f"n_{kind.name.lower()}" for kind in EventKind
) + (
    "read_bytes",
    "write_bytes",
    "compute_time",
    "imbalance",
    "comm_imbalance",
    "max_thread_bytes",
    "duration",
)


@dataclass
class Interval:
    """One sampling unit of a trace.

    ``signature`` is the raw (unnormalised) :data:`SIGNATURE_FIELDS`
    vector.  ``prev_times`` maps each thread that appears in the
    interval to the time of its previous event *anywhere* in the trace
    (used to reconstruct the leading compute gap when the interval is
    simulated standalone).  ``events`` is populated only when the split
    was asked to keep them.
    """

    index: int
    first_time: float
    last_time: float
    n_events: int
    signature: Tuple[float, ...]
    prev_times: Dict[int, float]
    events: Optional[List[TraceEvent]] = None

    @property
    def duration(self) -> float:
        return self.last_time - self.first_time


@dataclass
class IntervalSplit:
    """All intervals of one trace plus how they were cut."""

    mode: str  # "barrier" or "events" (resolved; never "auto")
    interval_events: int  # chunk size used (0 in barrier mode)
    intervals: List[Interval]
    events_total: int

    @property
    def n_intervals(self) -> int:
        return len(self.intervals)


@dataclass
class _Bucket:
    """Accumulator for one interval while streaming."""

    first_time: float
    last_time: float = 0.0
    n_events: int = 0
    counts: List[int] = field(default_factory=lambda: [0] * len(EventKind))
    read_bytes: int = 0
    write_bytes: int = 0
    compute: Dict[int, float] = field(default_factory=dict)
    remote_counts: Dict[int, int] = field(default_factory=dict)
    remote_bytes: Dict[int, int] = field(default_factory=dict)
    prev_times: Dict[int, float] = field(default_factory=dict)
    events: Optional[List[TraceEvent]] = None


class _IntervalBuilder:
    """One-pass interval accumulator over a time-ordered event stream."""

    def __init__(
        self, meta: TraceMeta, mode: str, chunk: int, keep_events: bool
    ):
        self.meta = meta
        self.mode = mode  # "barrier" or "events"
        self.chunk = chunk
        self.keep_events = keep_events
        self.barrier_exits = 0
        self.events_total = 0
        self._buckets: List[_Bucket] = []
        self._prev_time: Dict[int, float] = {}  # thread -> last event time
        self._thread_epoch: Dict[int, int] = {}  # barrier mode
        self._global_epoch = 0  # events mode
        self._chunk_count = 0
        self._open_barriers: Dict[int, int] = {}  # thread -> open barrier id

    def _bucket(self, epoch: int, ev: TraceEvent) -> _Bucket:
        while len(self._buckets) <= epoch:
            b = _Bucket(first_time=ev.time)
            if self.keep_events:
                b.events = []
            self._buckets.append(b)
        return self._buckets[epoch]

    def add(self, ev: TraceEvent) -> None:
        th = ev.thread
        if self.mode == "events":
            epoch = self._global_epoch
        else:
            epoch = self._thread_epoch.get(th, 0)
        bucket = self._bucket(epoch, ev)

        prev = self._prev_time.get(th)
        if th not in bucket.prev_times:
            # First event of this thread in this interval: remember where
            # it was coming from, so the leading compute gap survives
            # standalone simulation.
            bucket.prev_times[th] = prev if prev is not None else ev.time
        gap = 0.0
        if prev is not None and ev.kind != EventKind.BARRIER_EXIT:
            gap = ev.time - prev  # barrier-exit gaps are wait, not compute
        bucket.compute[th] = bucket.compute.get(th, 0.0) + gap
        bucket.counts[int(ev.kind)] += 1
        if ev.kind == EventKind.REMOTE_READ:
            bucket.read_bytes += ev.nbytes
        elif ev.kind == EventKind.REMOTE_WRITE:
            bucket.write_bytes += ev.nbytes
        if ev.kind in (EventKind.REMOTE_READ, EventKind.REMOTE_WRITE):
            bucket.remote_counts[th] = bucket.remote_counts.get(th, 0) + 1
            bucket.remote_bytes[th] = bucket.remote_bytes.get(th, 0) + ev.nbytes
        bucket.n_events += 1
        bucket.last_time = ev.time
        if bucket.events is not None:
            bucket.events.append(ev)

        self._prev_time[th] = ev.time
        self.events_total += 1

        if ev.kind == EventKind.BARRIER_ENTER:
            self._open_barriers[th] = ev.barrier_id
        elif ev.kind == EventKind.BARRIER_EXIT:
            self._open_barriers.pop(th, None)
            self.barrier_exits += 1
            if self.mode == "barrier":
                self._thread_epoch[th] = epoch + 1

        if self.mode == "events":
            self._chunk_count += 1
            # Only cut between complete barrier episodes, so every chunk
            # is a structurally valid sub-trace.
            if self._chunk_count >= self.chunk and not self._open_barriers:
                self._global_epoch += 1
                self._chunk_count = 0

    def finish(self) -> List[Interval]:
        n = self.meta.n_threads
        intervals: List[Interval] = []
        for i, b in enumerate(self._buckets):
            per_thread = [b.compute.get(t, 0.0) for t in range(n)] or [0.0]
            compute_total = sum(per_thread)
            imbalance = max(per_thread) - min(per_thread)
            per_remote = [b.remote_counts.get(t, 0) for t in range(n)] or [0]
            per_bytes = [b.remote_bytes.get(t, 0) for t in range(n)] or [0]
            signature = tuple(
                float(c) for c in b.counts
            ) + (
                float(b.read_bytes),
                float(b.write_bytes),
                compute_total,
                imbalance,
                float(max(per_remote) - min(per_remote)),
                float(max(per_bytes)),
                b.last_time - b.first_time,
            )
            intervals.append(
                Interval(
                    index=i,
                    first_time=b.first_time,
                    last_time=b.last_time,
                    n_events=b.n_events,
                    signature=signature,
                    prev_times=dict(b.prev_times),
                    events=b.events,
                )
            )
        return intervals


def compute_intervals(
    meta: TraceMeta,
    events: Iterable[TraceEvent],
    *,
    mode: str,
    interval_events: int,
    keep_events: bool,
) -> IntervalSplit:
    """Single-pass split of an event stream in a *resolved* mode.

    ``mode`` must be ``"barrier"`` or ``"events"`` — ``auto`` resolution
    (which may need a second pass) lives in :func:`split_trace` /
    :func:`split_file`.
    """
    if mode not in ("barrier", "events"):
        raise ValueError(f"unresolved interval mode {mode!r}")
    builder = _IntervalBuilder(meta, mode, interval_events, keep_events)
    for ev in events:
        builder.add(ev)
    return IntervalSplit(
        mode=mode,
        interval_events=interval_events if mode == "events" else 0,
        intervals=builder.finish(),
        events_total=builder.events_total,
    )


def _resolve_and_split(
    meta: TraceMeta,
    events_factory,
    config: SamplingConfig,
    keep_events: bool,
) -> IntervalSplit:
    chunk = config.effective_interval_events()
    if config.mode == "events":
        return compute_intervals(
            meta,
            events_factory(),
            mode="events",
            interval_events=chunk,
            keep_events=keep_events,
        )
    split = compute_intervals(
        meta,
        events_factory(),
        mode="barrier",
        interval_events=0,
        keep_events=keep_events,
    )
    if config.mode == "auto" and split.n_intervals <= 1:
        # No barriers to cut at — fall back to fixed-size chunks.
        return compute_intervals(
            meta,
            events_factory(),
            mode="events",
            interval_events=chunk,
            keep_events=keep_events,
        )
    return split


def split_trace(
    trace: Trace, config: SamplingConfig, *, keep_events: bool = True
) -> IntervalSplit:
    """Split an in-memory trace into signed intervals."""
    return _resolve_and_split(
        trace.meta, lambda: trace.events, config, keep_events
    )


def split_file(
    path: str | Path, config: SamplingConfig, *, keep_events: bool = False
) -> Tuple[TraceMeta, IntervalSplit]:
    """Split a trace *file* without materializing its event list.

    Events stream straight off the (possibly compressed) file; with the
    default ``keep_events=False`` only signatures are retained, so
    memory stays O(intervals) however big the trace is.  ``auto`` mode
    may stream the file twice (once to discover there are no barriers).
    """
    from repro.trace.io import iter_trace_events, read_trace_meta

    path = Path(path)
    meta = read_trace_meta(path)
    split = _resolve_and_split(
        meta, lambda: iter_trace_events(path), config, keep_events
    )
    return meta, split
