"""HTTP prediction service: ``extrap serve``.

A stdlib-only JSON API over the extrapolation pipeline — synchronous
memoized predictions, asynchronous sweep jobs, and observable cache and
queue state.  See :mod:`repro.serve.service` for the endpoint logic and
:mod:`repro.serve.http` for the wire layer.
"""

from repro.serve.http import ExtrapServer, run_server, start_server
from repro.serve.jobs import JobQueue, QueueClosedError, QueueFullError
from repro.serve.journal import JobJournal, JournalReplay, request_digest
from repro.serve.metrics import METRICS_CONTENT_TYPE, render_metrics
from repro.serve.ratelimit import RateLimiter, retry_after_header
from repro.serve.schema import ApiError
from repro.serve.service import ExtrapService

__all__ = [
    "ApiError",
    "ExtrapServer",
    "ExtrapService",
    "JobJournal",
    "JobQueue",
    "JournalReplay",
    "METRICS_CONTENT_TYPE",
    "QueueClosedError",
    "QueueFullError",
    "RateLimiter",
    "render_metrics",
    "request_digest",
    "retry_after_header",
    "run_server",
    "start_server",
]
