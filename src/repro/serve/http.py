"""stdlib HTTP front-end for :class:`~repro.serve.service.ExtrapService`.

Built on :class:`http.server.ThreadingHTTPServer` — no third-party web
framework — with one handler routing the six ``/v1`` endpoints:

======  ======================  ==========================================
method  path                    semantics
======  ======================  ==========================================
POST    ``/v1/predict``         synchronous extrapolation (memoized)
POST    ``/v1/sweeps``          enqueue an async sweep job
GET     ``/v1/jobs/<id>``       job status
GET     ``/v1/jobs/<id>/result``  finished job's artifact (409 until done)
GET     ``/v1/healthz``         liveness probe
GET     ``/v1/stats``           cache/queue/uptime counters
GET     ``/v1/metrics``         the same counters, Prometheus text format
======  ======================  ==========================================

Every response body is JSON except ``/v1/metrics``, which serves the
Prometheus text exposition format (the one endpoint scrapers consume
as plain text).  Failures follow one contract: a JSON
object ``{"error": {"status": N, "message": "<one line>"}}`` — a
traceback never crosses the wire (unexpected exceptions become a 500
with the exception's one-line summary; the full traceback goes to the
server log).

Admission control: with ``--rate-limit``, every request (except
liveness probes and metric scrapes, :data:`RATE_LIMIT_EXEMPT`) first
spends a token from the caller's per-address bucket; an empty bucket is
an immediate 429 with a ``Retry-After`` header, checked *before* any
routing or body parsing so a hot client cannot burn server work.  A
full job queue is a different failure — the server (not the client) is
saturated — and sheds with 503 + ``Retry-After`` instead.

Shutdown: :func:`run_server` runs ``serve_forever`` on a worker thread
and parks the main thread on an event that SIGTERM/SIGINT set.  Calling
``HTTPServer.shutdown()`` from inside a signal handler on the serving
thread would deadlock (it joins the serve loop it interrupted), which
is why the signal handler only sets the event.  On wake the listener is
closed first (no new connections), then the job queue drains — bounded
by ``--drain-timeout``; jobs still unfinished at the deadline are
journaled ``interrupted`` for restart recovery — then the process
exits 0 either way, so a supervisor restart is always safe.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.serve.metrics import METRICS_CONTENT_TYPE, render_metrics
from repro.serve.ratelimit import retry_after_header
from repro.serve.schema import ApiError
from repro.serve.service import ExtrapService
from repro.sweep.cache import ResultCache
from repro.util.log import get_logger

log = get_logger("serve.http")
access_log = get_logger("serve.access")

#: largest accepted request body, bytes (an inline trace at the event
#: cap is far below this; anything bigger is abuse or a mistake)
MAX_BODY_BYTES = 64 * 1024 * 1024

#: endpoints the per-client rate limiter never touches: liveness probes
#: and metric scrapes must keep working while a client is throttled,
#: or the operator goes blind exactly when admission control engages
RATE_LIMIT_EXEMPT = ("/v1/healthz", "/v1/metrics")

#: default bound on the SIGTERM drain, seconds — a stalled job must
#: not hang shutdown forever; past this, unfinished jobs are journaled
#: ``interrupted`` and the process exits 0 for the supervisor to restart
DEFAULT_DRAIN_TIMEOUT_S = 30.0


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the service; owns the wire contract only."""

    server: "ExtrapServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    @property
    def service(self) -> ExtrapService:
        return self.server.service

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        *,
        retry_after: Optional[int] = None,
    ) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, message: str, *, retry_after: Optional[int] = None
    ) -> None:
        error: Dict[str, Any] = {"status": status, "message": message}
        if retry_after is not None:
            # Mirrored into the body so clients that cannot see headers
            # (and tests asserting exact bytes) get the same number.
            error["retry_after"] = retry_after
        self._send_json(status, {"error": error}, retry_after=retry_after)

    def _read_body(self) -> Any:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or 0)
        except ValueError:
            raise ApiError(400, "bad Content-Length header") from None
        if length <= 0:
            raise ApiError(400, "request body required (JSON object)")
        if length > MAX_BODY_BYTES:
            raise ApiError(
                413, f"request body too large ({length} bytes, limit {MAX_BODY_BYTES})"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ApiError(400, f"request body is not valid JSON: {exc}") from None

    # -- dispatch ------------------------------------------------------------

    def _route(self, method: str) -> Tuple[str, Any]:
        """Resolve the request to (endpoint-name, response payload).

        The payload is a JSON-safe dict for every endpoint except
        ``metrics``, whose payload is the pre-rendered exposition text.
        """
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        service = self.service
        self._admit(path)
        if method == "GET":
            if path == "/v1/healthz":
                return "healthz", service.healthz()
            if path == "/v1/stats":
                return "stats", service.stats()
            if path == "/v1/metrics":
                return "metrics", render_metrics(service.stats())
            if path.startswith("/v1/jobs/"):
                rest = path[len("/v1/jobs/") :]
                if rest.endswith("/result"):
                    job_id = rest[: -len("/result")]
                    return "job_result", service.job_result(job_id)
                if "/" not in rest and rest:
                    return "job_status", service.job_status(rest)
            raise ApiError(404, f"no such endpoint: GET {path}")
        if method == "POST":
            if path == "/v1/predict":
                return "predict", service.predict(self._read_body())
            if path == "/v1/sweeps":
                return "sweeps", service.submit_sweep(self._read_body())
            raise ApiError(404, f"no such endpoint: POST {path}")
        raise ApiError(405, f"method {method} not supported")

    def _admit(self, path: str) -> None:
        """Per-client token-bucket admission (429 before any work).

        Rate limiting outranks every other failure mode — a client over
        its budget gets 429 even when the queue is also full (which
        would otherwise shed with 503): the 429 names the party that
        must slow down.
        """
        limiter = self.service.limiter
        if limiter is None or path in RATE_LIMIT_EXEMPT:
            return
        allowed, retry_after_s = limiter.allow(self.client_address[0])
        if allowed:
            return
        self.service.count_rate_limited()
        retry_after = retry_after_header(retry_after_s)
        raise ApiError(
            429,
            f"rate limit exceeded ({limiter.rate:g} req/s, burst "
            f"{limiter.burst}); retry in {retry_after}s",
            retry_after=retry_after,
        )

    def _handle(self, method: str) -> None:
        t0 = time.monotonic()
        status = 500
        try:
            endpoint, payload = self._route(method)
            self.service.count_request(endpoint)
            status = 202 if endpoint == "sweeps" else 200
            if isinstance(payload, str):
                self._send_text(status, payload, METRICS_CONTENT_TYPE)
            else:
                self._send_json(status, payload)
        except ApiError as exc:
            status = exc.status
            self.service.count_request("error")
            self._send_error_json(
                exc.status, exc.message, retry_after=exc.retry_after
            )
        except (BrokenPipeError, ConnectionResetError):
            status = 0  # client went away mid-response; nothing to send
        except Exception as exc:  # noqa: BLE001 — wire boundary
            status = 500
            log.exception("unhandled error serving %s %s", method, self.path)
            try:
                self._send_error_json(
                    500, f"internal error: {type(exc).__name__}: {exc}"
                )
            except OSError:
                pass
        finally:
            access_log.info(
                '%s "%s %s" %s %.1fms',
                self.client_address[0],
                method,
                self.path,
                status if status else "-",
                (time.monotonic() - t0) * 1e3,
            )

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self._handle("POST")

    # Unsupported methods get the same JSON 405 contract instead of
    # http.server's default HTML 501 page.
    def do_PUT(self) -> None:  # noqa: N802
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def do_PATCH(self) -> None:  # noqa: N802
        self._handle("PATCH")

    def do_HEAD(self) -> None:  # noqa: N802
        self._handle("HEAD")

    def log_message(self, format: str, *args: Any) -> None:
        """Default stderr chatter → structured logger (debug level)."""
        log.debug("%s %s", self.client_address[0], format % args)


class ExtrapServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`ExtrapService`."""

    daemon_threads = True  # in-flight HTTP threads must not block exit
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: ExtrapService):
        super().__init__(address, _Handler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]

    def close(self, *, drain: bool = True) -> None:
        """Stop the listener, then drain (or cancel) queued jobs."""
        self.server_close()
        self.service.close(drain=drain)


def start_server(
    service: ExtrapService, *, host: str = "127.0.0.1", port: int = 0
) -> Tuple[ExtrapServer, threading.Thread]:
    """Bind and serve on a daemon thread (tests, benches, embedding).

    Returns the server (``server.port`` is the real bound port — pass
    ``port=0`` for an ephemeral one) and its serving thread.  Stop with
    ``server.shutdown()`` then ``server.close()``.
    """
    server = ExtrapServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever, name="serve-http", daemon=True
    )
    thread.start()
    return server, thread


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8787,
    trace_root: "str | Path" = ".",
    cache: Optional[ResultCache] = None,
    queue_depth: int = 16,
    workers: int = 1,
    sweep_jobs: int = 1,
    max_wall_budget: Optional[float] = None,
    state_dir: "str | Path | None" = None,
    rate_limit: Optional[float] = None,
    rate_burst: Optional[int] = None,
    job_budget: Optional[float] = None,
    drain_timeout: Optional[float] = DEFAULT_DRAIN_TIMEOUT_S,
) -> int:
    """Serve until SIGTERM/SIGINT; drain the job queue; return 0.

    The CLI entry point behind ``extrap serve``.  Prints the bound URL
    on stdout once listening (machine-parsable: the last token is the
    URL, resolving ``port=0`` to the real port).  With ``state_dir``,
    unfinished jobs are journaled and recovered on the next start —
    including jobs a bounded drain (``drain_timeout``) had to abandon,
    which is why a drain timeout still exits 0.
    """
    try:
        service = ExtrapService(
            trace_root=trace_root,
            cache=cache,
            queue_depth=queue_depth,
            workers=workers,
            sweep_jobs=sweep_jobs,
            max_wall_budget=max_wall_budget,
            state_dir=state_dir,
            rate_limit=rate_limit,
            rate_burst=rate_burst,
            job_budget=job_budget,
            drain_timeout=drain_timeout,
        )
    except OSError as exc:
        print(f"extrap: error: cannot use state dir {state_dir}: {exc}", flush=True)
        return 1
    if service.recovered_total:
        print(
            f"recovered {service.recovered_total} unfinished job(s) "
            f"from {service.journal.path}",
            flush=True,
        )
    try:
        server, thread = start_server(service, host=host, port=port)
    except OSError as exc:
        print(f"extrap: error: cannot bind {host}:{port}: {exc}", flush=True)
        service.close(drain=False)
        return 1

    stop = threading.Event()
    received: Dict[str, Any] = {"signal": None}

    def _on_signal(signum: int, frame: Any) -> None:
        received["signal"] = signal.Signals(signum).name
        stop.set()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    print(f"serving on http://{host}:{server.port}", flush=True)
    log.info(
        "listening on %s:%d (trace_root=%s cache=%s queue_depth=%d)",
        host,
        server.port,
        Path(trace_root).resolve(),
        cache.root if cache is not None else "off",
        queue_depth,
    )
    try:
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    log.info("%s received; draining job queue", received["signal"] or "stop")
    server.shutdown()  # safe here: we are not on the serve_forever thread
    thread.join()
    server.server_close()  # listener down first: no new connections
    drained = service.close(drain=True)
    if not drained:
        log.warning(
            "drain timed out; interrupted jobs were journaled and will "
            "be recovered on restart"
        )
    log.info("shutdown complete")
    return 0
