"""Bounded FIFO job queue with draining shutdown.

The async half of the serve API: ``POST /v1/sweeps`` enqueues work here
and polls it back through ``GET /v1/jobs/<id>``.  Design constraints:

* **bounded** — the queue has a hard depth limit; an overflowing submit
  raises :class:`QueueFullError` immediately (the API maps it to 429)
  instead of accepting unbounded work;
* **FIFO** — jobs run in submission order across a small pool of worker
  threads (the heavy lifting inside a job is process-parallel via
  :class:`repro.sweep.executor.ParallelExecutor`; threads are only the
  dispatch layer);
* **draining** — :meth:`JobQueue.close` stops new submissions and lets
  the workers finish every job already accepted, which is what makes
  SIGTERM safe: a job the server said "queued" to is never silently
  dropped on a graceful shutdown.

Failures are recorded as ``(error type, one-line message)`` on the job,
mirroring the sweep executor's convention — a crashing job is a result,
not a dead worker thread.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.util.log import get_logger

log = get_logger("serve.jobs")

#: job lifecycle states
STATUSES = ("queued", "running", "done", "failed", "cancelled")


class QueueFullError(Exception):
    """The job queue is at its depth limit (API: 429)."""


class QueueClosedError(Exception):
    """The queue is draining for shutdown (API: 503)."""


@dataclass
class Job:
    """One asynchronous unit of work and its lifecycle record."""

    id: str
    kind: str
    label: str = ""
    status: str = "queued"
    submitted_s: float = 0.0
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    error_type: str = ""
    error: str = ""
    result: Optional[Any] = None
    fn: Optional[Callable[[], Any]] = None

    def status_dict(self) -> Dict[str, Any]:
        """The public ``GET /v1/jobs/<id>`` payload (no result body)."""
        out: Dict[str, Any] = {
            "job": self.id,
            "kind": self.kind,
            "status": self.status,
        }
        if self.label:
            out["label"] = self.label
        if self.started_s is not None:
            end = self.finished_s if self.finished_s is not None else time.monotonic()
            out["run_s"] = round(end - self.started_s, 6)
        if self.status == "failed":
            out["error"] = {"type": self.error_type, "message": self.error}
        return out


#: sentinel telling a worker thread to exit
_STOP = object()


class JobQueue:
    """FIFO job execution with a bounded backlog and worker threads."""

    def __init__(self, *, depth: int = 16, workers: int = 1):
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.depth = depth
        self._q: "queue.Queue[Any]" = queue.Queue(maxsize=depth + workers)
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._open = True
        self._threads: List[threading.Thread] = [
            threading.Thread(
                target=self._worker, name=f"serve-job-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission / lookup -------------------------------------------------

    def submit(self, kind: str, fn: Callable[[], Any], *, label: str = "") -> Job:
        """Enqueue ``fn``; returns the queued :class:`Job`.

        Raises :class:`QueueFullError` when ``depth`` jobs are already
        waiting and :class:`QueueClosedError` once :meth:`close` began.
        """
        with self._lock:
            if not self._open:
                raise QueueClosedError("server is shutting down")
            if self.backlog() >= self.depth:
                raise QueueFullError(
                    f"job queue full ({self.depth} queued); retry later"
                )
            job = Job(
                id=f"j{next(self._ids):06d}",
                kind=kind,
                label=label,
                submitted_s=time.monotonic(),
                fn=fn,
            )
            self._jobs[job.id] = job
            self._q.put_nowait(job)
        log.info("job %s queued (%s %s)", job.id, kind, label or "-")
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def backlog(self) -> int:
        """Jobs accepted but not yet started."""
        return sum(1 for j in self._jobs.values() if j.status == "queued")

    def counts(self) -> Dict[str, int]:
        """Job count per lifecycle state (all states always present)."""
        out = {status: 0 for status in STATUSES}
        with self._lock:
            for job in self._jobs.values():
                out[job.status] += 1
        return out

    def run_stats(self) -> Dict[str, Dict[str, float]]:
        """Finished-job latency per kind: ``{kind: {count, sum_s}}``.

        Count/sum is the Prometheus summary convention — the scraper
        derives rates and means; the queue keeps no histogram.
        """
        out: Dict[str, Dict[str, float]] = {}
        with self._lock:
            for job in self._jobs.values():
                if job.started_s is None or job.finished_s is None:
                    continue
                entry = out.setdefault(job.kind, {"count": 0, "sum_s": 0.0})
                entry["count"] += 1
                entry["sum_s"] += job.finished_s - job.started_s
        return {
            kind: {"count": v["count"], "sum_s": round(v["sum_s"], 6)}
            for kind, v in sorted(out.items())
        }

    # -- execution -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._q.get()
            if item is _STOP:
                return
            job: Job = item
            with self._lock:
                if job.status == "cancelled":
                    continue
                job.status = "running"
                job.started_s = time.monotonic()
            log.info("job %s running", job.id)
            try:
                result = job.fn() if job.fn is not None else None
            except Exception as exc:
                with self._lock:
                    job.status = "failed"
                    job.error_type = type(exc).__name__
                    job.error = str(exc)
                    job.finished_s = time.monotonic()
                log.warning(
                    "job %s FAILED (%s: %s)", job.id, job.error_type, job.error
                )
            else:
                with self._lock:
                    job.result = result
                    job.status = "done"
                    job.finished_s = time.monotonic()
                log.info(
                    "job %s done in %.2fs", job.id, job.finished_s - job.started_s
                )
            finally:
                job.fn = None  # drop closure references (trace data) early

    # -- shutdown ------------------------------------------------------------

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting jobs and shut the workers down.

        ``drain=True`` (the graceful path) lets workers finish every
        accepted job before their stop sentinel, FIFO order guaranteeing
        sentinels sort last.  ``drain=False`` marks still-queued jobs
        ``cancelled`` and only waits out the jobs already running.
        """
        with self._lock:
            if not self._open:
                return
            self._open = False
            if not drain:
                for job in self._jobs.values():
                    if job.status == "queued":
                        job.status = "cancelled"
        for _ in self._threads:
            self._q.put(_STOP)
        deadline = None if timeout is None else time.monotonic() + timeout
        for t in self._threads:
            t.join(
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
