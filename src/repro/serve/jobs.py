"""Bounded FIFO job queue with draining shutdown and a stall watchdog.

The async half of the serve API: ``POST /v1/sweeps`` enqueues work here
and polls it back through ``GET /v1/jobs/<id>``.  Design constraints:

* **bounded** — the queue has a hard depth limit; an overflowing submit
  raises :class:`QueueFullError` immediately (the API sheds it as 503 +
  ``Retry-After``) instead of accepting unbounded work;
* **FIFO** — jobs run in submission order across a small pool of worker
  threads (the heavy lifting inside a job is process-parallel via
  :class:`repro.sweep.executor.ParallelExecutor`; threads are only the
  dispatch layer);
* **draining** — :meth:`JobQueue.close` stops new submissions and lets
  the workers finish every job already accepted, which is what makes
  SIGTERM safe.  The drain is *bounded*: past ``timeout`` seconds,
  still-unfinished jobs are marked ``interrupted`` — a recoverable,
  journaled state — so one wedged job cannot hang shutdown forever;
* **observable** — every status transition invokes the optional
  ``observer`` callback *while the queue lock is held*, which is how
  the serve journal records transitions in exactly the order they
  happen (the observer must not call back into the queue);
* **watched** — with a ``job_budget``, a watchdog thread marks any job
  running past its wall budget ``failed`` with a one-line
  stall diagnosis (mirroring ``SimulationStalled``) and spawns a
  replacement worker, so a wedged job degrades capacity once instead of
  consuming a worker forever.

Failures are recorded as ``(error type, one-line message)`` on the job,
mirroring the sweep executor's convention — a crashing job is a result,
not a dead worker thread.
"""

from __future__ import annotations

import queue
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.util.log import get_logger

log = get_logger("serve.jobs")

#: job lifecycle states; ``interrupted`` (bounded drain gave up at
#: shutdown) is the one non-terminal "finished" state — a restart with
#: a job journal re-enqueues it
STATUSES = ("queued", "running", "done", "failed", "cancelled", "interrupted")

#: states a job never leaves
TERMINAL_STATUSES = ("done", "failed", "cancelled")

_JOB_ID_RE = re.compile(r"j(\d+)\Z")


class QueueFullError(Exception):
    """The job queue is at its depth limit (API: shed with 503)."""


class QueueClosedError(Exception):
    """The queue is draining for shutdown (API: 503)."""


@dataclass
class Job:
    """One asynchronous unit of work and its lifecycle record."""

    id: str
    kind: str
    label: str = ""
    status: str = "queued"
    submitted_s: float = 0.0
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    error_type: str = ""
    error: str = ""
    result: Optional[Any] = None
    fn: Optional[Callable[[], Any]] = None
    #: original request body (journaled so the job survives a crash);
    #: ``None`` for jobs that cannot be rebuilt and are not journaled
    payload: Optional[Dict[str, Any]] = None
    #: canonical request digest (idempotency key next to the id)
    digest: str = ""
    #: this job was rebuilt from the journal after a restart
    recovered: bool = False
    #: the stall watchdog abandoned this job's worker thread
    timed_out: bool = False

    @property
    def durable(self) -> bool:
        """Whether the journal can rebuild this job after a crash."""
        return self.payload is not None

    def status_dict(self) -> Dict[str, Any]:
        """The public ``GET /v1/jobs/<id>`` payload (no result body)."""
        out: Dict[str, Any] = {
            "job": self.id,
            "kind": self.kind,
            "status": self.status,
        }
        if self.label:
            out["label"] = self.label
        if self.recovered:
            out["recovered"] = True
        if self.started_s is not None:
            end = self.finished_s if self.finished_s is not None else time.monotonic()
            out["run_s"] = round(end - self.started_s, 6)
        if self.status == "failed":
            out["error"] = {"type": self.error_type, "message": self.error}
        return out


#: sentinel telling a worker thread to exit
_STOP = object()


class JobQueue:
    """FIFO job execution with a bounded backlog and worker threads."""

    def __init__(
        self,
        *,
        depth: int = 16,
        workers: int = 1,
        observer: Optional[Callable[[Job], None]] = None,
        job_budget: Optional[float] = None,
    ):
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if job_budget is not None and job_budget <= 0:
            raise ValueError(f"job budget must be > 0 seconds, got {job_budget}")
        self.depth = depth
        self.workers = workers
        self.job_budget = job_budget
        # Depth is enforced by submit()'s backlog check, not by the
        # queue's own bound — recovery may legitimately re-enqueue
        # depth + workers jobs (everything queued plus everything that
        # was running at the crash).
        self._q: "queue.Queue[Any]" = queue.Queue()
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._next_id = 1
        self._open = True
        self._observer = observer
        self._replacements = 0
        self._threads: List[threading.Thread] = [
            threading.Thread(
                target=self._worker, name=f"serve-job-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()
        self._watchdog_stop = threading.Event()
        self._watchdog_thread: Optional[threading.Thread] = None
        if job_budget is not None:
            self._watchdog_thread = threading.Thread(
                target=self._watchdog, name="serve-job-watchdog", daemon=True
            )
            self._watchdog_thread.start()

    def _notify(self, job: Job) -> None:
        """Invoke the observer (lock held); observer faults never
        poison the queue's own state machine."""
        if self._observer is None:
            return
        try:
            self._observer(job)
        except Exception:  # noqa: BLE001 — the journal must not kill jobs
            log.exception("job observer failed for %s (%s)", job.id, job.status)

    # -- submission / lookup -------------------------------------------------

    def submit(
        self,
        kind: str,
        fn: Callable[[], Any],
        *,
        label: str = "",
        job_id: Optional[str] = None,
        payload: Optional[Dict[str, Any]] = None,
        digest: str = "",
        recovered: bool = False,
        force: bool = False,
    ) -> Job:
        """Enqueue ``fn``; returns the queued :class:`Job`.

        Raises :class:`QueueFullError` when ``depth`` jobs are already
        waiting and :class:`QueueClosedError` once :meth:`close` began.
        ``job_id`` pins an explicit id (journal recovery keeps crashed
        jobs pollable under their original id); the id counter advances
        past it so new submissions never collide.  ``force`` bypasses
        the depth check — recovery must re-admit every journaled job
        even if a smaller queue was configured since.
        """
        with self._lock:
            if not self._open:
                raise QueueClosedError("server is shutting down")
            if not force and self.backlog() >= self.depth:
                raise QueueFullError(
                    f"job queue full ({self.depth} queued); retry later"
                )
            if job_id is None:
                job_id = f"j{self._next_id:06d}"
                self._next_id += 1
            else:
                if job_id in self._jobs:
                    raise ValueError(f"duplicate job id {job_id!r}")
                m = _JOB_ID_RE.fullmatch(job_id)
                if m:
                    self._next_id = max(self._next_id, int(m.group(1)) + 1)
            job = Job(
                id=job_id,
                kind=kind,
                label=label,
                submitted_s=time.monotonic(),
                fn=fn,
                payload=payload,
                digest=digest,
                recovered=recovered,
            )
            self._jobs[job.id] = job
            # The submit record is the one strict journal write: a job
            # that cannot be made durable must not be accepted (the 202
            # would be a promise a crash breaks).  Disk-full surfaces
            # here as the submit failing, not as a silent drop later.
            if self._observer is not None:
                try:
                    self._observer(job)
                except Exception:
                    del self._jobs[job.id]
                    log.exception("job %s rejected: observer failed", job_id)
                    raise
            self._q.put_nowait(job)
        log.info(
            "job %s queued (%s %s)%s",
            job.id,
            kind,
            label or "-",
            " [recovered]" if recovered else "",
        )
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def backlog(self) -> int:
        """Jobs accepted but not yet started."""
        return sum(1 for j in self._jobs.values() if j.status == "queued")

    def counts(self) -> Dict[str, int]:
        """Job count per lifecycle state (all states always present)."""
        out = {status: 0 for status in STATUSES}
        with self._lock:
            for job in self._jobs.values():
                out[job.status] += 1
        return out

    def run_stats(self) -> Dict[str, Dict[str, float]]:
        """Finished-job latency per kind: ``{kind: {count, sum_s}}``.

        Count/sum is the Prometheus summary convention — the scraper
        derives rates and means; the queue keeps no histogram.
        """
        out: Dict[str, Dict[str, float]] = {}
        with self._lock:
            for job in self._jobs.values():
                if job.started_s is None or job.finished_s is None:
                    continue
                entry = out.setdefault(job.kind, {"count": 0, "sum_s": 0.0})
                entry["count"] += 1
                entry["sum_s"] += job.finished_s - job.started_s
        return {
            kind: {"count": v["count"], "sum_s": round(v["sum_s"], 6)}
            for kind, v in sorted(out.items())
        }

    # -- execution -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._q.get()
            if item is _STOP:
                return
            job: Job = item
            with self._lock:
                if job.status != "queued":  # cancelled/interrupted at shutdown
                    continue
                job.status = "running"
                job.started_s = time.monotonic()
                self._notify(job)
            log.info("job %s running", job.id)
            try:
                result = job.fn() if job.fn is not None else None
            except Exception as exc:
                with self._lock:
                    # The watchdog (or a timed-out drain) may have moved
                    # the job out of "running" already; its verdict wins.
                    if job.status == "running":
                        job.status = "failed"
                        job.error_type = type(exc).__name__
                        job.error = str(exc)
                        job.finished_s = time.monotonic()
                        self._notify(job)
                    abandoned = job.timed_out
                log.warning(
                    "job %s FAILED (%s: %s)", job.id, type(exc).__name__, exc
                )
            else:
                with self._lock:
                    if job.status == "running":
                        job.result = result
                        job.status = "done"
                        job.finished_s = time.monotonic()
                        self._notify(job)
                        log.info(
                            "job %s done in %.2fs",
                            job.id,
                            job.finished_s - job.started_s,
                        )
                    else:
                        # Stalled-then-finished: the result is dropped —
                        # the job already failed publicly.
                        log.warning(
                            "job %s finished after the watchdog abandoned "
                            "it; result dropped",
                            job.id,
                        )
                    abandoned = job.timed_out
            finally:
                job.fn = None  # drop closure references (trace data) early
            if abandoned:
                # A replacement worker already took this thread's place.
                log.info("abandoned worker for job %s retiring", job.id)
                return

    # -- stall watchdog ------------------------------------------------------

    def _spawn_replacement_locked(self) -> None:
        """Restore worker capacity after abandoning a wedged thread.

        Replacements are capped at one per original worker: a service
        wedging more than ``2 * workers`` threads has a systemic
        problem that more threads would hide, not fix.
        """
        if self._replacements >= self.workers:
            log.error(
                "job watchdog: replacement-worker cap (%d) reached; "
                "queue capacity stays degraded",
                self.workers,
            )
            return
        self._replacements += 1
        t = threading.Thread(
            target=self._worker,
            name=f"serve-job-worker-r{self._replacements}",
            daemon=True,
        )
        self._threads.append(t)
        t.start()

    def _watchdog(self) -> None:
        assert self.job_budget is not None
        interval = min(1.0, max(0.02, self.job_budget / 4))
        while not self._watchdog_stop.wait(interval):
            now = time.monotonic()
            stalled: List[str] = []
            with self._lock:
                for job in self._jobs.values():
                    if (
                        job.status != "running"
                        or job.timed_out
                        or job.started_s is None
                        or now - job.started_s <= self.job_budget
                    ):
                        continue
                    job.timed_out = True
                    job.status = "failed"
                    job.error_type = "JobStalled"
                    job.error = (
                        f"job stalled after {now - job.started_s:.1f}s: "
                        f"exceeded the {self.job_budget:g}s job wall "
                        "budget; the worker thread was abandoned and "
                        "replaced"
                    )
                    job.finished_s = now
                    self._notify(job)
                    self._spawn_replacement_locked()
                    stalled.append(job.id)
            for job_id in stalled:
                log.warning(
                    "job %s stalled past the %.3gs budget; marked failed",
                    job_id,
                    self.job_budget,
                )

    # -- shutdown ------------------------------------------------------------

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """Stop accepting jobs and shut the workers down.

        ``drain=True`` (the graceful path) lets workers finish every
        accepted job before their stop sentinel, FIFO order guaranteeing
        sentinels sort last.  ``drain=False`` marks still-queued jobs
        ``cancelled`` and only waits out the jobs already running.

        Returns ``True`` when every job reached a terminal state.  When
        ``timeout`` expires first, jobs still queued or running are
        marked ``interrupted`` (journaled as such through the observer)
        and ``False`` is returned — the caller exits anyway and a
        restart recovers them.
        """
        with self._lock:
            if not self._open:
                return True
            self._open = False
            if not drain:
                for job in self._jobs.values():
                    if job.status == "queued":
                        job.status = "cancelled"
                        job.finished_s = time.monotonic()
                        self._notify(job)
        self._watchdog_stop.set()
        for _ in self._threads:
            self._q.put(_STOP)
        deadline = None if timeout is None else time.monotonic() + timeout
        for t in self._threads:
            t.join(
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
        interrupted: List[str] = []
        with self._lock:
            for job in self._jobs.values():
                if job.status in ("queued", "running"):
                    job.status = "interrupted"
                    job.finished_s = time.monotonic()
                    self._notify(job)
                    interrupted.append(job.id)
        if interrupted:
            log.warning(
                "drain timed out after %.3gs; %d job(s) interrupted: %s",
                timeout if timeout is not None else float("nan"),
                len(interrupted),
                ", ".join(interrupted),
            )
        return not interrupted
