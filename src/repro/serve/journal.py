"""Crash-safe job journal: the durable half of the serve job queue.

The in-memory :class:`~repro.serve.jobs.JobQueue` survives a *graceful*
shutdown by draining, but a crash (``kill -9``, OOM, power loss) loses
every job the server already answered 202 for.  ``--state-dir`` fixes
that with the oldest trick in the book: an **append-only journal** of
job lifecycle transitions, fsync'd per record, replayed on startup.

Design rules, in order of importance:

* **A 202 is a promise.**  The ``submit`` record — carrying the full
  request body, so the job can be rebuilt from nothing — is written and
  fsync'd *before* the client hears 202.  A job that is journaled but
  unfinished at crash time is re-enqueued on the next start; its points
  are memoized through the shared :class:`~repro.sweep.cache.ResultCache`,
  so recovery re-runs only what the crash actually interrupted.
* **The journal must never be the thing that breaks.**  A torn final
  line (the normal artifact of dying mid-``write``) is silently dropped;
  any other unreadable or foreign-schema line is *quarantined* — copied
  to ``jobs.quarantine.jsonl`` and skipped — mirroring how
  ``ResultCache`` evicts corrupt cache entries instead of crashing.
* **Idempotent replay.**  Jobs are keyed by id + request digest; a
  duplicate ``submit`` for an id already seen is ignored (first wins),
  and transitions for ids never submitted are counted as orphans, not
  errors.  Replaying the same journal twice builds the same queue.
* **Bounded growth.**  Startup compacts the journal down to the submit
  records of still-pending jobs (atomically, via
  :func:`~repro.util.atomic.atomic_write_text`), so terminal jobs from
  past lives do not accumulate forever.

Record grammar (one JSON object per line, sorted keys)::

    {"schema": 1, "op": "submit", "job": "j000001", "kind": "sweep",
     "label": "...", "request": {...}, "digest": "<sha256>"}
    {"schema": 1, "op": "start",  "job": "j000001"}
    {"schema": 1, "op": "done",   "job": "j000001"}
    {"schema": 1, "op": "failed", "job": "j000001", "error_type": "...",
     "error": "..."}
    {"schema": 1, "op": "cancelled" | "interrupted", "job": "j000001"}

``done``/``failed``/``cancelled`` are terminal.  ``interrupted`` (a
bounded drain gave up on the job at shutdown) is *not* — an interrupted
job is exactly the kind a supervisor restart must recover.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, List, Mapping, Optional, Sequence

from repro.util.atomic import atomic_write_text
from repro.util.log import get_logger

log = get_logger("serve.journal")

#: Bump when the record grammar changes shape; foreign-schema records
#: are quarantined on replay, never guessed at.
JOURNAL_SCHEMA = 1

#: Every op the replayer understands.
JOURNAL_OPS = ("submit", "start", "done", "failed", "cancelled", "interrupted")

#: Ops after which a job needs no recovery.
_TERMINAL_OPS = ("done", "failed", "cancelled")


def request_digest(body: Mapping[str, Any]) -> str:
    """Canonical sha256 of a request body (the idempotency half of a
    job's identity; the id is the other half)."""
    blob = json.dumps(dict(body), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class JournalReplay:
    """What one :meth:`JobJournal.replay` pass found."""

    #: well-formed records read (any op)
    entries: int = 0
    #: ``submit`` records of jobs still owed work, in submission order
    pending: List[Dict[str, Any]] = field(default_factory=list)
    #: lines quarantined (corrupt JSON, foreign schema, bad shape)
    corrupt: int = 0
    #: a torn final line was dropped (normal crash artifact, not corrupt)
    truncated_tail: bool = False
    #: repeated ``submit`` records ignored (first submit wins)
    duplicates: int = 0
    #: transitions for job ids never submitted
    orphans: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "entries": self.entries,
            "recovered": len(self.pending),
            "corrupt": self.corrupt,
            "truncated_tail": self.truncated_tail,
            "duplicates": self.duplicates,
            "orphans": self.orphans,
        }


class JobJournal:
    """Append-only, fsync'd JSONL job journal under one state directory.

    Appends are serialised by an internal lock and each record is
    flushed *and* fsync'd before :meth:`append` returns — the caller may
    treat a returned append as durable.  (The fsync is the whole point;
    an unflushed journal survives exactly the crashes that never
    happen.)
    """

    def __init__(self, state_dir: "str | Path"):
        self.root = Path(state_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / "jobs.jsonl"
        self.quarantine_path = self.root / "jobs.quarantine.jsonl"
        self._lock = threading.Lock()
        self._fh: Optional[IO[str]] = None
        self._entries = 0

    # -- writing -------------------------------------------------------------

    def _open_locked(self) -> IO[str]:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, op: str, job_id: str, **fields: Any) -> None:
        """Durably append one record (write + flush + fsync)."""
        if op not in JOURNAL_OPS:
            raise ValueError(f"unknown journal op {op!r}")
        record = {"schema": JOURNAL_SCHEMA, "op": op, "job": job_id, **fields}
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            fh = self._open_locked()
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
            self._entries += 1

    def reset(self, keep: Sequence[Mapping[str, Any]] = ()) -> None:
        """Atomically compact the journal down to ``keep`` records.

        Crash-safe: the new journal is written whole and renamed over
        the old one, so a crash mid-compaction leaves the previous
        journal intact and replay simply runs again.
        """
        content = "".join(
            json.dumps(dict(r), sort_keys=True, separators=(",", ":")) + "\n"
            for r in keep
        )
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            atomic_write_text(self.path, content)
            self._entries = len(keep)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- observability -------------------------------------------------------

    @property
    def entries(self) -> int:
        """Records in the journal since the last replay/compaction."""
        return self._entries

    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    # -- replay --------------------------------------------------------------

    def _quarantine(self, line: str, reason: str) -> None:
        log.warning("quarantining journal line (%s): %.120r", reason, line)
        try:
            with open(self.quarantine_path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        except OSError as exc:  # quarantine is best-effort forensics
            log.warning("cannot write quarantine file: %s", exc)

    @staticmethod
    def _parse(line: str) -> Dict[str, Any]:
        """One journal line as a validated record dict, or ValueError."""
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ValueError("record is not an object")
        if record.get("schema") != JOURNAL_SCHEMA:
            raise ValueError(f"unknown schema version {record.get('schema')!r}")
        op = record.get("op")
        if op not in JOURNAL_OPS:
            raise ValueError(f"unknown op {op!r}")
        job = record.get("job")
        if not isinstance(job, str) or not job:
            raise ValueError("missing job id")
        if op == "submit" and not isinstance(record.get("request"), dict):
            raise ValueError("submit record has no request body")
        return record

    def replay(self) -> JournalReplay:
        """Read the journal; return pending jobs and forensics counts.

        Never raises on journal *content*: a torn tail is dropped, any
        other bad line is quarantined and skipped.
        """
        out = JournalReplay()
        try:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return out
        except OSError as exc:
            log.warning("cannot read journal %s: %s", self.path, exc)
            return out
        lines = text.split("\n")
        # A trailing newline leaves one empty string; without it the last
        # element is a potentially torn record.
        tail_is_torn_candidate = not text.endswith("\n")
        if lines and lines[-1] == "":
            lines.pop()
        submits: Dict[str, Dict[str, Any]] = {}
        state: Dict[str, str] = {}
        for i, line in enumerate(lines):
            is_tail = tail_is_torn_candidate and i == len(lines) - 1
            if not line.strip():
                continue
            try:
                record = self._parse(line)
            except ValueError as exc:
                if is_tail and isinstance(exc, json.JSONDecodeError):
                    out.truncated_tail = True
                    log.info("dropping torn journal tail: %.80r", line)
                else:
                    self._quarantine(line, str(exc))
                    out.corrupt += 1
                continue
            out.entries += 1
            op, job = record["op"], record["job"]
            if op == "submit":
                if job in submits:
                    out.duplicates += 1
                    continue
                submits[job] = record
                state[job] = "queued"
            elif job not in state:
                out.orphans += 1
            else:
                state[job] = op
        out.pending = [
            submits[job]
            for job in submits
            if state[job] not in _TERMINAL_OPS
        ]
        return out
