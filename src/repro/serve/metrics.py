"""Prometheus text exposition for the serve API (stdlib only).

:func:`render_metrics` projects :meth:`ExtrapService.stats` — the same
numbers ``GET /v1/stats`` reports as JSON — into the Prometheus text
exposition format (version 0.0.4), served at ``GET /v1/metrics``:

* ``# HELP``/``# TYPE`` comment pair per metric family;
* one ``name{label="value"} number`` sample per line;
* counters end in ``_total``, latencies use the summary
  ``_count``/``_sum`` convention.

No client library: the format is a dozen lines of string assembly, and
pulling one in for this would be the only third-party dependency in the
repo.  Label values are escaped per the spec (backslash, double quote,
newline); metric families render in a fixed order so two scrapes of an
idle server differ only in the uptime gauge.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.serve.jobs import STATUSES

#: content type for the text exposition format
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _fmt(value: Any) -> str:
    """A number in exposition syntax (integers stay integral)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _sample(name: str, labels: Mapping[str, Any], value: Any) -> str:
    if not labels:
        return f"{name} {_fmt(value)}"
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in labels.items()
    )
    return f"{name}{{{inner}}} {_fmt(value)}"


def render_metrics(stats: Dict[str, Any]) -> str:
    """The ``/v1/metrics`` body for one :meth:`ExtrapService.stats` snapshot."""
    lines: List[str] = []

    def family(name: str, kind: str, help_: str, samples: List[str]) -> None:
        lines.append(f"# HELP {name} {help_}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    family(
        "extrap_build_info",
        "gauge",
        "Build information (value is always 1).",
        [_sample("extrap_build_info", {"version": stats["version"]}, 1)],
    )
    family(
        "extrap_uptime_seconds",
        "gauge",
        "Seconds since the service started.",
        [_sample("extrap_uptime_seconds", {}, stats["uptime_s"])],
    )
    requests: Mapping[str, int] = stats["requests"]
    family(
        "extrap_requests_total",
        "counter",
        "Requests handled, by endpoint (errors count under endpoint=\"error\").",
        [
            _sample("extrap_requests_total", {"endpoint": ep}, n)
            for ep, n in sorted(requests.items())
        ],
    )
    cache = stats["cache"]
    family(
        "extrap_cache_enabled",
        "gauge",
        "Whether predict memoization is enabled.",
        [_sample("extrap_cache_enabled", {}, cache["enabled"])],
    )
    if cache["enabled"]:
        family(
            "extrap_cache_hits_total",
            "counter",
            "Predict/sweep results answered from the result cache.",
            [_sample("extrap_cache_hits_total", {}, cache["hits"])],
        )
        family(
            "extrap_cache_misses_total",
            "counter",
            "Predict/sweep results that had to simulate.",
            [_sample("extrap_cache_misses_total", {}, cache["misses"])],
        )
    jobs = stats["jobs"]
    family(
        "extrap_jobs",
        "gauge",
        "Jobs by lifecycle state.",
        [
            _sample("extrap_jobs", {"status": status}, jobs[status])
            for status in STATUSES
        ],
    )
    family(
        "extrap_job_queue_depth_limit",
        "gauge",
        "Queued-job limit before submissions are shed with 503.",
        [_sample("extrap_job_queue_depth_limit", {}, jobs["queue_depth_limit"])],
    )
    # Admission control: always rendered (zero when the limiter is off)
    # so dashboards can alert on the counters existing at 0 vs moving.
    admission: Mapping[str, Any] = stats.get(
        "admission", {"rate_limited_total": 0, "shed_total": 0}
    )
    family(
        "serve_rate_limited_total",
        "counter",
        "Requests rejected by the per-client rate limit.",
        [
            _sample(
                "serve_rate_limited_total",
                {"code": "429"},
                admission.get("rate_limited_total", 0),
            )
        ],
    )
    family(
        "serve_shed_total",
        "counter",
        "Job submissions shed because the queue was saturated or draining.",
        [
            _sample(
                "serve_shed_total", {"code": "503"}, admission.get("shed_total", 0)
            )
        ],
    )
    journal: Mapping[str, Any] = stats.get("journal", {"enabled": False})
    family(
        "extrap_journal_enabled",
        "gauge",
        "Whether crash-safe job journaling (--state-dir) is enabled.",
        [_sample("extrap_journal_enabled", {}, journal.get("enabled", False))],
    )
    if journal.get("enabled"):
        family(
            "serve_jobs_recovered_total",
            "counter",
            "Jobs re-enqueued from the journal at the last startup.",
            [
                _sample(
                    "serve_jobs_recovered_total",
                    {},
                    journal.get("recovered_total", 0),
                )
            ],
        )
        family(
            "extrap_journal_entries",
            "gauge",
            "Records in the job journal since the last compaction.",
            [_sample("extrap_journal_entries", {}, journal.get("entries", 0))],
        )
        family(
            "extrap_journal_bytes",
            "gauge",
            "Size of the job journal on disk.",
            [_sample("extrap_journal_bytes", {}, journal.get("bytes", 0))],
        )
        last = journal.get("last_replay") or {}
        family(
            "extrap_journal_last_replay_entries",
            "gauge",
            "Well-formed records read at the last journal replay.",
            [
                _sample(
                    "extrap_journal_last_replay_entries",
                    {},
                    last.get("entries", 0),
                )
            ],
        )
        family(
            "extrap_journal_last_replay_corrupt",
            "gauge",
            "Journal lines quarantined at the last replay.",
            [
                _sample(
                    "extrap_journal_last_replay_corrupt",
                    {},
                    last.get("corrupt", 0),
                )
            ],
        )
    run_samples: List[str] = []
    for kind, entry in jobs["run_seconds"].items():
        run_samples.append(
            _sample("extrap_job_run_seconds_count", {"kind": kind}, entry["count"])
        )
        run_samples.append(
            _sample("extrap_job_run_seconds_sum", {"kind": kind}, entry["sum_s"])
        )
    family(
        "extrap_job_run_seconds",
        "summary",
        "Wall-clock runtime of finished jobs, by kind.",
        run_samples,
    )
    return "\n".join(lines) + "\n"
