"""Per-client token-bucket admission control for the serve API.

One bucket per client key (the HTTP layer keys by remote address):
``burst`` tokens to start, refilled at ``rate`` tokens per second, one
token per request.  An empty bucket means the request is rejected *now*
— the server never queues rate-limited work — with an exact
``retry_after`` telling the client when one token will exist again.

The clock is injectable, which is what makes ``Retry-After`` values
deterministic in tests: with a fake clock, the same request sequence
produces byte-identical 429 responses.

Memory is bounded: at most ``max_clients`` buckets are tracked, evicted
least-recently-used.  An evicted client restarts with a full bucket —
strictly in the client's favor, so eviction can never lock anyone out.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Tuple


class RateLimiter:
    """Token buckets keyed by client, LRU-bounded, thread-safe."""

    def __init__(
        self,
        rate: float,
        burst: "int | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 4096,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0 requests/s, got {rate}")
        if burst is None:
            burst = max(1, math.ceil(rate))
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.rate = float(rate)
        self.burst = int(burst)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (tokens, last-refill stamp); insertion order is LRU
        self._buckets: "OrderedDict[str, Tuple[float, float]]" = OrderedDict()

    def allow(self, key: str) -> Tuple[bool, float]:
        """Spend one token for ``key``.

        Returns ``(True, 0.0)`` when admitted, else ``(False,
        retry_after_s)`` where ``retry_after_s`` is exactly how long
        until the bucket holds one token again.
        """
        now = self._clock()
        with self._lock:
            tokens, stamp = self._buckets.get(key, (float(self.burst), now))
            tokens = min(float(self.burst), tokens + (now - stamp) * self.rate)
            if tokens >= 1.0:
                tokens -= 1.0
                allowed, retry_after = True, 0.0
            else:
                allowed, retry_after = False, (1.0 - tokens) / self.rate
            self._buckets[key] = (tokens, now)
            self._buckets.move_to_end(key)
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        return allowed, retry_after

    def tracked_clients(self) -> int:
        with self._lock:
            return len(self._buckets)

    def config(self) -> Dict[str, float]:
        """The knobs, for ``/v1/stats``."""
        return {"rate": self.rate, "burst": self.burst}


def retry_after_header(retry_after_s: float) -> int:
    """``Retry-After`` header value for a delay: integral seconds,
    rounded up, never below 1 (a zero would invite an instant retry of
    a request that was just rejected)."""
    return max(1, math.ceil(retry_after_s))
