"""Request validation for the serve API.

Every request body is validated here before any work happens, with the
same did-you-mean spelling help the sweep spec gives
(:func:`repro.sweep.spec.suggest`): a malformed request becomes an
:class:`ApiError` carrying an HTTP status and a one-line message —
never a traceback over the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.sweep.spec import suggest

#: Hard ceiling on inline trace size; larger traces should live on the
#: server's ``--trace-root`` and be referenced by ``trace_path``.
MAX_INLINE_EVENTS = 1_000_000

#: Hard ceiling on inline trace thread counts (matches nothing physical;
#: it exists so a hostile request cannot allocate per-thread state
#: unboundedly).
MAX_INLINE_THREADS = 65_536


class ApiError(Exception):
    """A client-visible request failure: HTTP status + one-line message.

    ``retry_after`` (integral seconds) is set on admission failures —
    429 rate limiting and 503 load shedding — and becomes both the
    ``Retry-After`` response header and a ``retry_after`` field in the
    error body, so well-behaved clients can back off precisely.
    """

    def __init__(self, status: int, message: str, *, retry_after: Optional[int] = None):
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)
        self.retry_after = None if retry_after is None else int(retry_after)


def bad_request(message: str) -> ApiError:
    return ApiError(400, message)


def expect_object(body: Any, what: str) -> Mapping[str, Any]:
    """``body`` as a JSON object, or a 400."""
    if not isinstance(body, Mapping):
        raise bad_request(
            f"{what} must be a JSON object, got "
            f"{type(body).__name__ if body is not None else 'null'}"
        )
    return body


def reject_unknown_keys(
    obj: Mapping[str, Any], known: Sequence[str], what: str
) -> None:
    """400 for any key outside ``known``, with a spelling suggestion."""
    unknown = sorted(set(obj) - set(known))
    if unknown:
        raise bad_request(
            f"unknown {what} field {unknown[0]!r}"
            f"{suggest(str(unknown[0]), list(known))}; "
            f"expected a subset of {sorted(known)}"
        )


def _number(obj: Mapping[str, Any], key: str, what: str, *, minimum=None):
    value = obj.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise bad_request(f"{what} {key!r} must be a number, got {value!r}")
    if minimum is not None and value < minimum:
        raise bad_request(f"{what} {key!r} must be >= {minimum}, got {value!r}")
    return value


def _int(obj: Mapping[str, Any], key: str, what: str, *, minimum=None):
    value = obj.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise bad_request(f"{what} {key!r} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise bad_request(f"{what} {key!r} must be >= {minimum}, got {value!r}")
    return value


def _trace_fields(body: Mapping[str, Any], what: str):
    """The mutually-exclusive ``trace`` / ``trace_path`` pair."""
    inline = body.get("trace")
    path = body.get("trace_path")
    if inline is not None and path is not None:
        raise bad_request(f"{what} takes 'trace' or 'trace_path', not both")
    if inline is not None:
        inline = expect_object(inline, "'trace'")
        reject_unknown_keys(inline, ("meta", "events"), "trace")
        meta = expect_object(inline.get("meta"), "'trace.meta'")
        events = inline.get("events")
        if not isinstance(events, list) or not events:
            raise bad_request("'trace.events' must be a non-empty list")
        if len(events) > MAX_INLINE_EVENTS:
            raise ApiError(
                413,
                f"inline trace too large ({len(events)} events, limit "
                f"{MAX_INLINE_EVENTS}); store it under the server's trace "
                "root and send 'trace_path' instead",
            )
        n_threads = meta.get("n_threads")
        if isinstance(n_threads, int) and n_threads > MAX_INLINE_THREADS:
            raise bad_request(
                f"'trace.meta.n_threads' {n_threads} exceeds the limit "
                f"{MAX_INLINE_THREADS}"
            )
    if path is not None and (not isinstance(path, str) or not path):
        raise bad_request("'trace_path' must be a non-empty string")
    return inline, path


@dataclass
class PredictRequest:
    """A validated ``POST /v1/predict`` body."""

    preset: str = "distributed_memory"
    overrides: Dict[str, Any] = field(default_factory=dict)
    trace_inline: Optional[Mapping[str, Any]] = None
    trace_path: Optional[str] = None
    wall_budget: Optional[float] = None
    diagnose: bool = False
    #: validated ``repro.sampling.SamplingConfig``, or None for a full
    #: simulation
    sample: Optional[Any] = None


#: keys a predict request may carry
PREDICT_KEYS = (
    "trace",
    "trace_path",
    "preset",
    "overrides",
    "wall_budget",
    "diagnose",
    "sample",
)


def validate_predict_request(body: Any) -> PredictRequest:
    body = expect_object(body, "predict request")
    reject_unknown_keys(body, PREDICT_KEYS, "predict request")
    inline, path = _trace_fields(body, "a predict request")
    if inline is None and path is None:
        raise bad_request(
            "predict request needs a trace: inline events under 'trace' or "
            "a server-side file under 'trace_path'"
        )
    preset = body.get("preset", "distributed_memory")
    if not isinstance(preset, str):
        raise bad_request(f"'preset' must be a string, got {preset!r}")
    overrides = body.get("overrides") or {}
    overrides = dict(expect_object(overrides, "'overrides'"))
    for key in overrides:
        if not isinstance(key, str):
            raise bad_request(f"override keys must be strings, got {key!r}")
    wall_budget = _number(body, "wall_budget", "predict request")
    if wall_budget is not None and wall_budget <= 0:
        raise bad_request(f"'wall_budget' must be > 0, got {wall_budget!r}")
    diagnose = body.get("diagnose", False)
    if not isinstance(diagnose, bool):
        raise bad_request(f"'diagnose' must be a boolean, got {diagnose!r}")
    sample = None
    if body.get("sample") is not None:
        from repro.sampling import SamplingConfig

        raw = expect_object(body["sample"], "'sample'")
        try:
            sample = SamplingConfig.from_dict(raw)
        except ValueError as exc:
            raise bad_request(f"bad 'sample' config: {exc}") from None
        if diagnose:
            raise bad_request(
                "'diagnose' records a full simulation timeline; it cannot "
                "be combined with 'sample' (drop one of the two)"
            )
    return PredictRequest(
        preset=preset,
        overrides=overrides,
        trace_inline=inline,
        trace_path=path,
        wall_budget=wall_budget,
        diagnose=diagnose,
        sample=sample,
    )


@dataclass
class SweepRequest:
    """A validated ``POST /v1/sweeps`` body (spec still un-expanded)."""

    spec: Mapping[str, Any] = field(default_factory=dict)
    trace_path: Optional[str] = None
    trace_inline: Optional[Mapping[str, Any]] = None
    jobs: Optional[int] = None
    retries: Optional[int] = None
    wall_budget: Optional[float] = None


#: keys a sweep submission may carry
SWEEP_KEYS = ("spec", "trace", "trace_path", "jobs", "retries", "wall_budget")


def validate_sweep_request(body: Any) -> SweepRequest:
    body = expect_object(body, "sweep request")
    reject_unknown_keys(body, SWEEP_KEYS, "sweep request")
    spec = expect_object(body.get("spec"), "'spec'")
    inline, path = _trace_fields(body, "a sweep request")
    jobs = _int(body, "jobs", "sweep request", minimum=1)
    retries = _int(body, "retries", "sweep request", minimum=0)
    wall_budget = _number(body, "wall_budget", "sweep request")
    if wall_budget is not None and wall_budget <= 0:
        raise bad_request(f"'wall_budget' must be > 0, got {wall_budget!r}")
    return SweepRequest(
        spec=spec,
        trace_path=path,
        trace_inline=inline,
        jobs=jobs,
        retries=retries,
        wall_budget=wall_budget,
    )
