"""The serve API's domain logic, HTTP-free.

:class:`ExtrapService` implements every endpoint as a plain method
taking a parsed JSON body and returning a JSON-safe dict (raising
:class:`~repro.serve.schema.ApiError` for the 4xx/5xx contract), so the
whole API is unit-testable without opening a socket; the HTTP layer
(:mod:`repro.serve.http`) is a thin router over it.

Prediction results are memoized through the same content-addressed
:class:`~repro.sweep.cache.ResultCache` the sweep engine uses — keyed
by ``Trace.digest()`` + canonical resolved parameters — so a repeated
predict (or one whose point a sweep already computed under the same
key schema) is answered without simulating.  Cached and fresh responses
are byte-identical: fresh payloads round-trip through JSON before they
leave, exactly like the sweep executor.

Hardening notes (the service is a long-running process fed by
untrusted clients):

* ``trace_path`` is resolved strictly inside ``trace_root`` — absolute
  paths and ``..`` escapes are 400s, and symlinks cannot escape either
  (the resolved real path must stay under the root);
* inline traces are size-capped (:data:`repro.serve.schema.MAX_INLINE_EVENTS`);
* per-request wall budgets are clamped to the server's configured
  maximum, so no request can opt out of the watchdog;
* sweep submissions are bounded by the job queue's depth limit (429 on
  overflow) and their parallelism is clamped to the server's
  ``sweep_jobs``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro import __version__
from repro.core import presets
from repro.core.pipeline import extrapolate
from repro.des import SimulationStalled
from repro.metrics.report import predict_summary
from repro.serve.jobs import JobQueue, QueueClosedError, QueueFullError
from repro.serve.schema import (
    ApiError,
    PredictRequest,
    SweepRequest,
    bad_request,
    validate_predict_request,
    validate_sweep_request,
)
from repro.sweep.cache import ResultCache, result_key
from repro.sweep.executor import result_record, run_sweep
from repro.sweep.spec import SweepSpec, apply_param_overrides
from repro.trace import TraceReadError, read_trace
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace, TraceMeta
from repro.util.log import get_logger

log = get_logger("serve")

#: cache-key namespace for predict responses (bump when the payload
#: stored under a key changes shape)
PREDICT_CACHE_EXTRA = {"serve": "predict", "payload": 1}


class ExtrapService:
    """Endpoint implementations + shared state (cache, jobs, counters)."""

    def __init__(
        self,
        *,
        trace_root: "str | Path" = ".",
        cache: Optional[ResultCache] = None,
        queue_depth: int = 16,
        workers: int = 1,
        sweep_jobs: int = 1,
        max_wall_budget: Optional[float] = None,
    ):
        self.trace_root = Path(trace_root).resolve()
        self.cache = cache
        self.sweep_jobs = max(1, int(sweep_jobs))
        self.max_wall_budget = max_wall_budget
        self.jobs = JobQueue(depth=queue_depth, workers=workers)
        self._t0 = time.monotonic()
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = {}

    # -- bookkeeping ---------------------------------------------------------

    def count_request(self, endpoint: str) -> None:
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1

    def uptime_s(self) -> float:
        return time.monotonic() - self._t0

    # -- trace loading -------------------------------------------------------

    def _trace_from_path(self, rel: str) -> Trace:
        candidate = Path(rel)
        if candidate.is_absolute():
            raise bad_request(
                f"'trace_path' must be relative to the server trace root, "
                f"got absolute path {rel!r}"
            )
        resolved = (self.trace_root / candidate).resolve()
        if resolved != self.trace_root and self.trace_root not in resolved.parents:
            raise bad_request(
                f"'trace_path' {rel!r} escapes the server trace root"
            )
        if not resolved.is_file():
            raise ApiError(404, f"trace file not found: {rel}")
        try:
            return read_trace(resolved)
        except (TraceReadError, ValueError) as exc:
            raise bad_request(str(exc)) from None
        except OSError as exc:
            raise bad_request(f"cannot read trace {rel}: {exc}") from None

    @staticmethod
    def _trace_from_inline(inline: Mapping[str, Any]) -> Trace:
        try:
            meta = TraceMeta.from_dict(inline["meta"])
        except (KeyError, TypeError, ValueError) as exc:
            raise bad_request(f"bad 'trace.meta': {exc}") from None
        events = []
        for i, ev in enumerate(inline["events"]):
            if not isinstance(ev, Mapping):
                raise bad_request(
                    f"bad 'trace.events[{i}]': expected an object, got "
                    f"{type(ev).__name__}"
                )
            try:
                events.append(TraceEvent.from_dict(ev))
            except (KeyError, TypeError, ValueError) as exc:
                raise bad_request(f"bad 'trace.events[{i}]': {exc}") from None
        return Trace(meta, events)

    def _load_trace(self, req: "PredictRequest | SweepRequest") -> Trace:
        if req.trace_inline is not None:
            return self._trace_from_inline(req.trace_inline)
        assert req.trace_path is not None
        return self._trace_from_path(req.trace_path)

    def _clamp_budget(self, requested: Optional[float]) -> Optional[float]:
        if self.max_wall_budget is None:
            return requested
        if requested is None:
            return self.max_wall_budget
        return min(requested, self.max_wall_budget)

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return {"status": "ok", "version": __version__}

    def stats(self) -> Dict[str, Any]:
        cache_stats: Dict[str, Any] = {"enabled": self.cache is not None}
        if self.cache is not None:
            hits, misses = self.cache.hits, self.cache.misses
            total = hits + misses
            cache_stats.update(
                hits=hits,
                misses=misses,
                hit_rate=(hits / total) if total else None,
                root=str(self.cache.root),
            )
        with self._lock:
            requests = dict(sorted(self._requests.items()))
        return {
            "version": __version__,
            "uptime_s": round(self.uptime_s(), 3),
            "requests": requests,
            "requests_total": sum(requests.values()),
            "cache": cache_stats,
            "jobs": {
                **self.jobs.counts(),
                "queue_depth_limit": self.jobs.depth,
                "run_seconds": self.jobs.run_stats(),
            },
        }

    def predict(self, body: Any) -> Dict[str, Any]:
        req = validate_predict_request(body)
        trace = self._load_trace(req)
        try:
            params = presets.by_name(req.preset)
            params = apply_param_overrides(params, req.overrides)
        except ValueError as exc:
            raise bad_request(str(exc)) from None
        digest = trace.digest()
        # A diagnosed payload carries extra content, so it caches under
        # its own namespace — a plain predict can never replay a
        # diagnosis-shaped entry or vice versa.
        extra = (
            {**PREDICT_CACHE_EXTRA, "diagnose": 1}
            if req.diagnose
            else PREDICT_CACHE_EXTRA
        )
        key = result_key(digest, params, extra=extra)
        payload = self.cache.get(key) if self.cache is not None else None
        cached = payload is not None
        if payload is None:
            try:
                outcome = extrapolate(
                    trace,
                    params,
                    observe=req.diagnose,
                    wall_clock_budget=self._clamp_budget(req.wall_budget),
                )
            except SimulationStalled as exc:
                raise ApiError(504, str(exc)) from None
            body_out = {
                "metrics": result_record(outcome),
                "report": predict_summary(params, outcome),
            }
            if req.diagnose:
                from repro.diagnose import diagnose

                body_out["diagnosis"] = diagnose(
                    outcome.result.timeline
                ).to_dict()
            # Round-trip through JSON so a fresh response is
            # byte-identical to the cached replay of itself.
            payload = json.loads(json.dumps(body_out))
            if self.cache is not None:
                self.cache.put(key, payload)
        return {
            "cached": cached,
            "key": key,
            "preset": req.preset,
            "trace": {
                "digest": digest,
                "program": trace.meta.program,
                "n_threads": trace.meta.n_threads,
            },
            **payload,
        }

    def submit_sweep(self, body: Any) -> Dict[str, Any]:
        req = validate_sweep_request(body)
        try:
            spec = SweepSpec.from_dict(req.spec)
        except ValueError as exc:
            raise bad_request(str(exc)) from None
        trace: Optional[Trace] = None
        if req.trace_inline is not None or req.trace_path is not None:
            trace = self._load_trace(req)
        elif spec.benchmark is None:
            raise bad_request(
                "sweep needs a trace ('trace' or 'trace_path') or a "
                "'benchmark' field in the spec"
            )
        jobs = min(req.jobs or 1, self.sweep_jobs)
        wall_budget = self._clamp_budget(req.wall_budget)
        retries = req.retries if req.retries is not None else 1

        def run() -> Dict[str, Any]:
            run_ = run_sweep(
                spec,
                trace=trace,
                jobs=jobs,
                cache=self.cache,
                wall_budget=wall_budget,
                retries=retries,
            )
            artifact = json.loads(run_.to_json())
            artifact["counters"] = run_.counters.as_dict()
            return artifact

        try:
            job = self.jobs.submit(
                "sweep", run, label=f"{spec.name} ({len(spec)} points)"
            )
        except QueueFullError as exc:
            raise ApiError(429, str(exc)) from None
        except QueueClosedError as exc:
            raise ApiError(503, str(exc)) from None
        return {**job.status_dict(), "points": len(spec)}

    def job_status(self, job_id: str) -> Dict[str, Any]:
        job = self.jobs.get(job_id)
        if job is None:
            raise ApiError(404, f"unknown job {job_id!r}")
        return job.status_dict()

    def job_result(self, job_id: str) -> Dict[str, Any]:
        job = self.jobs.get(job_id)
        if job is None:
            raise ApiError(404, f"unknown job {job_id!r}")
        if job.status in ("queued", "running"):
            raise ApiError(
                409, f"job {job_id} is {job.status}; poll /v1/jobs/{job_id}"
            )
        if job.status == "cancelled":
            raise ApiError(409, f"job {job_id} was cancelled at shutdown")
        if job.status == "failed":
            raise ApiError(500, f"job {job_id} failed: {job.error_type}: {job.error}")
        return {**job.status_dict(), "result": job.result}

    # -- lifecycle -----------------------------------------------------------

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Drain (or cancel) the job queue; idempotent."""
        self.jobs.close(drain=drain, timeout=timeout)
