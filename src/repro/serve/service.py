"""The serve API's domain logic, HTTP-free.

:class:`ExtrapService` implements every endpoint as a plain method
taking a parsed JSON body and returning a JSON-safe dict (raising
:class:`~repro.serve.schema.ApiError` for the 4xx/5xx contract), so the
whole API is unit-testable without opening a socket; the HTTP layer
(:mod:`repro.serve.http`) is a thin router over it.

Prediction results are memoized through the same content-addressed
:class:`~repro.sweep.cache.ResultCache` the sweep engine uses — keyed
by ``Trace.digest()`` + canonical resolved parameters — so a repeated
predict (or one whose point a sweep already computed under the same
key schema) is answered without simulating.  Cached and fresh responses
are byte-identical: fresh payloads round-trip through JSON before they
leave, exactly like the sweep executor.

Hardening notes (the service is a long-running process fed by
untrusted clients):

* ``trace_path`` is resolved strictly inside ``trace_root`` — absolute
  paths and ``..`` escapes are 400s, and symlinks cannot escape either
  (the resolved real path must stay under the root);
* inline traces are size-capped (:data:`repro.serve.schema.MAX_INLINE_EVENTS`);
* per-request wall budgets are clamped to the server's configured
  maximum, so no request can opt out of the watchdog;
* sweep submissions are bounded by the job queue's depth limit (shed
  with 503 + ``Retry-After`` on overflow — 429 is reserved for the
  per-client rate limiter, which the HTTP layer checks first) and their
  parallelism is clamped to the server's ``sweep_jobs``.

Durability (opt-in via ``state_dir``): every accepted sweep job is
recorded in an append-only, fsync'd journal *before* the client hears
202, and every lifecycle transition after it.  On startup the journal
is replayed: jobs that were queued, running, or interrupted when the
last process died are rebuilt from their journaled request bodies and
re-enqueued under their original ids — a crashed server's clients keep
polling the same job URL and eventually get the same bytes, because the
points a job completed before the crash are memoized in the shared
``ResultCache``.  Without ``state_dir`` nothing is journaled and the
service behaves exactly as before.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro import __version__
from repro.core import presets
from repro.core.pipeline import extrapolate
from repro.des import SimulationStalled
from repro.metrics.report import predict_summary
from repro.serve.jobs import Job, JobQueue, QueueClosedError, QueueFullError
from repro.serve.journal import JobJournal, request_digest
from repro.serve.ratelimit import RateLimiter
from repro.serve.schema import (
    ApiError,
    PredictRequest,
    SweepRequest,
    bad_request,
    validate_predict_request,
    validate_sweep_request,
)
from repro.sweep.cache import ResultCache, result_key
from repro.sweep.executor import result_record, run_sweep
from repro.sweep.spec import SweepSpec, apply_param_overrides
from repro.trace import TraceReadError, read_trace
from repro.trace.events import TraceEvent
from repro.trace.trace import Trace, TraceMeta
from repro.util.log import get_logger

log = get_logger("serve")

#: cache-key namespace for predict responses (bump when the payload
#: stored under a key changes shape)
PREDICT_CACHE_EXTRA = {"serve": "predict", "payload": 1}

#: deterministic ``Retry-After`` seconds on a 503 shed (queue full)
SHED_RETRY_AFTER_S = 2

#: deterministic ``Retry-After`` seconds on a 503 while draining — the
#: supervisor restart that follows a drain takes longer than a shed
DRAIN_RETRY_AFTER_S = 5

#: chaos-harness hook (test-only): seconds each sweep job sleeps before
#: doing real work, widening the SIGKILL-mid-job window for the
#: crash-recovery tests; unset/0 in production means zero overhead
CHAOS_SLOW_JOB_ENV = "EXTRAP_SERVE_CHAOS_SLOW_JOB_S"


class ExtrapService:
    """Endpoint implementations + shared state (cache, jobs, counters)."""

    def __init__(
        self,
        *,
        trace_root: "str | Path" = ".",
        cache: Optional[ResultCache] = None,
        queue_depth: int = 16,
        workers: int = 1,
        sweep_jobs: int = 1,
        max_wall_budget: Optional[float] = None,
        state_dir: "str | Path | None" = None,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[int] = None,
        job_budget: Optional[float] = None,
        drain_timeout: Optional[float] = None,
        clock: Optional[Any] = None,
    ):
        self.trace_root = Path(trace_root).resolve()
        self.cache = cache
        self.sweep_jobs = max(1, int(sweep_jobs))
        self.max_wall_budget = max_wall_budget
        self.drain_timeout = drain_timeout
        self.limiter: Optional[RateLimiter] = None
        if rate_limit is not None:
            limiter_kwargs: Dict[str, Any] = {}
            if clock is not None:
                limiter_kwargs["clock"] = clock
            self.limiter = RateLimiter(rate_limit, rate_burst, **limiter_kwargs)
        try:
            self._chaos_slow_s = float(os.environ.get(CHAOS_SLOW_JOB_ENV) or 0.0)
        except ValueError:
            self._chaos_slow_s = 0.0
        self.journal = JobJournal(state_dir) if state_dir is not None else None
        self.recovered_total = 0
        self._last_replay: Optional[Dict[str, Any]] = None
        self.jobs = JobQueue(
            depth=queue_depth,
            workers=workers,
            observer=self._journal_transition if self.journal is not None else None,
            job_budget=job_budget,
        )
        self._t0 = time.monotonic()
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = {}
        self._rate_limited_total = 0
        self._shed_total = 0
        if self.journal is not None:
            self._recover()

    # -- bookkeeping ---------------------------------------------------------

    def count_request(self, endpoint: str) -> None:
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1

    def count_rate_limited(self) -> None:
        with self._lock:
            self._rate_limited_total += 1

    def count_shed(self) -> None:
        with self._lock:
            self._shed_total += 1

    def uptime_s(self) -> float:
        return time.monotonic() - self._t0

    # -- durability ----------------------------------------------------------

    def _journal_transition(self, job: Job) -> None:
        """JobQueue observer → journal records (queue lock held).

        Only durable jobs (those carrying a rebuildable request payload)
        are journaled; transitions of ephemeral in-process jobs would
        replay as orphans and are skipped entirely.
        """
        journal = self.journal
        if journal is None or not job.durable:
            return
        if job.status == "queued":
            if job.recovered:
                return  # the compacted journal already holds its submit
            journal.append(
                "submit",
                job.id,
                kind=job.kind,
                label=job.label,
                request=job.payload,
                digest=job.digest,
            )
        elif job.status == "running":
            journal.append("start", job.id)
        elif job.status == "done":
            journal.append("done", job.id)
        elif job.status == "failed":
            journal.append(
                "failed", job.id, error_type=job.error_type, error=job.error
            )
        elif job.status in ("cancelled", "interrupted"):
            journal.append(job.status, job.id)

    def _recover(self) -> None:
        """Replay the journal, compact it, re-enqueue unfinished jobs."""
        assert self.journal is not None
        replay = self.journal.replay()
        self._last_replay = replay.as_dict()
        # Compact *first* (atomically): a crash during recovery leaves a
        # journal that still names every pending job.
        self.journal.reset(keep=replay.pending)
        for record in replay.pending:
            self._resubmit(record)
        self.recovered_total = len(replay.pending)
        if replay.pending or replay.corrupt or replay.truncated_tail:
            log.info(
                "journal replay: %d record(s), %d job(s) recovered, "
                "%d corrupt quarantined, torn tail=%s",
                replay.entries,
                len(replay.pending),
                replay.corrupt,
                replay.truncated_tail,
            )

    def _resubmit(self, record: Mapping[str, Any]) -> None:
        """Rebuild one journaled job and re-enqueue it under its old id.

        A request that no longer validates (the trace file vanished, a
        preset was renamed) becomes a job that fails with that message —
        visible to the polling client — rather than a recovery crash.
        """
        job_id = str(record["job"])
        request = dict(record["request"])
        kind = str(record.get("kind", "sweep"))
        label = str(record.get("label", ""))
        try:
            if kind != "sweep":
                raise ApiError(500, f"cannot recover a job of kind {kind!r}")
            fn, spec = self._build_sweep_fn(request)
            label = f"{spec.name} ({len(spec)} points)"
        except ApiError as exc:
            message = f"recovery failed: {exc.message}"

            def fn(message: str = message) -> None:
                raise RuntimeError(message)

        self.jobs.submit(
            kind,
            fn,
            label=label,
            job_id=job_id,
            payload=request,
            digest=str(record.get("digest", "")),
            recovered=True,
            force=True,
        )

    # -- trace loading -------------------------------------------------------

    def _trace_from_path(self, rel: str) -> Trace:
        candidate = Path(rel)
        if candidate.is_absolute():
            raise bad_request(
                f"'trace_path' must be relative to the server trace root, "
                f"got absolute path {rel!r}"
            )
        resolved = (self.trace_root / candidate).resolve()
        if resolved != self.trace_root and self.trace_root not in resolved.parents:
            raise bad_request(
                f"'trace_path' {rel!r} escapes the server trace root"
            )
        if not resolved.is_file():
            raise ApiError(404, f"trace file not found: {rel}")
        try:
            return read_trace(resolved)
        except (TraceReadError, ValueError) as exc:
            raise bad_request(str(exc)) from None
        except OSError as exc:
            raise bad_request(f"cannot read trace {rel}: {exc}") from None

    @staticmethod
    def _trace_from_inline(inline: Mapping[str, Any]) -> Trace:
        try:
            meta = TraceMeta.from_dict(inline["meta"])
        except (KeyError, TypeError, ValueError) as exc:
            raise bad_request(f"bad 'trace.meta': {exc}") from None
        events = []
        for i, ev in enumerate(inline["events"]):
            if not isinstance(ev, Mapping):
                raise bad_request(
                    f"bad 'trace.events[{i}]': expected an object, got "
                    f"{type(ev).__name__}"
                )
            try:
                events.append(TraceEvent.from_dict(ev))
            except (KeyError, TypeError, ValueError) as exc:
                raise bad_request(f"bad 'trace.events[{i}]': {exc}") from None
        return Trace(meta, events)

    def _load_trace(self, req: "PredictRequest | SweepRequest") -> Trace:
        if req.trace_inline is not None:
            return self._trace_from_inline(req.trace_inline)
        assert req.trace_path is not None
        return self._trace_from_path(req.trace_path)

    def _clamp_budget(self, requested: Optional[float]) -> Optional[float]:
        if self.max_wall_budget is None:
            return requested
        if requested is None:
            return self.max_wall_budget
        return min(requested, self.max_wall_budget)

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return {"status": "ok", "version": __version__}

    def stats(self) -> Dict[str, Any]:
        cache_stats: Dict[str, Any] = {"enabled": self.cache is not None}
        if self.cache is not None:
            hits, misses = self.cache.hits, self.cache.misses
            total = hits + misses
            cache_stats.update(
                hits=hits,
                misses=misses,
                hit_rate=(hits / total) if total else None,
                root=str(self.cache.root),
            )
        with self._lock:
            requests = dict(sorted(self._requests.items()))
            rate_limited = self._rate_limited_total
            shed = self._shed_total
        admission: Dict[str, Any] = {
            "rate_limit": {"enabled": self.limiter is not None},
            "rate_limited_total": rate_limited,
            "shed_total": shed,
        }
        if self.limiter is not None:
            admission["rate_limit"].update(self.limiter.config())
        journal_stats: Dict[str, Any] = {"enabled": self.journal is not None}
        if self.journal is not None:
            journal_stats.update(
                path=str(self.journal.path),
                entries=self.journal.entries,
                bytes=self.journal.size_bytes(),
                recovered_total=self.recovered_total,
                last_replay=self._last_replay,
            )
        return {
            "version": __version__,
            "uptime_s": round(self.uptime_s(), 3),
            "requests": requests,
            "requests_total": sum(requests.values()),
            "cache": cache_stats,
            "admission": admission,
            "journal": journal_stats,
            "jobs": {
                **self.jobs.counts(),
                "queue_depth_limit": self.jobs.depth,
                "run_seconds": self.jobs.run_stats(),
            },
        }

    def predict(self, body: Any) -> Dict[str, Any]:
        req = validate_predict_request(body)
        trace = self._load_trace(req)
        try:
            params = presets.by_name(req.preset)
            params = apply_param_overrides(params, req.overrides)
        except ValueError as exc:
            raise bad_request(str(exc)) from None
        digest = trace.digest()
        # A diagnosed payload carries extra content, and a sampled one
        # is an estimate, so each caches under its own namespace — a
        # plain predict can never replay a diagnosis- or sample-shaped
        # entry or vice versa (and two different sampling configs never
        # answer each other either).
        if req.sample is not None:
            extra = {
                **PREDICT_CACHE_EXTRA,
                "sampling": req.sample.canonical_dict(),
            }
        elif req.diagnose:
            extra = {**PREDICT_CACHE_EXTRA, "diagnose": 1}
        else:
            extra = PREDICT_CACHE_EXTRA
        key = result_key(digest, params, extra=extra)
        payload = self.cache.get(key) if self.cache is not None else None
        cached = payload is not None
        if payload is None:
            try:
                if req.sample is not None:
                    from repro.sampling import (
                        estimate_sampled,
                        sampling_section,
                    )

                    outcome = estimate_sampled(
                        trace,
                        params,
                        req.sample,
                        wall_clock_budget=self._clamp_budget(req.wall_budget),
                    )
                else:
                    outcome = extrapolate(
                        trace,
                        params,
                        observe=req.diagnose,
                        wall_clock_budget=self._clamp_budget(req.wall_budget),
                    )
            except SimulationStalled as exc:
                raise ApiError(504, str(exc)) from None
            except ValueError as exc:
                # e.g. a zero-event trace cannot be sampled
                raise bad_request(str(exc)) from None
            report = predict_summary(params, outcome)
            if req.sample is not None:
                report += "\n" + sampling_section(outcome.result)
            body_out = {
                "metrics": result_record(outcome),
                "report": report,
            }
            if req.diagnose:
                from repro.diagnose import diagnose

                body_out["diagnosis"] = diagnose(
                    outcome.result.timeline
                ).to_dict()
            # Round-trip through JSON so a fresh response is
            # byte-identical to the cached replay of itself.
            payload = json.loads(json.dumps(body_out))
            if self.cache is not None:
                self.cache.put(key, payload)
        return {
            "cached": cached,
            "key": key,
            "preset": req.preset,
            "trace": {
                "digest": digest,
                "program": trace.meta.program,
                "n_threads": trace.meta.n_threads,
            },
            **payload,
        }

    def _build_sweep_fn(
        self, body: Any
    ) -> Tuple[Callable[[], Dict[str, Any]], SweepSpec]:
        """Validate a sweep request body into its run closure + spec.

        Shared by live submission and journal recovery, so a recovered
        job runs through exactly the code path the original would have.
        """
        req = validate_sweep_request(body)
        try:
            spec = SweepSpec.from_dict(req.spec)
        except ValueError as exc:
            raise bad_request(str(exc)) from None
        trace: Optional[Trace] = None
        if req.trace_inline is not None or req.trace_path is not None:
            trace = self._load_trace(req)
        elif spec.benchmark is None:
            raise bad_request(
                "sweep needs a trace ('trace' or 'trace_path') or a "
                "'benchmark' field in the spec"
            )
        jobs = min(req.jobs or 1, self.sweep_jobs)
        wall_budget = self._clamp_budget(req.wall_budget)
        retries = req.retries if req.retries is not None else 1
        chaos_slow_s = self._chaos_slow_s

        def run() -> Dict[str, Any]:
            if chaos_slow_s:  # test-only fault hook; see CHAOS_SLOW_JOB_ENV
                time.sleep(chaos_slow_s)
            run_ = run_sweep(
                spec,
                trace=trace,
                jobs=jobs,
                cache=self.cache,
                wall_budget=wall_budget,
                retries=retries,
            )
            artifact = json.loads(run_.to_json())
            artifact["counters"] = run_.counters.as_dict()
            return artifact

        return run, spec

    def submit_sweep(self, body: Any) -> Dict[str, Any]:
        run, spec = self._build_sweep_fn(body)
        payload: Optional[Dict[str, Any]] = None
        digest = ""
        if self.journal is not None:
            # dict(body) is JSON-safe by construction (it arrived as
            # JSON); the journal needs it to rebuild the job on restart.
            payload = dict(body)
            digest = request_digest(payload)
        try:
            job = self.jobs.submit(
                "sweep",
                run,
                label=f"{spec.name} ({len(spec)} points)",
                payload=payload,
                digest=digest,
            )
        except QueueFullError as exc:
            self.count_shed()
            raise ApiError(
                503, str(exc), retry_after=SHED_RETRY_AFTER_S
            ) from None
        except QueueClosedError as exc:
            self.count_shed()
            raise ApiError(
                503, str(exc), retry_after=DRAIN_RETRY_AFTER_S
            ) from None
        return {**job.status_dict(), "points": len(spec)}

    def job_status(self, job_id: str) -> Dict[str, Any]:
        job = self.jobs.get(job_id)
        if job is None:
            raise ApiError(404, f"unknown job {job_id!r}")
        return job.status_dict()

    def job_result(self, job_id: str) -> Dict[str, Any]:
        job = self.jobs.get(job_id)
        if job is None:
            raise ApiError(404, f"unknown job {job_id!r}")
        if job.status in ("queued", "running"):
            raise ApiError(
                409, f"job {job_id} is {job.status}; poll /v1/jobs/{job_id}"
            )
        if job.status == "cancelled":
            raise ApiError(409, f"job {job_id} was cancelled at shutdown")
        if job.status == "interrupted":
            raise ApiError(
                409,
                f"job {job_id} was interrupted at shutdown; a restart with "
                "the same --state-dir will recover it",
            )
        if job.status == "failed":
            raise ApiError(500, f"job {job_id} failed: {job.error_type}: {job.error}")
        return {**job.status_dict(), "result": job.result}

    # -- lifecycle -----------------------------------------------------------

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """Drain (or cancel) the job queue; idempotent.

        ``timeout`` defaults to the configured ``drain_timeout``; past
        it, unfinished jobs are journaled ``interrupted`` and the call
        returns ``False`` (the process should still exit 0 — a
        supervisor restart recovers the interrupted jobs).
        """
        if timeout is None:
            timeout = self.drain_timeout
        drained = self.jobs.close(drain=drain, timeout=timeout)
        if self.journal is not None:
            self.journal.close()
        return drained
