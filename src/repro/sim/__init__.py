"""The ExtraP trace-driven simulator (paper §3.3).

Replays translated per-thread traces through a discrete-event simulation
of the target environment, composed of three models:

* **processor model** (:mod:`repro.sim.processor`) — compute-time scaling
  by ``MipsRatio`` plus the remote-request service policy (no-interrupt,
  interrupt, poll);
* **remote data access model** (:mod:`repro.sim.network`) — request/reply
  messages with start-up, per-byte, per-hop and analytical contention
  costs over a configurable topology (:mod:`repro.sim.topology`);
* **barrier model** (:mod:`repro.sim.barrier`) — linear master–slave
  (Table 1), logarithmic tree, or hardware barrier.

Entry point: :class:`repro.sim.simulator.Simulator` or the convenience
:func:`repro.sim.simulator.simulate`.
"""

from repro.sim.actions import Action, ActionKind, actions_from_thread_trace
from repro.sim.cluster import ClusterNetwork
from repro.sim.messages import Message, MsgKind
from repro.sim.multithread import (
    MultithreadResult,
    MultithreadSimulator,
    assign_threads,
    simulate_multithreaded,
)
from repro.sim.network import Network
from repro.sim.result import ProcessorStats, SimulationResult
from repro.sim.simulator import Simulator, simulate
from repro.sim.topology import Topology, make_topology

__all__ = [
    "Action",
    "ActionKind",
    "ClusterNetwork",
    "Message",
    "MsgKind",
    "MultithreadResult",
    "MultithreadSimulator",
    "Network",
    "ProcessorStats",
    "SimulationResult",
    "Simulator",
    "Topology",
    "actions_from_thread_trace",
    "assign_threads",
    "make_topology",
    "simulate",
    "simulate_multithreaded",
]
