"""Barrier synchronisation models (§3.3.3, Table 1).

The default is the paper's **linear master–slave** barrier: thread 0 is
the master; every slave entering the barrier sends an arrival message to
the master and waits for a release message; the master collects all
arrivals, waits ``ModelTime``, then sends releases one by one.  With
``by_msgs`` unset, a shared-memory flag protocol is modelled instead:
arrivals increment a shared counter (no messages), the master pays one
``CheckTime`` for its successful check, slaves pay one ``ExitCheckTime``
when they notice the release.

Substitutable algorithms (the paper: "we can easily substitute other
barrier algorithms"):

* **LOG** — a binomial combining tree (message mode only; in flag mode it
  behaves like LINEAR because there are no messages to restructure);
* **HARDWARE** — a dedicated barrier network: release fires ``ModelTime``
  after the last arrival, with no message traffic.

Crucially, processors keep servicing remote data requests while they wait
at a barrier — both here and in the real pC++ runtime system — which is
why every wait goes through ``SimProcessor._await_serving``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from repro.core.parameters import BarrierAlgorithm, BarrierParams
from repro.des import Environment, Event
from repro.sim.messages import Message, MsgKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.processor import SimProcessor

_BARRIER_CAT = "barrier_overhead"


class _Episode:
    """State of one barrier episode (lazily created per barrier id)."""

    __slots__ = (
        "arrived",
        "all_arrived",
        "master_done",
        "released",
        "releases",
        "tree_arrived",
        "tree_done",
    )

    def __init__(self, env: Environment):
        self.arrived = 0
        #: fires when all n processors have arrived (flag/hardware modes)
        self.all_arrived = Event(env)
        #: fires when the master has consumed n-1 arrival messages (msg mode)
        self.master_done = Event(env)
        #: broadcast release (flag/hardware modes)
        self.released = Event(env)
        #: per-processor release events (message modes)
        self.releases: Dict[int, Event] = {}
        #: tree mode: arrival counts and completion events per node
        self.tree_arrived: Dict[int, int] = {}
        self.tree_done: Dict[int, Event] = {}


class BarrierCoordinator:
    """Shared barrier state + the participate() protocol generators."""

    MASTER = 0

    def __init__(self, env: Environment, n: int, params: BarrierParams):
        self.env = env
        self.n = n
        self.params = params
        self._episodes: Dict[int, _Episode] = {}
        #: completed episodes: barrier_id -> (last arrival time, release time)
        self.history: Dict[int, tuple] = {}
        #: timeline recorder, or None when observation is off
        self._obs = env.obs
        #: fault injector, or None for ideal (always-on-time) arrivals
        self._faults = env.faults

    def _obs_release(self, bid: int) -> None:
        """Record a barrier release (observation is on)."""
        now = self.env.now
        self._obs.instant(self.MASTER, "barrier_release", now, barrier_id=bid)
        self._obs.counter("barriers.released", now, len(self.history))

    # -- state access -------------------------------------------------------

    def _ep(self, bid: int) -> _Episode:
        if bid not in self._episodes:
            self._episodes[bid] = _Episode(self.env)
        return self._episodes[bid]

    def _release_event(self, ep: _Episode, pid: int) -> Event:
        if pid not in ep.releases:
            ep.releases[pid] = Event(self.env)
        return ep.releases[pid]

    def _tree_done_event(self, ep: _Episode, pid: int) -> Event:
        if pid not in ep.tree_done:
            ep.tree_done[pid] = Event(self.env)
        return ep.tree_done[pid]

    def tree_children(self, pid: int) -> List[int]:
        """Children of ``pid`` in the binomial combining tree."""
        children = []
        k = 1
        while k < self.n:
            if pid % (2 * k) == 0 and pid + k < self.n:
                children.append(pid + k)
            if pid % (2 * k) != 0:
                break
            k *= 2
        return children

    def tree_parent(self, pid: int) -> int:
        """Parent of ``pid`` in the binomial tree (pid 0 is the root)."""
        if pid == 0:
            raise ValueError("the root has no parent")
        return pid - (pid & -pid)

    # -- message hooks (called from SimProcessor._dispatch) --------------------

    def on_arrive(self, proc: "SimProcessor", msg: Message) -> Generator:
        """An arrival message reached ``proc`` (master or tree parent)."""
        yield from proc._busy(self.params.check_time, _BARRIER_CAT)
        ep = self._ep(msg.barrier_id)
        if self.params.algorithm is BarrierAlgorithm.LOG:
            ep.tree_arrived[proc.pid] = ep.tree_arrived.get(proc.pid, 0) + 1
            if ep.tree_arrived[proc.pid] >= len(self.tree_children(proc.pid)):
                done = self._tree_done_event(ep, proc.pid)
                if not done.triggered:
                    done.succeed()
        else:
            ep.arrived += 1
            if ep.arrived >= self.n - 1 and not ep.master_done.triggered:
                ep.master_done.succeed()

    def on_release(self, proc: "SimProcessor", msg: Message) -> Generator:
        """A release message reached slave ``proc``."""
        ev = self._release_event(self._ep(msg.barrier_id), proc.pid)
        if not ev.triggered:
            ev.succeed()
        return
        yield  # pragma: no cover - keeps the dispatch interface uniform

    # -- the protocol ------------------------------------------------------------

    def pending_barriers(self) -> List[Tuple[int, str]]:
        """Episodes not yet released, as ``(barrier_id, status)`` pairs.

        The watchdog includes these in its :class:`SimulationStalled`
        diagnosis so a barrier starved of arrivals is named directly.
        """
        pending = []
        for bid in sorted(self._episodes):
            times = self.history.get(bid)
            if times is not None and times[1] is not None:
                continue
            ep = self._episodes[bid]
            if self.params.by_msgs and self.params.algorithm is BarrierAlgorithm.LOG:
                arrived = sum(ep.tree_arrived.values())
                expected = self.n - 1
            elif (
                self.params.by_msgs
                and self.params.algorithm is not BarrierAlgorithm.HARDWARE
            ):
                arrived, expected = ep.arrived, self.n - 1
            else:
                arrived, expected = ep.arrived, self.n
            pending.append((bid, f"{arrived}/{expected} arrivals"))
        return pending

    def participate(self, proc: "SimProcessor", bid: int) -> Generator:
        """Run one processor through barrier episode ``bid``."""
        if self._faults is not None:
            delay = self._faults.barrier_arrival_delay()
            if delay > 0.0:
                # The fault plan holds this processor back: it reaches
                # the barrier late (idle time, not barrier overhead).
                proc.stats.barrier_delays += 1
                if self._obs is not None:
                    self._obs.instant(
                        proc.pid,
                        "fault.barrier_delay",
                        self.env.now,
                        barrier_id=bid,
                        delay_us=delay,
                    )
                yield proc._timeout(delay)
        alg = self.params.algorithm
        if alg is BarrierAlgorithm.HARDWARE:
            yield from self._participate_hardware(proc, bid)
        elif self.params.by_msgs and alg is BarrierAlgorithm.LOG:
            yield from self._participate_log(proc, bid)
        elif self.params.by_msgs:
            yield from self._participate_linear_msgs(proc, bid)
        else:
            yield from self._participate_flag(proc, bid)

    def _participate_linear_msgs(self, proc: "SimProcessor", bid: int) -> Generator:
        b = self.params
        ep = self._ep(bid)
        yield from proc._busy(b.entry_time, _BARRIER_CAT)
        if proc.pid == self.MASTER:
            if self.n > 1:
                yield from proc._await_serving(ep.master_done)
            self.history[bid] = (self.env.now, None)
            yield from proc._busy(b.model_time, _BARRIER_CAT)
            for slave in range(1, self.n):
                proc._send_raw(
                    Message(
                        MsgKind.BARRIER_RELEASE,
                        src=proc.pid,
                        dst=slave,
                        nbytes=b.msg_size,
                        barrier_id=bid,
                    )
                )
            self.history[bid] = (self.history[bid][0], self.env.now)
            if self._obs is not None:
                self._obs_release(bid)
        else:
            proc._send_raw(
                Message(
                    MsgKind.BARRIER_ARRIVE,
                    src=proc.pid,
                    dst=self.MASTER,
                    nbytes=b.msg_size,
                    barrier_id=bid,
                )
            )
            yield from proc._await_serving(self._release_event(ep, proc.pid))
        yield from proc._busy(b.exit_time, _BARRIER_CAT)

    def _participate_log(self, proc: "SimProcessor", bid: int) -> Generator:
        b = self.params
        ep = self._ep(bid)
        children = self.tree_children(proc.pid)
        yield from proc._busy(b.entry_time, _BARRIER_CAT)
        if children:
            done = self._tree_done_event(ep, proc.pid)
            if ep.tree_arrived.get(proc.pid, 0) >= len(children) and not done.triggered:
                done.succeed()
            yield from proc._await_serving(done)
        if proc.pid != 0:
            proc._send_raw(
                Message(
                    MsgKind.BARRIER_ARRIVE,
                    src=proc.pid,
                    dst=self.tree_parent(proc.pid),
                    nbytes=b.msg_size,
                    barrier_id=bid,
                )
            )
            yield from proc._await_serving(self._release_event(ep, proc.pid))
        else:
            self.history[bid] = (self.env.now, self.env.now)
            yield from proc._busy(b.model_time, _BARRIER_CAT)
            if self._obs is not None:
                self._obs_release(bid)
        for child in children:
            proc._send_raw(
                Message(
                    MsgKind.BARRIER_RELEASE,
                    src=proc.pid,
                    dst=child,
                    nbytes=b.msg_size,
                    barrier_id=bid,
                )
            )
        yield from proc._busy(b.exit_time, _BARRIER_CAT)

    def _participate_flag(self, proc: "SimProcessor", bid: int) -> Generator:
        b = self.params
        ep = self._ep(bid)
        yield from proc._busy(b.entry_time, _BARRIER_CAT)
        ep.arrived += 1
        if ep.arrived >= self.n and not ep.all_arrived.triggered:
            ep.all_arrived.succeed()
            self.history[bid] = (self.env.now, None)
        if proc.pid == self.MASTER:
            yield from proc._await_serving(ep.all_arrived)
            # The successful check, then lowering the barrier.
            yield from proc._busy(b.check_time, _BARRIER_CAT)
            yield from proc._busy(b.model_time, _BARRIER_CAT)
            if not ep.released.triggered:
                ep.released.succeed()
            self.history[bid] = (self.history[bid][0], self.env.now)
            if self._obs is not None:
                self._obs_release(bid)
        else:
            yield from proc._await_serving(ep.released)
            yield from proc._busy(b.exit_check_time, _BARRIER_CAT)
        yield from proc._busy(b.exit_time, _BARRIER_CAT)

    def _participate_hardware(self, proc: "SimProcessor", bid: int) -> Generator:
        b = self.params
        ep = self._ep(bid)
        yield from proc._busy(b.entry_time, _BARRIER_CAT)
        ep.arrived += 1
        if ep.arrived >= self.n and not ep.all_arrived.triggered:
            ep.all_arrived.succeed()
            self.history[bid] = (self.env.now, self.env.now + b.model_time)
            release = ep.released

            def fire(_ev, release=release):
                if not release.triggered:
                    release.succeed()
                    if self._obs is not None:
                        self._obs_release(bid)

            self.env.timeout(b.model_time).callbacks.append(fire)
        yield from proc._await_serving(ep.released)
        yield from proc._busy(b.exit_time, _BARRIER_CAT)
