"""Multi-cluster interconnect: shared memory within, messages between.

The paper (§3.3.2): "representing remote accesses generically by
messages allows us to easily accommodate a multi-clustered system with
shared memory access within a cluster and message passing between
clusters."  :class:`ClusterNetwork` does exactly that — one protocol,
two cost models selected by whether source and destination processors
share a cluster.
"""

from __future__ import annotations

from repro.core.parameters import NetworkParams
from repro.des import Environment
from repro.sim.messages import Message
from repro.sim.network import Network


class ClusterNetwork(Network):
    """A network whose intra-cluster routes use shared-memory costs.

    Parameters
    ----------
    env, n, params:
        As :class:`Network`; ``params`` prices the *inter*-cluster routes.
    cluster_size:
        Processors per cluster (processor p is in cluster ``p // size``).
    intra:
        Cost parameters for intra-cluster (shared-memory) transfers —
        typically near-zero start-up and memcpy-rate per-byte times.
        Topology/contention settings are taken from ``params``; the
        analytical contention term only applies to inter-cluster traffic
        (shared-memory transfers contend on the bus, approximated by
        their own per-byte rate).
    """

    def __init__(
        self,
        env: Environment,
        n: int,
        params: NetworkParams,
        *,
        cluster_size: int,
        intra: NetworkParams | None = None,
    ):
        super().__init__(env, n, params)
        if cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
        self.cluster_size = cluster_size
        self.intra = intra or NetworkParams(
            comm_startup_time=2.0,
            byte_transfer_time=0.005,  # 200 MB/s through shared memory
            topology=params.topology,
            hop_time=0.0,
            contention=False,
        )

    def cluster_of(self, pid: int) -> int:
        """Cluster index of processor ``pid``."""
        return pid // self.cluster_size

    def same_cluster(self, src: int, dst: int) -> bool:
        return self.cluster_of(src) == self.cluster_of(dst)

    def startup_time(self, src: int, dst: int) -> float:
        if self.same_cluster(src, dst):
            return self.intra.comm_startup_time
        return self.params.comm_startup_time

    def wire_time(self, msg: Message) -> float:
        if self.same_cluster(msg.src, msg.dst):
            p = self.intra
            payload = msg.nbytes + p.header_nbytes
            return payload * p.byte_transfer_time + p.hop_time
        return super().wire_time(msg)
