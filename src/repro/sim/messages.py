"""Simulation messages.

The paper models every inter-processor interaction — remote element
requests, replies, and (when ``BarrierByMsgs`` is set) barrier arrivals
and releases — as messages, "the natural representation for the remote
access protocol in the simulation" (§3.3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class MsgKind(enum.Enum):
    #: Remote element request: ``nbytes`` is the reply payload size.
    REQUEST = "request"
    #: Remote element reply carrying the data.
    REPLY = "reply"
    #: Remote element write (carries the data; acknowledged).
    WRITE = "write"
    #: Write acknowledgement.
    WRITE_ACK = "write_ack"
    #: Barrier arrival notification (slave -> master, or tree child -> parent).
    BARRIER_ARRIVE = "barrier_arrive"
    #: Barrier release notification (master -> slave / parent -> child).
    BARRIER_RELEASE = "barrier_release"


@dataclass
class Message:
    """One message on the simulated interconnect.

    Attributes
    ----------
    kind:
        Message type.
    src, dst:
        Source and destination processor ids.
    nbytes:
        Payload size on the wire (headers are added by the network model).
    msg_id:
        Correlates requests with replies (and writes with acks).
    barrier_id:
        Barrier episode for BARRIER_* messages.
    reply_nbytes:
        For REQUEST: how large the reply payload will be.
    inject_time, deliver_time:
        Filled by the network model (simulation bookkeeping/statistics).
        A fault-dropped message keeps ``deliver_time = -1.0``.
    attempt:
        Retransmission number under the fault-recovery protocol
        (0 = first transmission; see :mod:`repro.faults`).
    """

    kind: MsgKind
    src: int
    dst: int
    nbytes: int = 0
    msg_id: int = -1
    barrier_id: int = -1
    reply_nbytes: int = 0
    inject_time: float = -1.0
    deliver_time: float = -1.0
    attempt: int = 0

    def __repr__(self) -> str:
        extra = f" b={self.barrier_id}" if self.barrier_id >= 0 else ""
        if self.attempt:
            extra += f" retry={self.attempt}"
        return (
            f"<Msg {self.kind.value} {self.src}->{self.dst} "
            f"{self.nbytes}B id={self.msg_id}{extra}>"
        )
