"""Multithreaded processors: n threads extrapolated onto m <= n processors.

The paper's §6 extension ("we are currently modifying ExtraP to support
multithreading": extrapolate an n-thread, 1-processor run to an
n-thread, m-processor run).  Threads sharing a processor are scheduled
non-preemptively, as in the pC++ runtime: a thread holds the CPU while
computing and releases it while waiting for a remote reply or a barrier
release, at which point another ready thread (or the request servicer)
takes over.

Model simplifications relative to :class:`repro.sim.simulator.Simulator`
(documented, deliberate):

* remote-request servicing runs as a per-processor server that competes
  for the CPU with the threads — i.e. requests are serviced whenever the
  CPU is free or at thread switch points, the natural policy for a
  multithreaded runtime (the interrupt/poll policies of the
  single-thread model make little sense when blocked threads already
  yield the CPU);
* barriers use the shared-flag protocol costs (entry/exit on the CPU,
  release fires when the last of the n *threads* arrives, plus
  ``model_time`` latency).

Remote accesses between threads on the *same* processor cost only the
local service time, no network traffic — co-scheduling communicating
threads is exactly the locality effect this extension lets you study.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.core.parameters import SimulationParameters
from repro.core.translation import TranslatedProgram
from repro.des import Environment, Event, Resource, Store
from repro.sim.actions import Action, ActionKind, actions_from_thread_trace
from repro.sim.messages import Message, MsgKind
from repro.sim.network import Network
from repro.trace.trace import TraceMeta


def assign_threads(n_threads: int, n_processors: int, scheme: str = "block") -> List[int]:
    """Thread -> processor map.

    ``block`` packs consecutive threads together (good locality for
    nearest-neighbour codes); ``cyclic`` deals them round-robin.
    """
    if n_processors < 1:
        raise ValueError(f"need at least 1 processor, got {n_processors}")
    if n_processors > n_threads:
        raise ValueError(
            f"{n_processors} processors for {n_threads} threads; the "
            "multithread model requires m <= n"
        )
    if scheme == "block":
        per = -(-n_threads // n_processors)
        return [min(t // per, n_processors - 1) for t in range(n_threads)]
    if scheme == "cyclic":
        return [t % n_processors for t in range(n_threads)]
    raise ValueError(f"unknown assignment scheme {scheme!r}")


@dataclass
class MultithreadStats:
    """Per-processor accounting for the multithread model."""

    pid: int
    threads: List[int] = field(default_factory=list)
    compute_time: float = 0.0
    service_time: float = 0.0
    comm_overhead: float = 0.0
    barrier_overhead: float = 0.0
    requests_served: int = 0
    local_requests: int = 0
    end_time: float = 0.0

    @property
    def busy_total(self) -> float:
        return (
            self.compute_time
            + self.service_time
            + self.comm_overhead
            + self.barrier_overhead
        )


@dataclass
class MultithreadResult:
    """Prediction for an n-thread, m-processor execution."""

    meta: TraceMeta
    params: SimulationParameters
    n_threads: int
    n_processors: int
    assignment: List[int]
    execution_time: float
    processors: List[MultithreadStats]
    thread_end_times: List[float]
    messages: int
    message_bytes: int

    def utilization(self) -> float:
        if self.execution_time <= 0:
            return 0.0
        busy = sum(p.compute_time for p in self.processors)
        return busy / (self.execution_time * self.n_processors)


class _Barrier:
    """Flag-protocol barrier over all n threads."""

    def __init__(self, env: Environment, n_threads: int, model_time: float):
        self.env = env
        self.n = n_threads
        self.model_time = model_time
        self._arrived: Dict[int, int] = {}
        self._released: Dict[int, Event] = {}

    def release_event(self, bid: int) -> Event:
        if bid not in self._released:
            self._released[bid] = Event(self.env)
        return self._released[bid]

    def arrive(self, bid: int) -> Event:
        self._arrived[bid] = self._arrived.get(bid, 0) + 1
        ev = self.release_event(bid)
        if self._arrived[bid] >= self.n and not ev.triggered:
            ev.succeed(delay=self.model_time)
        return ev


class _MTProcessor:
    """One multithreaded processor: CPU resource + inbox + server."""

    def __init__(self, sim: "MultithreadSimulator", pid: int):
        self.sim = sim
        self.env = sim.env
        self.pid = pid
        self.cpu = Resource(sim.env, 1)
        self.inbox: Store = Store(sim.env)
        self.stats = MultithreadStats(pid=pid)

    def deliver(self, msg: Message) -> None:
        self.inbox.put(msg)

    def _on_cpu(self, duration: float, bucket: str) -> Generator:
        req = self.cpu.request()
        yield req
        if duration > 0:
            yield self.env.timeout(duration)
        self.cpu.release(req)
        setattr(self.stats, bucket, getattr(self.stats, bucket) + duration)

    def server(self) -> Generator:
        """Service requests and route replies, competing for the CPU."""
        pp = self.sim.params.processor
        while True:
            msg: Message = yield self.inbox.get()
            if msg.kind is MsgKind.REPLY:
                self.sim.pending.pop(msg.msg_id).succeed(msg)
                continue
            if msg.kind is not MsgKind.REQUEST:  # pragma: no cover
                raise AssertionError(f"unexpected {msg!r}")
            cost = (
                pp.request_service_time
                + pp.msg_build_time
                + self.sim.network.startup_time(self.pid, msg.src)
            )
            yield from self._on_cpu(cost, "service_time")
            self.stats.requests_served += 1
            self.sim.network.send(
                Message(
                    MsgKind.REPLY,
                    src=self.pid,
                    dst=msg.src,
                    nbytes=msg.reply_nbytes,
                    msg_id=msg.msg_id,
                )
            )

    def run_thread(self, tid: int, actions: List[Action]) -> Generator:
        sim = self.sim
        pp, bp = sim.params.processor, sim.params.barrier
        for action in actions:
            if action.kind is ActionKind.COMPUTE:
                yield from self._on_cpu(
                    action.duration * pp.mips_ratio, "compute_time"
                )
            elif action.kind in (ActionKind.REMOTE_READ, ActionKind.REMOTE_WRITE):
                owner_proc = sim.assignment[action.owner]
                if owner_proc == self.pid:
                    # Same processor: a local (shared-memory) access.
                    yield from self._on_cpu(
                        pp.request_service_time, "service_time"
                    )
                    self.stats.local_requests += 1
                    continue
                mid = next(sim.msg_ids)
                ev = Event(self.env)
                sim.pending[mid] = ev
                yield from self._on_cpu(
                    pp.msg_build_time
                    + sim.network.startup_time(self.pid, owner_proc),
                    "comm_overhead",
                )
                sim.network.send(
                    Message(
                        MsgKind.REQUEST,
                        src=self.pid,
                        dst=owner_proc,
                        nbytes=sim.params.network.request_nbytes,
                        msg_id=mid,
                        reply_nbytes=action.nbytes,
                    )
                )
                yield ev  # CPU is free for other threads while we wait
            elif action.kind is ActionKind.BARRIER:
                yield from self._on_cpu(bp.entry_time, "barrier_overhead")
                release = sim.barrier.arrive(action.barrier_id)
                yield release  # CPU free while waiting
                yield from self._on_cpu(
                    bp.exit_check_time + bp.exit_time, "barrier_overhead"
                )
            elif action.kind is ActionKind.MARK:
                pass
            elif action.kind is ActionKind.END:
                break
            else:  # pragma: no cover - exhaustive
                raise AssertionError(action)
        sim.thread_end_times[tid] = self.env.now
        self.stats.end_time = max(self.stats.end_time, self.env.now)
        sim.thread_done[tid].succeed()


class MultithreadSimulator:
    """Extrapolate an n-thread translated program onto m processors."""

    def __init__(
        self,
        translated: TranslatedProgram,
        params: SimulationParameters,
        n_processors: int,
        *,
        assignment_scheme: str = "block",
        network_factory=None,
    ):
        """``network_factory(env, m, network_params) -> Network`` swaps
        the interconnect model, e.g. a
        :class:`repro.sim.cluster.ClusterNetwork` for multithreaded
        processors grouped into shared-memory clusters."""
        self.translated = translated
        self.params = params
        n = translated.n_threads
        self.assignment = assign_threads(n, n_processors, assignment_scheme)
        self.env = Environment()
        make_network = network_factory or Network
        self.network = make_network(self.env, n_processors, params.network)
        self.barrier = _Barrier(self.env, n, params.barrier.model_time)
        self.msg_ids = itertools.count()
        self.pending: Dict[int, Event] = {}
        self.processors = [_MTProcessor(self, p) for p in range(n_processors)]
        self.network.attach([p.deliver for p in self.processors])
        self.thread_end_times = [0.0] * n
        self.thread_done = [Event(self.env) for _ in range(n)]
        for pid, proc in enumerate(self.processors):
            proc.stats.threads = [
                t for t, a in enumerate(self.assignment) if a == pid
            ]
        self._ran = False

    def run(self) -> MultithreadResult:
        if self._ran:
            raise RuntimeError("simulator already ran; create a new one")
        self._ran = True
        env = self.env
        for tid, tt in enumerate(self.translated.threads):
            proc = self.processors[self.assignment[tid]]
            env.process(
                proc.run_thread(tid, actions_from_thread_trace(tt)),
                name=f"thread{tid}",
            )
        for proc in self.processors:
            env.process(proc.server(), name=f"server{proc.pid}")
        done = env.all_of(self.thread_done)
        while not done.triggered:
            if env.peek() == float("inf"):
                stuck = [
                    t for t, ev in enumerate(self.thread_done) if not ev.triggered
                ]
                raise RuntimeError(f"multithread deadlock; threads {stuck} stuck")
            env.step()
        env.run(None)
        return MultithreadResult(
            meta=self.translated.meta,
            params=self.params,
            n_threads=self.translated.n_threads,
            n_processors=len(self.processors),
            assignment=list(self.assignment),
            execution_time=max(self.thread_end_times),
            processors=[p.stats for p in self.processors],
            thread_end_times=list(self.thread_end_times),
            messages=self.network.stats.messages,
            message_bytes=self.network.stats.bytes,
        )


def simulate_multithreaded(
    translated: TranslatedProgram,
    params: SimulationParameters,
    n_processors: int,
    *,
    assignment_scheme: str = "block",
) -> MultithreadResult:
    """One-call wrapper around :class:`MultithreadSimulator`."""
    return MultithreadSimulator(
        translated, params, n_processors, assignment_scheme=assignment_scheme
    ).run()
