"""The remote data access / interconnect model (§3.3.2).

Message cost structure:

* the *sender* is busy for ``msg_build_time`` (processor model) plus
  ``CommStartupTime`` (charged by the caller — see
  :meth:`repro.sim.processor.SimProcessor._send`);
* the message then travels for::

      wire = (nbytes + header) * ByteTransferTime * contention_multiplier
             + hops(src, dst) * hop_time

  and is appended to the destination's receive queue (whose serial
  draining *is* the receive-queue contention the paper simulates
  directly).

The contention multiplier is the paper's analytical contention model:
"analytical expressions of remote access delay involving the contention
factors calculated from the simulation state".  We use::

      1 + contention_factor * others_in_flight / bisection_width

where ``others_in_flight`` is the number of messages already in transit
at injection time and ``bisection_width`` comes from the topology.  A bus
(bisection 1) therefore degrades steeply under load while a fat tree
(bisection n/2) barely notices — the qualitative behaviour the model
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List

from repro.core.parameters import NetworkParams
from repro.des import Environment
from repro.sim.messages import Message, MsgKind
from repro.sim.topology import Topology, make_topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.processor import SimProcessor


@dataclass
class NetworkStats:
    """Aggregate interconnect statistics for one simulation.

    ``dropped`` / ``duplicated`` / ``total_jitter`` are only ever
    non-zero when a fault plan is attached (see :mod:`repro.faults`).
    """

    messages: int = 0
    bytes: int = 0
    total_wire_time: float = 0.0
    total_contention_delay: float = 0.0
    max_in_flight: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    dropped: int = 0
    duplicated: int = 0
    total_jitter: float = 0.0

    @property
    def mean_wire_time(self) -> float:
        return self.total_wire_time / self.messages if self.messages else 0.0


class Network:
    """Delivers messages between processors with modelled delays.

    ``placement`` maps logical processor ids (which the traces and
    simulator use) to *physical* positions in the topology — the
    "processor mapping" extrapolation axis of §2.  Hop counts use
    physical positions; everything else stays logical.  Identity by
    default.
    """

    def __init__(
        self,
        env: Environment,
        n: int,
        params: NetworkParams,
        *,
        placement: List[int] | None = None,
        record_messages: bool = False,
    ):
        self.env = env
        self.n = n
        self.params = params
        self.topology: Topology = make_topology(params.topology, n)
        if placement is None:
            placement = list(range(n))
        if sorted(placement) != list(range(n)):
            raise ValueError(
                f"placement must be a permutation of 0..{n - 1}, got {placement}"
            )
        self.placement = list(placement)
        self._in_flight = 0
        self.stats = NetworkStats()
        #: timeline recorder, or None when observation is off; sampled on
        #: state change (inject/deliver), never on a clock
        self._obs = env.obs
        #: fault injector, or None for an ideal (paper) interconnect
        self._faults = env.faults
        #: optional message log for network-level debugging: tuples of
        #: (inject_time, deliver_time, kind, src, dst, nbytes)
        self.record_messages = record_messages
        self.message_log: List[tuple] = []
        #: delivery targets, filled by the simulator once processors exist
        self._inboxes: List[Callable[[Message], None]] = []

    def attach(self, inboxes: List[Callable[[Message], None]]) -> None:
        """Register one delivery callback per processor."""
        if len(inboxes) != self.n:
            raise ValueError(f"{len(inboxes)} inboxes for {self.n} processors")
        self._inboxes = inboxes

    # -- cost model ------------------------------------------------------------

    def startup_time(self, src: int, dst: int) -> float:
        """Sender-side start-up cost for a ``src -> dst`` message.

        Uniform here; the clustered network prices intra-cluster routes
        differently.
        """
        return self.params.comm_startup_time

    def contention_multiplier(self) -> float:
        """Current analytical contention multiplier (state-dependent)."""
        if not self.params.contention:
            return 1.0
        others = self._in_flight  # messages already in transit
        return 1.0 + self.params.contention_factor * others / self.topology.bisection

    def wire_time(self, msg: Message) -> float:
        """Transit time for ``msg`` injected *now* (excludes startup)."""
        p = self.params
        payload = msg.nbytes + p.header_nbytes
        base = payload * p.byte_transfer_time
        hops = self.topology.hops(
            self.placement[msg.src], self.placement[msg.dst]
        )
        mult = self.contention_multiplier()
        extra = base * (mult - 1.0)
        self.stats.total_contention_delay += extra
        return base * mult + hops * p.hop_time

    # -- delivery ----------------------------------------------------------------

    def send(self, msg: Message) -> float:
        """Inject ``msg``; returns its transit time.

        The message is delivered to the destination inbox after the
        transit delay.  The *sender-side* startup cost is charged by the
        sending processor before calling send (it is busy time, not
        transit time).
        """
        if not self._inboxes:
            raise RuntimeError("network not attached to processors yet")
        if msg.src == msg.dst:
            raise ValueError(f"message to self: {msg!r}")
        msg.inject_time = self.env.now
        transit = self.wire_time(msg)

        dropped = duplicated = False
        if self._faults is not None:
            dropped, duplicated, extra = self._faults.message_fate(
                msg.kind.value
            )
            if extra > 0.0:
                transit += extra
                self.stats.total_jitter += extra

        msg.deliver_time = -1.0 if dropped else self.env.now + transit

        self.stats.messages += 1
        self.stats.bytes += msg.nbytes
        self.stats.by_kind[msg.kind.value] = (
            self.stats.by_kind.get(msg.kind.value, 0) + 1
        )
        if self.record_messages:
            self.message_log.append(
                (
                    msg.inject_time,
                    msg.deliver_time,
                    msg.kind.value,
                    msg.src,
                    msg.dst,
                    msg.nbytes,
                )
            )

        if dropped:
            # The message vanishes in transit: it never reaches the
            # destination's receive queue and stops loading the wire.
            self.stats.dropped += 1
            if self._obs is not None:
                self._obs.instant(
                    msg.src,
                    "fault.msg_drop",
                    self.env.now,
                    kind=msg.kind.value,
                    dst=msg.dst,
                    msg_id=msg.msg_id,
                )
                self._obs.counter(
                    "net.dropped", self.env.now, self.stats.dropped
                )
            return transit

        self._in_flight += 1
        self.stats.total_wire_time += transit
        self.stats.max_in_flight = max(self.stats.max_in_flight, self._in_flight)
        if self._obs is not None:
            now = self.env.now
            self._obs.counter("net.in_flight", now, self._in_flight)
            self._obs.counter("net.bytes_total", now, self.stats.bytes)

        deliver = self.env.timeout(transit, msg)
        deliver.callbacks.append(self._deliver)

        if duplicated:
            # A second copy arrives after an independently priced
            # transit (the network state may have changed meanwhile).
            self.stats.duplicated += 1
            dup_transit = self.wire_time(msg)
            self._in_flight += 1
            self.stats.max_in_flight = max(
                self.stats.max_in_flight, self._in_flight
            )
            dup = self.env.timeout(dup_transit, msg)
            dup.callbacks.append(self._deliver)
            if self._obs is not None:
                self._obs.instant(
                    msg.src,
                    "fault.msg_dup",
                    self.env.now,
                    kind=msg.kind.value,
                    dst=msg.dst,
                    msg_id=msg.msg_id,
                )
        return transit

    def _deliver(self, ev) -> None:
        msg: Message = ev.value
        self._in_flight -= 1
        if self._obs is not None:
            self._obs.counter("net.in_flight", self.env.now, self._in_flight)
        self._inboxes[msg.dst](msg)
