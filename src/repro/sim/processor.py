"""The processor model (§3.3.1).

Each simulated processor replays one translated thread trace:

* COMPUTE actions take their measured duration scaled by ``MipsRatio``;
  what happens when a message arrives mid-compute is the remote-request
  *service policy* — NO_INTERRUPT (queue it), INTERRUPT (preempt, pay
  ``interrupt_overhead``, service, resume), or POLL (drain the queue every
  ``poll_interval``, paying ``poll_overhead`` per check);
* REMOTE_READ actions run the request/reply protocol against the owner
  and block until the reply returns — servicing other processors'
  requests while blocked;
* BARRIER actions run the configured barrier protocol
  (:class:`repro.sim.barrier.BarrierCoordinator`), also servicing
  requests while waiting.

After its replay finishes, a processor keeps servicing incoming requests
forever (the pC++ runtime never stops serving remote accesses), so
threads that finish early still answer the stragglers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List

from repro.core.parameters import RemoteServicePolicy, SimulationParameters
from repro.des import AnyOf, Environment, Event, Store
from repro.sim.actions import Action, ActionKind
from repro.sim.messages import Message, MsgKind
from repro.sim.result import ProcessorStats
from repro.trace.events import EventKind, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.barrier import BarrierCoordinator
    from repro.sim.network import Network


class SimProcessor:
    """One simulated processor replaying one thread's actions."""

    def __init__(
        self,
        env: Environment,
        pid: int,
        params: SimulationParameters,
        network: "Network",
        coordinator: "BarrierCoordinator",
        actions: List[Action],
        msg_ids,
    ):
        self.env = env
        self.pid = pid
        self.params = params
        self.pp = params.processor
        self.np = params.network
        self.network = network
        self.coordinator = coordinator
        self.actions = actions
        self._msg_ids = msg_ids

        self.inbox: Store = Store(env)
        self.pending_replies: Dict[int, Event] = {}
        self.stats = ProcessorStats(pid=pid)
        self.out_events: List[TraceEvent] = []
        #: fires when the replay reaches THREAD_END
        self.done: Event = Event(env)
        #: replay progress: actions completed so far (the watchdog's
        #: per-processor progress token)
        self.actions_done = 0
        #: why this processor is parked, when it is (set after the
        #: retry budget for a remote access is exhausted); surfaced in
        #: the watchdog's SimulationStalled diagnosis
        self.blocked_reason: str | None = None

        # Pre-bound hot-path helpers: the replay loop busies/unblocks once
        # per action, so shave the attribute chains off every step.
        self._timeout = env.timeout
        self._stats_add = self.stats.add
        self._mips_ratio = self.pp.mips_ratio
        self._policy = self.pp.policy
        #: timeline recorder, or None when observation is off (the only
        #: cost every hook site pays then is one ``is None`` test)
        self._obs = env.obs
        self._rxq_counter = f"proc{pid}.rxq_depth"
        #: fault injector (None = ideal machine) and its plan; captured
        #: once so the fault-free replay pays one ``is None`` test
        self._faults = env.faults
        self._fault_plan = self._faults.plan if self._faults is not None else None

    # -- delivery hook for the network --------------------------------------------

    def deliver(self, msg: Message) -> None:
        self.inbox.put(msg)
        if self._obs is not None:
            self._obs.counter(
                self._rxq_counter, self.env.now, len(self.inbox.items)
            )

    # -- bookkeeping ----------------------------------------------------------

    def _record(self, kind: EventKind, **kw) -> None:
        self.out_events.append(TraceEvent(self.env.now, self.pid, kind, **kw))

    def _obs_span(self, category: str, t0: float) -> None:
        """Record a closed busy span ending now (observation is on)."""
        now = self.env.now
        self._obs.span(self.pid, category, t0, now)
        self._obs.counter(
            f"proc{self.pid}.busy_us", now, self.stats.busy_total
        )

    def _busy(self, duration: float, category: str) -> Generator:
        """Spend ``duration`` busy, attributed to ``category``."""
        if duration > 0:
            t0 = self.env.now
            yield self._timeout(duration)
            self._stats_add(category, duration)
            if self._obs is not None:
                self._obs_span(category, t0)

    # -- the replay driver ----------------------------------------------------

    def run(self) -> Generator:
        """Replay all actions, then serve requests forever."""
        self._record(EventKind.THREAD_BEGIN)
        for action in self.actions:
            if action.kind is ActionKind.COMPUTE:
                yield from self._compute(action.duration)
            elif action.kind is ActionKind.REMOTE_READ:
                yield from self._remote_access(action, write=False)
            elif action.kind is ActionKind.REMOTE_WRITE:
                yield from self._remote_access(action, write=True)
            elif action.kind is ActionKind.BARRIER:
                self._record(EventKind.BARRIER_ENTER, barrier_id=action.barrier_id)
                t0, busy0 = self.env.now, self.stats.busy_total
                yield from self.coordinator.participate(self, action.barrier_id)
                self.stats.barrier_wait += (self.env.now - t0) - (
                    self.stats.busy_total - busy0
                )
                self._record(EventKind.BARRIER_EXIT, barrier_id=action.barrier_id)
                if self._obs is not None:
                    # The whole episode (enter..exit); busy spans recorded
                    # while servicing requests inside it nest within.
                    self._obs.span(self.pid, "barrier_wait", t0, self.env.now)
            elif action.kind is ActionKind.MARK:
                self._record(EventKind.MARK, tag=action.label)
                if self._obs is not None:
                    self._obs.instant(
                        self.pid, "mark", self.env.now, tag=action.label
                    )
            elif action.kind is ActionKind.END:
                break
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unhandled action {action}")
            self.actions_done += 1
        self._record(EventKind.THREAD_END)
        self.stats.end_time = self.env.now
        if self._obs is not None:
            self._obs.instant(self.pid, "thread_end", self.env.now)
        self.done.succeed(self.env.now)
        # Keep serving remote requests for threads that are still running.
        while True:
            msg = yield self.inbox.get()
            yield from self._dispatch(msg)

    # -- compute under the three service policies -----------------------------------

    def _compute(self, duration: float) -> Generator:
        scaled = duration * self._mips_ratio
        if self._faults is not None:
            factor = self._faults.straggle_factor()
            if factor > 1.0:
                # A transient straggler interval (OS noise, throttling,
                # a co-tenant): this one action runs slowed.
                extra = scaled * (factor - 1.0)
                scaled += extra
                self.stats.stragglers += 1
                self.stats.straggler_time += extra
                self._faults.note_straggler_time(extra)
                if self._obs is not None:
                    self._obs.instant(
                        self.pid,
                        "fault.straggler",
                        self.env.now,
                        factor=factor,
                        extra_us=extra,
                    )
        policy = self._policy
        if policy is RemoteServicePolicy.NO_INTERRUPT:
            # Inlined _busy("compute"): this is the dominant action kind,
            # so skip the nested generator for it.
            if scaled > 0:
                t0 = self.env.now
                yield self._timeout(scaled)
                self._stats_add("compute", scaled)
                if self._obs is not None:
                    self._obs_span("compute", t0)
        elif policy is RemoteServicePolicy.INTERRUPT:
            yield from self._compute_interrupt(scaled)
        elif policy is RemoteServicePolicy.POLL:
            yield from self._compute_poll(scaled)
        else:  # pragma: no cover - exhaustive
            raise AssertionError(policy)

    #: Compute remainders below this are float residue, not real work
    #: (1e-9 us = 1 femtosecond; far below any model parameter).
    _EPS = 1e-9

    def _compute_interrupt(self, scaled: float) -> Generator:
        remaining = scaled
        while remaining > self._EPS:
            # Anything already queued interrupts immediately.
            if self.inbox.items:
                msg = yield self.inbox.get()
                yield from self._busy(self.pp.interrupt_overhead, "interrupt_overhead")
                self.stats.interrupts += 1
                yield from self._dispatch(msg)
                continue
            start = self.env.now
            finish = self._timeout(remaining)
            get_ev = self.inbox.get()
            yield AnyOf(self.env, [finish, get_ev])
            remaining -= self.env.now - start
            self._stats_add("compute", self.env.now - start)
            if self._obs is not None and self.env.now > start:
                self._obs_span("compute", start)
            if get_ev.triggered:
                msg = get_ev.value
                yield from self._busy(self.pp.interrupt_overhead, "interrupt_overhead")
                self.stats.interrupts += 1
                yield from self._dispatch(msg)
            else:
                self.inbox.cancel(get_ev)

    def _compute_poll(self, scaled: float) -> Generator:
        remaining = scaled
        while remaining > self._EPS:
            chunk = min(self.pp.poll_interval, remaining)
            yield from self._busy(chunk, "compute")
            remaining -= chunk
            yield from self._busy(self.pp.poll_overhead, "poll_overhead")
            self.stats.polls += 1
            while self.inbox.items:
                msg = yield self.inbox.get()
                yield from self._dispatch(msg)

    # -- remote access protocol ---------------------------------------------------

    def _remote_access(self, action: Action, write: bool) -> Generator:
        owner = action.owner
        if owner == self.pid:
            raise ValueError(
                f"processor {self.pid}: remote access to itself in the trace"
            )
        kind = EventKind.REMOTE_WRITE if write else EventKind.REMOTE_READ
        self._record(kind, owner=owner, nbytes=action.nbytes, collection=action.label)
        if self._obs is not None:
            self._obs.instant(
                self.pid,
                "remote_write" if write else "remote_read",
                self.env.now,
                owner=owner,
                nbytes=action.nbytes,
            )
        mid = next(self._msg_ids)
        reply_ev = Event(self.env)
        self.pending_replies[mid] = reply_ev
        if write:
            # The write carries the data out; the ack is small.
            msg = Message(
                MsgKind.WRITE,
                src=self.pid,
                dst=owner,
                nbytes=action.nbytes,
                msg_id=mid,
                reply_nbytes=0,
            )
        else:
            # The request is small; the reply carries the data back.
            msg = Message(
                MsgKind.REQUEST,
                src=self.pid,
                dst=owner,
                nbytes=self.np.request_nbytes,
                msg_id=mid,
                reply_nbytes=action.nbytes,
            )
        yield from self._send(msg, "comm_overhead")
        t0, busy0 = self.env.now, self.stats.busy_total
        plan = self._fault_plan
        if plan is not None and plan.request_timeout > 0.0:
            yield from self._await_reply_retry(msg, reply_ev, owner, write)
        else:
            yield from self._await_serving(reply_ev)
        self.stats.comm_wait += (self.env.now - t0) - (self.stats.busy_total - busy0)
        self.stats.remote_accesses += 1
        if self._obs is not None:
            # The whole reply-wait episode; nested busy spans are the
            # requests serviced while blocked.
            self._obs.span(self.pid, "comm_wait", t0, self.env.now)

    def _await_reply_retry(
        self, msg: Message, reply_ev: Event, owner: int, write: bool
    ) -> Generator:
        """Wait for a reply under the timeout/bounded-retry protocol.

        Each timeout retransmits the request (same ``msg_id``, so a
        slow original reply still completes the access) with the
        timeout stretched by ``retry_backoff``.  When the retry budget
        is exhausted the access is abandoned: the processor parks with
        a ``blocked_reason`` and waits indefinitely — on a fully
        partitioned route the watchdog then raises
        :class:`~repro.des.engine.SimulationStalled` naming it.
        """
        plan = self._fault_plan
        deadline = plan.request_timeout
        attempt = 0
        while True:
            timer = self._timeout(deadline)
            yield from self._await_either_serving(reply_ev, timer)
            if reply_ev.triggered:
                return
            assert timer.processed
            attempt += 1
            self.stats.timeouts += 1
            if self._obs is not None:
                self._obs.instant(
                    self.pid,
                    "fault.timeout",
                    self.env.now,
                    owner=owner,
                    msg_id=msg.msg_id,
                    attempt=attempt,
                )
            if attempt > plan.max_retries:
                self.stats.retry_giveups += 1
                self.blocked_reason = (
                    f"remote {'write' if write else 'read'} to proc {owner} "
                    f"gave up after {attempt} timeouts "
                    f"(msg {msg.msg_id}, {plan.max_retries} retries)"
                )
                if self._obs is not None:
                    self._obs.instant(
                        self.pid,
                        "fault.retry_giveup",
                        self.env.now,
                        owner=owner,
                        msg_id=msg.msg_id,
                    )
                yield from self._await_serving(reply_ev)
                self.blocked_reason = None
                return
            self.stats.retries += 1
            if self._obs is not None:
                self._obs.instant(
                    self.pid,
                    "fault.retry",
                    self.env.now,
                    owner=owner,
                    msg_id=msg.msg_id,
                    attempt=attempt,
                )
            deadline *= plan.retry_backoff
            retransmit = Message(
                msg.kind,
                src=msg.src,
                dst=msg.dst,
                nbytes=msg.nbytes,
                msg_id=msg.msg_id,
                reply_nbytes=msg.reply_nbytes,
                attempt=attempt,
            )
            yield from self._send(retransmit, "comm_overhead")

    def _await_either_serving(self, target: Event, timer: Event) -> Generator:
        """Wait for ``target`` or ``timer`` while servicing arrivals.

        ``timer`` is a :class:`~repro.des.events.Timeout`, which is born
        in the TRIGGERED (= scheduled) state — only ``processed`` says it
        actually expired, so that is what both the loop condition and the
        caller must test.
        """
        while not target.triggered and not timer.processed:
            get_ev = self.inbox.get()
            yield AnyOf(self.env, [target, timer, get_ev])
            if get_ev.triggered:
                yield from self._dispatch(get_ev.value)
            else:
                self.inbox.cancel(get_ev)

    def _send(self, msg: Message, category: str) -> Generator:
        """Build and inject a message (sender-side busy costs)."""
        cost = self.pp.msg_build_time + self.network.startup_time(
            msg.src, msg.dst
        )
        yield from self._busy(cost, category)
        self.network.send(msg)
        self.stats.messages_sent += 1

    def _send_raw(self, msg: Message) -> None:
        """Inject a message with no sender-side cost.

        Barrier synchronisation messages use this: their processor-side
        costs are the barrier model's own parameters (EntryTime,
        CheckTime, ModelTime, ExitTime — Table 1), and BarrierByMsgs only
        adds the wire transfer time.  Charging the remote-access
        CommStartupTime per barrier message would make a 32-processor
        linear barrier cost milliseconds, contradicting the paper's
        observation that 650 barriers were "insignificant" for Grid.
        """
        self.network.send(msg)
        self.stats.messages_sent += 1

    # -- message handling ------------------------------------------------------------

    def _dispatch(self, msg: Message) -> Generator:
        """Handle one received message (runs in this processor's context)."""
        self.stats.messages_received += 1
        if self._obs is not None:
            self._obs.counter(
                self._rxq_counter, self.env.now, len(self.inbox.items)
            )
        if msg.kind is MsgKind.REQUEST:
            yield from self._busy(self.pp.request_service_time, "service")
            self.stats.requests_served += 1
            yield from self._send(
                Message(
                    MsgKind.REPLY,
                    src=self.pid,
                    dst=msg.src,
                    nbytes=msg.reply_nbytes,
                    msg_id=msg.msg_id,
                ),
                "service",
            )
        elif msg.kind is MsgKind.WRITE:
            yield from self._busy(self.pp.request_service_time, "service")
            self.stats.requests_served += 1
            yield from self._send(
                Message(
                    MsgKind.WRITE_ACK,
                    src=self.pid,
                    dst=msg.src,
                    nbytes=0,
                    msg_id=msg.msg_id,
                ),
                "service",
            )
        elif msg.kind in (MsgKind.REPLY, MsgKind.WRITE_ACK):
            ev = self.pending_replies.pop(msg.msg_id, None)
            if ev is None:
                if self._faults is not None:
                    # A late duplicate: the access already completed via
                    # an earlier copy (retransmission or network
                    # duplication).  Tolerate and count it.
                    self.stats.late_replies += 1
                    if self._obs is not None:
                        self._obs.instant(
                            self.pid,
                            "fault.late_reply",
                            self.env.now,
                            msg_id=msg.msg_id,
                        )
                    return
                raise RuntimeError(
                    f"processor {self.pid}: unexpected {msg!r} "
                    "(no pending request with that id)"
                )
            ev.succeed(msg)
        elif msg.kind is MsgKind.BARRIER_ARRIVE:
            yield from self.coordinator.on_arrive(self, msg)
        elif msg.kind is MsgKind.BARRIER_RELEASE:
            yield from self.coordinator.on_release(self, msg)
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled message kind {msg.kind}")

    def _await_serving(self, target: Event) -> Generator:
        """Wait for ``target`` while servicing any messages that arrive.

        This is the "process messages while waiting" behaviour the paper
        requires of every wait state (reply waits, barrier waits).
        """
        while not target.triggered:
            get_ev = self.inbox.get()
            yield AnyOf(self.env, [target, get_ev])
            if get_ev.triggered:
                yield from self._dispatch(get_ev.value)
            else:
                self.inbox.cancel(get_ev)
        return target.value
