"""Simulation results: the predicted performance information PI2p.

:class:`SimulationResult` bundles everything the simulator produced —
predicted execution time, per-processor time breakdowns, extrapolated
per-thread event traces, network statistics — from which
:mod:`repro.metrics` derives the predicted performance metrics PM2p.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.trace.trace import ThreadTrace, TraceMeta

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.parameters import SimulationParameters
    from repro.faults.injector import FaultStats
    from repro.obs.recorder import Timeline
    from repro.perf import SimulationProfile
    from repro.sim.network import NetworkStats

#: Busy-time categories tracked per processor.
CATEGORIES = (
    "compute",
    "comm_overhead",
    "service",
    "barrier_overhead",
    "interrupt_overhead",
    "poll_overhead",
)


@dataclass
class ProcessorStats:
    """Per-processor accounting (all times in microseconds).

    Busy time is split into categories (:data:`CATEGORIES`); waits are
    measured as elapsed-minus-busy over the waiting interval, split into
    ``comm_wait`` (blocked on a remote reply) and ``barrier_wait``
    (inside a barrier episode, excluding busy barrier overhead).
    """

    pid: int = 0
    categories: Dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in CATEGORIES}
    )
    busy_total: float = 0.0
    comm_wait: float = 0.0
    barrier_wait: float = 0.0
    end_time: float = 0.0
    remote_accesses: int = 0
    requests_served: int = 0
    interrupts: int = 0
    polls: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    # -- fault-model counters (non-zero only under a fault plan) ---------
    #: remote-access retransmissions issued after a reply timeout
    retries: int = 0
    #: reply timeouts observed (every retry starts with one)
    timeouts: int = 0
    #: replies/acks that arrived for an already-completed request
    #: (late duplicates from retransmission or network duplication)
    late_replies: int = 0
    #: remote accesses abandoned after exhausting the retry budget
    retry_giveups: int = 0
    #: compute actions that ran slowed by a straggler interval
    stragglers: int = 0
    #: extra busy time those straggler intervals cost
    straggler_time: float = 0.0
    #: barrier arrivals the fault plan delayed
    barrier_delays: int = 0

    def add(self, category: str, duration: float) -> None:
        """Record ``duration`` of busy time under ``category``."""
        self.categories[category] += duration
        self.busy_total += duration

    @property
    def compute_time(self) -> float:
        return self.categories["compute"]

    @property
    def comm_time(self) -> float:
        """Total time attributable to communication (overhead + wait + service)."""
        return (
            self.categories["comm_overhead"]
            + self.categories["service"]
            + self.comm_wait
        )

    @property
    def barrier_time(self) -> float:
        """Total time attributable to barriers (overhead + wait)."""
        return self.categories["barrier_overhead"] + self.barrier_wait

    @property
    def idle_fraction(self) -> float:
        """Fraction of this processor's lifetime spent waiting."""
        if self.end_time <= 0:
            return 0.0
        return (self.comm_wait + self.barrier_wait) / self.end_time


@dataclass
class SimulationResult:
    """Everything one extrapolation run produced."""

    meta: TraceMeta
    params: "SimulationParameters"
    execution_time: float
    processors: List[ProcessorStats]
    threads: List[ThreadTrace]
    network: "NetworkStats"
    barrier_count: int = 0
    #: engine counters + phase timers; set when the simulator ran with
    #: ``profile=True`` (see :class:`repro.perf.SimulationProfile`)
    profile: Optional["SimulationProfile"] = None
    #: recorded timeline of the simulated execution; set when the
    #: simulator ran with ``observe=True`` (see :mod:`repro.obs`)
    timeline: Optional["Timeline"] = None
    #: injected-fault counters; set when the simulation ran under a
    #: non-null fault plan (see :mod:`repro.faults`)
    faults: Optional["FaultStats"] = None
    #: True when this result was *reconstituted* from representative
    #: intervals rather than simulated end-to-end (see
    #: :mod:`repro.sampling`); metrics are weight-combined estimates
    #: with error bars in :attr:`sampling`.
    estimated: bool = False
    #: sampling plan, cluster weights, and per-metric error bars for an
    #: estimated result (see :func:`repro.sampling.estimate_sampled`);
    #: None for an exact, fully-simulated result
    sampling: Optional[Dict[str, object]] = None

    @property
    def n_processors(self) -> int:
        return len(self.processors)

    # -- aggregate metrics -------------------------------------------------------

    def total_compute_time(self) -> float:
        return sum(p.compute_time for p in self.processors)

    def total_comm_time(self) -> float:
        return sum(p.comm_time for p in self.processors)

    def total_barrier_time(self) -> float:
        return sum(p.barrier_time for p in self.processors)

    def fault_totals(self) -> Dict[str, float]:
        """Summed fault-protocol counters across processors + network.

        All zeros for a fault-free run; cheap enough to call
        unconditionally from reporting code.
        """
        return {
            "retries": sum(p.retries for p in self.processors),
            "timeouts": sum(p.timeouts for p in self.processors),
            "late_replies": sum(p.late_replies for p in self.processors),
            "retry_giveups": sum(p.retry_giveups for p in self.processors),
            "stragglers": sum(p.stragglers for p in self.processors),
            "straggler_time": sum(p.straggler_time for p in self.processors),
            "barrier_delays": sum(p.barrier_delays for p in self.processors),
            "messages_dropped": self.network.dropped,
            "messages_duplicated": self.network.duplicated,
            "total_jitter": self.network.total_jitter,
        }

    def comp_comm_ratio(self) -> float:
        """Computation / communication ratio (inf when no communication)."""
        comm = self.total_comm_time()
        comp = self.total_compute_time()
        return comp / comm if comm > 0 else float("inf")

    def utilization(self) -> float:
        """Mean fraction of processor lifetime spent computing."""
        if self.execution_time <= 0 or self.n_processors == 0:
            return 0.0
        return self.total_compute_time() / (
            self.execution_time * self.n_processors
        )

    def breakdown_rows(self) -> List[List[float]]:
        """Per-processor [pid, compute, comm_overhead, service, comm_wait,
        barrier_overhead, barrier_wait, end_time] rows for reporting."""
        rows = []
        for p in self.processors:
            rows.append(
                [
                    p.pid,
                    p.categories["compute"],
                    p.categories["comm_overhead"],
                    p.categories["service"],
                    p.comm_wait,
                    p.categories["barrier_overhead"],
                    p.barrier_wait,
                    p.end_time,
                ]
            )
        return rows

    def summary(self) -> str:
        """One-line summary of the prediction."""
        marker = " [sampled estimate]" if self.estimated else ""
        return (
            f"{self.meta.program or 'program'} on {self.n_processors} procs "
            f"({self.params.name}): predicted time {self.execution_time:.1f} us, "
            f"utilization {self.utilization():.2%}, "
            f"{self.network.messages} messages / {self.network.bytes} bytes"
            f"{marker}"
        )
