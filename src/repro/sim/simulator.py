"""The trace-driven extrapolation simulator: wiring and run loop."""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.core.parameters import SimulationParameters
from repro.core.translation import TranslatedProgram
from repro.des import Environment
from repro.sim.actions import actions_from_thread_trace
from repro.sim.barrier import BarrierCoordinator
from repro.sim.network import Network
from repro.sim.processor import SimProcessor
from repro.sim.result import SimulationResult
from repro.trace.trace import ThreadTrace


class Simulator:
    """Replays a translated program under target-environment parameters.

    Usage::

        sim = Simulator(translated, params)
        result = sim.run()
    """

    def __init__(
        self,
        translated: TranslatedProgram,
        params: SimulationParameters,
        *,
        max_events: int = 50_000_000,
        network_factory=None,
        placement=None,
    ):
        """``network_factory(env, n, network_params) -> Network`` lets
        callers substitute a different interconnect model (e.g.
        :class:`repro.sim.cluster.ClusterNetwork`) — the component
        substitutability §3.3 advertises.  ``placement`` maps logical
        processors to physical topology positions (the §2 "processor
        mapping" axis); ignored when a custom factory is given.
        """
        if translated.n_threads < 1:
            raise ValueError("translated program has no threads")
        self.translated = translated
        self.params = params
        self.max_events = max_events
        n = translated.n_threads

        self.env = Environment()
        if network_factory is not None:
            self.network = network_factory(self.env, n, params.network)
            if placement is not None:
                raise ValueError(
                    "pass placement through your network_factory instead"
                )
        else:
            self.network = Network(
                self.env, n, params.network, placement=placement
            )
        self.coordinator = BarrierCoordinator(self.env, n, params.barrier)
        msg_ids = itertools.count()
        self.processors: List[SimProcessor] = [
            SimProcessor(
                self.env,
                pid,
                params,
                self.network,
                self.coordinator,
                actions_from_thread_trace(tt),
                msg_ids,
            )
            for pid, tt in enumerate(translated.threads)
        ]
        self.network.attach([p.deliver for p in self.processors])
        self._ran = False

    def run(self) -> SimulationResult:
        """Run the simulation to completion and collect the result."""
        if self._ran:
            raise RuntimeError("simulator already ran; create a new one")
        self._ran = True
        env = self.env
        for p in self.processors:
            env.process(p.run(), name=f"proc{p.pid}")
        all_done = env.all_of([p.done for p in self.processors])
        while not all_done.triggered:
            if env.processed_event_count > self.max_events:
                raise RuntimeError(
                    f"simulation exceeded {self.max_events} events "
                    "(runaway or max_events set too low)"
                )
            if env.peek() == float("inf"):
                stuck = [p.pid for p in self.processors if not p.done.triggered]
                raise RuntimeError(
                    f"simulation deadlocked; processors {stuck} never finished"
                )
            env.step()
        # Drain in-flight messages (late replies/releases already en route;
        # finished processors keep serving).
        env.run(None)

        threads = [
            ThreadTrace(p.pid, p.out_events) for p in self.processors
        ]
        return SimulationResult(
            meta=self.translated.meta,
            params=self.params,
            execution_time=max(p.stats.end_time for p in self.processors),
            processors=[p.stats for p in self.processors],
            threads=threads,
            network=self.network.stats,
            barrier_count=len(self.coordinator.history),
        )


def simulate(
    translated: TranslatedProgram,
    params: SimulationParameters,
    *,
    max_events: Optional[int] = None,
    placement=None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    kwargs = {}
    if max_events is not None:
        kwargs["max_events"] = max_events
    if placement is not None:
        kwargs["placement"] = placement
    return Simulator(translated, params, **kwargs).run()
