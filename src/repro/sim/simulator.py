"""The trace-driven extrapolation simulator: wiring and run loop."""

from __future__ import annotations

import itertools
import time
from typing import List, Optional

from repro.core.parameters import SimulationParameters
from repro.core.translation import TranslatedProgram
from repro.des import Deadlock, Environment, SimulationStalled, Watchdog
from repro.faults.injector import FaultInjector
from repro.obs.recorder import TimelineRecorder
from repro.perf import PhaseTimer, SimulationProfile
from repro.sim.actions import actions_from_thread_trace
from repro.sim.barrier import BarrierCoordinator
from repro.sim.network import Network
from repro.sim.processor import SimProcessor
from repro.sim.result import SimulationResult
from repro.trace.trace import ThreadTrace


class Simulator:
    """Replays a translated program under target-environment parameters.

    Usage::

        sim = Simulator(translated, params)
        result = sim.run()
    """

    def __init__(
        self,
        translated: TranslatedProgram,
        params: SimulationParameters,
        *,
        max_events: int = 50_000_000,
        network_factory=None,
        placement=None,
        profile: bool = False,
        observe: bool = False,
        wall_clock_budget: Optional[float] = None,
        stall_event_window: int = 2_000_000,
    ):
        """``network_factory(env, n, network_params) -> Network`` lets
        callers substitute a different interconnect model (e.g.
        :class:`repro.sim.cluster.ClusterNetwork`) — the component
        substitutability §3.3 advertises.  ``placement`` maps logical
        processors to physical topology positions (the §2 "processor
        mapping" axis); ignored when a custom factory is given.

        ``profile=True`` turns on engine counters and per-phase timers;
        the result carries a :class:`~repro.perf.SimulationProfile`.
        Profiled runs produce identical simulation results but run on
        the engine's slower instrumented loop.

        ``observe=True`` records an event-level timeline of the simulated
        execution (spans, instants, counter series — see
        :mod:`repro.obs`); the result carries it as
        ``SimulationResult.timeline``.  The recorder attaches to
        ``env.obs`` before the model components are built, so custom
        network factories inherit observation for free.  Simulation
        results are identical with it on or off.

        When ``params.faults`` is a non-null
        :class:`~repro.faults.plan.FaultPlan`, a
        :class:`~repro.faults.injector.FaultInjector` attaches to
        ``env.faults`` the same way (so custom network factories
        inherit fault injection too); a null or absent plan attaches
        nothing and stays byte-identical to the ideal machine.

        ``wall_clock_budget`` (real seconds, None = unlimited) and
        ``stall_event_window`` (events without forward progress before
        the run is declared stuck) configure the watchdog; either
        trigger raises :class:`~repro.des.engine.SimulationStalled`
        naming the blocked processors and pending barriers instead of
        hanging.
        """
        if translated.n_threads < 1:
            raise ValueError("translated program has no threads")
        self.translated = translated
        self.params = params
        self.max_events = max_events
        self.wall_clock_budget = wall_clock_budget
        self.stall_event_window = stall_event_window
        n = translated.n_threads

        self.env = Environment()
        self.recorder: Optional[TimelineRecorder] = None
        if observe:
            self.recorder = TimelineRecorder()
            self.env.obs = self.recorder
        self.injector: Optional[FaultInjector] = None
        fault_plan = getattr(params, "faults", None)
        if fault_plan is not None and not fault_plan.is_null():
            self.injector = FaultInjector(fault_plan)
            self.env.faults = self.injector
        self.profile: Optional[SimulationProfile] = None
        if profile:
            self.profile = SimulationProfile(
                counters=self.env.enable_profiling(),
                timers=PhaseTimer(self.env),
            )
        if network_factory is not None:
            self.network = network_factory(self.env, n, params.network)
            if placement is not None:
                raise ValueError(
                    "pass placement through your network_factory instead"
                )
        else:
            self.network = Network(
                self.env, n, params.network, placement=placement
            )
        self.coordinator = BarrierCoordinator(self.env, n, params.barrier)
        msg_ids = itertools.count()
        self.processors: List[SimProcessor] = [
            SimProcessor(
                self.env,
                pid,
                params,
                self.network,
                self.coordinator,
                actions_from_thread_trace(tt),
                msg_ids,
            )
            for pid, tt in enumerate(translated.threads)
        ]
        self.network.attach([p.deliver for p in self.processors])
        self._ran = False

    def run(self) -> SimulationResult:
        """Run the simulation to completion and collect the result."""
        if self._ran:
            raise RuntimeError("simulator already ran; create a new one")
        self._ran = True
        wall0 = time.perf_counter()
        env = self.env
        timers = self.profile.timers if self.profile is not None else None

        if timers is not None:
            with timers.phase("spawn"):
                self._spawn()
            with timers.phase("replay"):
                self._replay()
            with timers.phase("drain"):
                env.run(None)
            with timers.phase("collect"):
                result = self._collect()
        else:
            self._spawn()
            self._replay()
            # Drain in-flight messages (late replies/releases already en
            # route; finished processors keep serving).
            env.run(None)
            result = self._collect()

        if self.profile is not None:
            self.profile.wall_time_s = time.perf_counter() - wall0
            self.profile.sim_time_us = env.now
            result.profile = self.profile
        return result

    def _spawn(self) -> None:
        for p in self.processors:
            self.env.process(p.run(), name=f"proc{p.pid}")

    def _replay(self) -> None:
        """Run until every processor's replay is done (the hot loop).

        The loop drains the event queue in watchdog-sized chunks; after
        each chunk the watchdog compares wall clock and forward
        progress so a stuck run (bad fault plan, malformed trace)
        degrades to a diagnosable :class:`SimulationStalled` instead of
        a hang or a bare deadlock.
        """
        env = self.env
        all_done = env.all_of([p.done for p in self.processors])
        watchdog = Watchdog(
            wall_clock_budget=self.wall_clock_budget,
            stall_event_window=self.stall_event_window,
        )
        while True:
            remaining = self.max_events - env.processed_event_count
            if remaining <= 0:
                raise RuntimeError(
                    f"simulation exceeded {self.max_events} events "
                    "(runaway or max_events set too low)"
                )
            try:
                if env.run_batched(
                    all_done,
                    max_events=min(remaining, watchdog.check_interval),
                ):
                    return
            except Deadlock:
                raise self._stalled(
                    "the event queue drained with processors still blocked"
                ) from None
            reason = watchdog.check(
                env.processed_event_count, self._progress()
            )
            if reason is not None:
                raise self._stalled(reason)

    def _progress(self):
        """Watchdog progress token: changes whenever real work completed."""
        done = 0
        actions = 0
        for p in self.processors:
            if p.done.triggered:
                done += 1
            actions += p.actions_done
        return done, actions

    def _stalled(self, reason: str) -> SimulationStalled:
        """Build a one-line :class:`SimulationStalled` diagnosis."""
        blocked = [
            (p.pid, p.blocked_reason or "replay not finished")
            for p in self.processors
            if not p.done.triggered
        ]
        pending = self.coordinator.pending_barriers()
        parts = [f"simulation stalled at t={self.env.now:.1f} us: {reason}"]
        if blocked:
            shown = ", ".join(f"proc {pid}: {why}" for pid, why in blocked[:4])
            if len(blocked) > 4:
                shown += f", and {len(blocked) - 4} more"
            parts.append(f"blocked processors [{shown}]")
        if pending:
            shown = ", ".join(
                f"barrier {bid} ({status})" for bid, status in pending[:3]
            )
            if len(pending) > 3:
                shown += f", and {len(pending) - 3} more"
            parts.append(f"pending {shown}")
        return SimulationStalled(
            "; ".join(parts), blocked=blocked, pending_barriers=pending
        )

    def _collect(self) -> SimulationResult:
        threads = [
            ThreadTrace(p.pid, p.out_events) for p in self.processors
        ]
        execution_time = max(p.stats.end_time for p in self.processors)
        timeline = None
        if self.recorder is not None:
            timeline = self.recorder.finalize(
                n_procs=len(self.processors),
                end_time=execution_time,
                program=self.translated.meta.program or "",
                params_name=self.params.name,
            )
        return SimulationResult(
            meta=self.translated.meta,
            params=self.params,
            execution_time=execution_time,
            processors=[p.stats for p in self.processors],
            threads=threads,
            network=self.network.stats,
            barrier_count=len(self.coordinator.history),
            timeline=timeline,
            faults=self.injector.stats if self.injector is not None else None,
        )


def simulate(
    translated: TranslatedProgram,
    params: SimulationParameters,
    *,
    max_events: Optional[int] = None,
    placement=None,
    profile: bool = False,
    observe: bool = False,
    wall_clock_budget: Optional[float] = None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    kwargs = {}
    if max_events is not None:
        kwargs["max_events"] = max_events
    if placement is not None:
        kwargs["placement"] = placement
    if profile:
        kwargs["profile"] = True
    if observe:
        kwargs["observe"] = True
    if wall_clock_budget is not None:
        kwargs["wall_clock_budget"] = wall_clock_budget
    return Simulator(translated, params, **kwargs).run()
