"""Interconnection network topologies.

The remote data access model charges per-hop switching latency and scales
its analytical contention term by the topology's *bisection width* — the
number of links that concurrent traffic can spread across.  Each topology
provides:

* ``hops(src, dst)`` — path length between two processors;
* ``bisection`` — bisection width (capacity proxy for contention);
* ``diameter`` — maximum hop count (reporting aid).

Supported: ``crossbar``, ``bus``, ``ring``, ``mesh2d``, ``torus2d``,
``hypercube`` (n rounded up to a power of two), ``fattree`` (4-ary fat
tree, the CM-5 data network).
"""

from __future__ import annotations

import math
from typing import Dict, Type


class Topology:
    """Base class: a topology over ``n`` processors."""

    name = "abstract"

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"need at least 1 processor, got {n}")
        self.n = n

    def hops(self, src: int, dst: int) -> int:
        """Number of network hops between two processors."""
        raise NotImplementedError

    @property
    def bisection(self) -> int:
        """Bisection width (>= 1)."""
        raise NotImplementedError

    @property
    def diameter(self) -> int:
        """Maximum hops over all processor pairs.

        Node 0's eccentricity is not enough in general (e.g. a truncated
        hypercube's farthest pair need not involve node 0), so this is
        the true all-pairs maximum; n is small (<= machine size).
        """
        return max(
            (
                self.hops(s, d)
                for s in range(self.n)
                for d in range(s + 1, self.n)
            ),
            default=0,
        )

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.n and 0 <= dst < self.n):
            raise IndexError(f"processor pair ({src}, {dst}) out of range 0..{self.n - 1}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} n={self.n}>"


class Crossbar(Topology):
    """Full crossbar: one hop between any pair, bisection n/2."""

    name = "crossbar"

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return 0 if src == dst else 1

    @property
    def bisection(self) -> int:
        return max(1, self.n // 2)


class Bus(Topology):
    """Shared bus: one hop, but a single shared link (bisection 1)."""

    name = "bus"

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return 0 if src == dst else 1

    @property
    def bisection(self) -> int:
        return 1


class Ring(Topology):
    """Bidirectional ring."""

    name = "ring"

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        d = abs(src - dst)
        return min(d, self.n - d)

    @property
    def bisection(self) -> int:
        return 2 if self.n > 2 else 1


class Mesh2D(Topology):
    """2-D mesh on a near-square grid (row-major numbering)."""

    name = "mesh2d"

    def __init__(self, n: int):
        super().__init__(n)
        self.cols = max(1, math.isqrt(n))
        self.rows = -(-n // self.cols)

    def _coords(self, p: int) -> tuple[int, int]:
        return divmod(p, self.cols)

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    @property
    def bisection(self) -> int:
        return max(1, min(self.rows, self.cols))


class Torus2D(Mesh2D):
    """2-D torus (wraparound mesh)."""

    name = "torus2d"

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)

    @property
    def bisection(self) -> int:
        return max(1, 2 * min(self.rows, self.cols))


class Hypercube(Topology):
    """Binary hypercube; dimension = ceil(log2 n)."""

    name = "hypercube"

    def __init__(self, n: int):
        super().__init__(n)
        self.dim = max(1, (n - 1).bit_length()) if n > 1 else 0

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return (src ^ dst).bit_count()

    @property
    def bisection(self) -> int:
        return max(1, 2 ** max(0, self.dim - 1))


class FatTree(Topology):
    """4-ary fat tree (the CM-5 data network).

    Processors are leaves; the hop count between two leaves is twice the
    height of their lowest common ancestor (up then down).  The fat tree
    keeps full bisection bandwidth by doubling link capacity per level,
    so bisection ~ n/2.
    """

    name = "fattree"
    arity = 4

    def __init__(self, n: int):
        super().__init__(n)
        self.height = 0
        cap = 1
        while cap < n:
            cap *= self.arity
            self.height += 1

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        if src == dst:
            return 0
        a, b, level = src, dst, 0
        while a != b:
            a //= self.arity
            b //= self.arity
            level += 1
        return 2 * level

    @property
    def bisection(self) -> int:
        return max(1, self.n // 2)


_TOPOLOGIES: Dict[str, Type[Topology]] = {
    cls.name: cls
    for cls in (Crossbar, Bus, Ring, Mesh2D, Torus2D, Hypercube, FatTree)
}


def make_topology(name: str, n: int) -> Topology:
    """Create a topology by name over ``n`` processors."""
    try:
        cls = _TOPOLOGIES[name.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; available: {sorted(_TOPOLOGIES)}"
        ) from None
    return cls(n)


def available_topologies() -> list[str]:
    """Names of all registered topologies."""
    return sorted(_TOPOLOGIES)
