"""repro.sweep — parallel design-space exploration with result caching.

The paper asks one what-if question at a time; this subsystem asks them
in bulk.  A declarative :class:`SweepSpec` (grid or point list over
parameter fields, presets, fault plans, thread counts) expands into a
deterministic point sequence; :func:`run_sweep` fans the points out
across CPU cores with a serial fallback, answers repeats from a
content-addressed on-disk :class:`ResultCache`, and the
:mod:`repro.sweep.analyze` helpers aggregate the outcomes into
comparison tables, a best configuration, and a 2-objective Pareto
frontier.  ``extrap sweep run|stats|prune`` is the CLI face.

Guarantees the rest of the repo relies on:

* ``jobs=N`` output is byte-identical to ``jobs=1`` (ordered
  collection by point index);
* a second run of the same spec over the same trace is answered
  entirely from cache (content addressing over trace digest +
  canonical parameters + package version);
* a corrupted cache entry is a miss, never a crash.
"""

from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache, result_key
from repro.sweep.executor import (
    ParallelExecutor,
    PointRecord,
    SweepRun,
    TaskOutcome,
    extrapolate_many,
    run_sweep,
)
from repro.sweep.spec import SweepPoint, SweepSpec, params_canonical_dict

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ParallelExecutor",
    "PointRecord",
    "ResultCache",
    "SweepPoint",
    "SweepRun",
    "SweepSpec",
    "TaskOutcome",
    "extrapolate_many",
    "params_canonical_dict",
    "result_key",
    "run_sweep",
]
