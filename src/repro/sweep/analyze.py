"""Sweep result aggregation: tables, best-config selection, Pareto fronts.

Everything here consumes the :class:`~repro.sweep.executor.SweepRun`
produced by the executor and renders comparison artifacts in the same
spirit as :class:`repro.experiments.base.ExperimentResult` — a table of
every point, the winner under one objective, and the 2-objective Pareto
frontier for the classic design-space trade-off (predicted time vs.
total message bytes by default: how much faster is a configuration, and
how much interconnect traffic does it buy that speed with).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.sweep.executor import PointRecord, SweepRun
from repro.util.tables import format_table

#: Default 2-objective trade-off (both minimised).
DEFAULT_OBJECTIVES: Tuple[str, str] = ("predicted_time_us", "message_bytes")


def ok_records(run: SweepRun) -> List[PointRecord]:
    """Successful points, in spec order."""
    return [r for r in run.records if r.ok]


def best_record(
    run: SweepRun, objective: str = "predicted_time_us"
) -> PointRecord:
    """The point minimising ``objective`` (ties go to the lowest index)."""
    candidates = ok_records(run)
    if not candidates:
        raise ValueError(f"sweep {run.spec.name!r} produced no successful points")
    return min(candidates, key=lambda r: (r.result[objective], r.point.index))


def pareto_front(
    run: SweepRun, objectives: Sequence[str] = DEFAULT_OBJECTIVES
) -> List[PointRecord]:
    """Non-dominated points under ``objectives`` (all minimised).

    A point is dominated when another point is no worse on every
    objective and strictly better on at least one.  The front is
    returned sorted by the first objective (ties by point index), so
    its order — like everything else in a sweep — is deterministic.
    """
    if len(objectives) < 2:
        raise ValueError("pareto_front needs at least 2 objectives")
    candidates = ok_records(run)

    def values(rec: PointRecord) -> Tuple[float, ...]:
        return tuple(float(rec.result[obj]) for obj in objectives)

    front = []
    for rec in candidates:
        v = values(rec)
        dominated = any(
            other is not rec
            and all(o <= s for o, s in zip(values(other), v))
            and any(o < s for o, s in zip(values(other), v))
            for other in candidates
        )
        if not dominated:
            front.append(rec)
    front.sort(key=lambda r: (values(r)[0], r.point.index))
    return front


def results_table(run: SweepRun) -> str:
    """One row per point: the sweep's comparison table."""
    ok = ok_records(run)
    base = min((r.result["predicted_time_us"] for r in ok), default=0.0)
    rows = []
    for rec in run.records:
        if rec.ok:
            r = rec.result
            rows.append(
                [
                    rec.point.index,
                    rec.point.label(),
                    r["predicted_time_us"],
                    (r["predicted_time_us"] / base) if base > 0 else float("nan"),
                    r["utilization"],
                    r["message_count"],
                    r["message_bytes"],
                ]
            )
        else:
            rows.append(
                [rec.point.index, rec.point.label(), f"FAILED: {rec.error_type}"]
                + [""] * 4
            )
    return format_table(
        ["#", "point", "predicted us", "vs best", "util", "msgs", "msg bytes"],
        rows,
        title=f"sweep {run.spec.name!r} over preset {run.spec.preset!r} "
        f"({len(run.records)} points)",
    )


def to_experiment_result(run: SweepRun) -> ExperimentResult:
    """Adapt a sweep into the experiment-result shape (series over
    point index) so existing plot/CSV tooling applies unchanged."""
    series: Dict[str, Dict[int, float]] = {
        "predicted time (us)": {},
        "message bytes": {},
    }
    for rec in ok_records(run):
        series["predicted time (us)"][rec.point.index] = rec.result[
            "predicted_time_us"
        ]
        series["message bytes"][rec.point.index] = float(
            rec.result["message_bytes"]
        )
    result = ExperimentResult(
        name=f"sweep-{run.spec.name}",
        title=f"Design-space sweep {run.spec.name!r} ({run.spec.preset} base)",
        series=series,
        ylabel="value",
    )
    for rec in run.records:
        if not rec.ok:
            result.notes.append(
                f"point {rec.point.index} ({rec.point.label()}) failed: "
                f"{rec.error_type}: {rec.error}"
            )
    return result


def format_run(run: SweepRun) -> str:
    """The full stdout report for ``extrap sweep run``.

    Deterministic for a given spec + results: no wall times, job
    counts, or cache state appear here (those go to the counters line
    and the log).
    """
    parts = [results_table(run)]
    ok = ok_records(run)
    if ok:
        best = best_record(run)
        parts.append(
            f"best config: #{best.point.index} {best.point.label()} "
            f"({best.result['predicted_time_us']:.1f} us)"
        )
        front = pareto_front(run)
        lines = ["pareto front (predicted time vs message bytes):"]
        for rec in front:
            lines.append(
                f"  #{rec.point.index} {rec.point.label()}: "
                f"{rec.result['predicted_time_us']:.1f} us, "
                f"{rec.result['message_bytes']} bytes"
            )
        parts.append("\n".join(lines))
    return "\n\n".join(parts)
