"""Content-addressed on-disk cache for sweep point results.

A cache entry is keyed by the SHA-256 of everything that determines a
point's result: the trace digest (:meth:`repro.trace.trace.Trace.digest`),
the canonicalised resolved parameter dict
(:func:`repro.sweep.spec.params_canonical_dict`), and the package
version — so a repeated sweep is near-free, while editing the spec,
re-measuring the trace, or upgrading the package all invalidate exactly
the entries they should.

Layout: ``<root>/<key[:2]>/<key>.json`` (two-level fan-out keeps
directories small on big sweeps).  Entries are written through
:func:`repro.util.atomic.atomic_write`, so concurrent sweeps and
crashes can never leave a truncated entry; a corrupted or
foreign-schema entry is treated as a miss and replaced, never a crash.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro import __version__
from repro.core.parameters import SimulationParameters
from repro.sweep.spec import params_canonical_dict
from repro.util.atomic import atomic_write_text
from repro.util.log import get_logger

log = get_logger("sweep.cache")

#: Bump when the cached result payload changes shape.
CACHE_SCHEMA = 1

#: Default cache root (relative to the working directory).
DEFAULT_CACHE_DIR = ".extrap-cache"


def result_key(
    trace_digest: str,
    params: SimulationParameters,
    *,
    version: str = __version__,
    extra: Optional[Mapping[str, Any]] = None,
) -> str:
    """Content address (hex SHA-256) for one extrapolation result."""
    material = {
        "schema": CACHE_SCHEMA,
        "trace": trace_digest,
        "params": params_canonical_dict(params),
        "version": version,
    }
    if extra:
        material["extra"] = dict(extra)
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk result store with hit/miss accounting.

    ``hits`` / ``misses`` count this instance's lookups; the sweep
    executor copies them into its :class:`repro.perf.SweepCounters`.
    """

    def __init__(self, root: "str | Path" = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result dict, or ``None`` on a miss.

        Any unreadable entry — truncated JSON, wrong schema, wrong
        embedded key, not a dict — counts as a miss; the bad file is
        removed so the following :meth:`put` heals it.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if (
                not isinstance(entry, dict)
                or entry.get("schema") != CACHE_SCHEMA
                or entry.get("key") != key
                or not isinstance(entry.get("result"), dict)
            ):
                raise ValueError("malformed cache entry")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError) as exc:
            log.warning("discarding corrupt cache entry %s: %s", path, exc)
            with contextlib.suppress(OSError):
                path.unlink()
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, key: str, result: Mapping[str, Any]) -> Path:
        """Store ``result`` under ``key`` (atomic replace)."""
        path = self.path_for(key)
        entry = {"schema": CACHE_SCHEMA, "key": key, "result": dict(result)}
        text = json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
        # A racing prune() tidies empty fan-out directories with rmdir,
        # which can land between our mkdir and the temp-file open —
        # recreate the directory and try again.
        last_miss: Optional[FileNotFoundError] = None
        for _ in range(100):
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                return atomic_write_text(path, text)
            except FileNotFoundError as exc:
                last_miss = exc
        raise last_miss

    # -- maintenance ---------------------------------------------------------

    def _entries(self):
        """Yield entry paths, tolerating concurrent deletion.

        Another process (a racing ``prune``, the serve memoizer, a plain
        ``rm -rf``) may remove entries, fan-out directories or the root
        itself at any point during the scan; a vanished directory is
        simply skipped, never an exception.  Yielded paths may still
        disappear before the caller touches them — per-entry operations
        guard themselves too.
        """
        if not self.root.is_dir():
            return
        try:
            subs = sorted(self.root.iterdir())
        except FileNotFoundError:
            return
        for sub in subs:
            try:
                if not sub.is_dir():
                    continue
                paths = sorted(sub.glob("*.json"))
            except FileNotFoundError:
                continue
            for path in paths:
                yield path

    def stats(self) -> Dict[str, Any]:
        """Entry count/size plus the sampled-vs-full breakdown.

        Sampled entries (results carrying ``estimated: true``) also
        report how many trace events their estimates simulated versus
        the full traces' totals — the basis of the "estimated compute
        saved" line in ``extrap sweep stats``.  Unreadable entries count
        toward ``entries``/``bytes`` but not the breakdown.
        """
        entries = 0
        total = 0
        sampled = 0
        full = 0
        events_total = 0
        events_simulated = 0
        for path in self._entries():
            with contextlib.suppress(OSError):
                total += path.stat().st_size
                entries += 1
                with contextlib.suppress(ValueError):
                    doc = json.loads(path.read_text(encoding="utf-8"))
                    result = doc.get("result")
                    if not isinstance(result, dict):
                        continue
                    if result.get("estimated"):
                        sampled += 1
                        info = result.get("sampling") or {}
                        events_total += int(info.get("events_total") or 0)
                        events_simulated += int(
                            info.get("events_simulated") or 0
                        )
                    else:
                        full += 1
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total,
            "full_entries": full,
            "sampled_entries": sampled,
            "sampled_events_total": events_total,
            "sampled_events_simulated": events_simulated,
        }

    def prune(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        for path in list(self._entries()):
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        # Tidy now-empty fan-out directories (best effort; the root may
        # vanish under us if another prune/rm races this one).
        if self.root.is_dir():
            try:
                subs = list(self.root.iterdir())
            except FileNotFoundError:
                subs = []
            for sub in subs:
                if sub.is_dir():
                    with contextlib.suppress(OSError):
                        os.rmdir(sub)
        return removed
