"""Parallel execution of sweep points (and other repo-level task fans).

Two layers:

* :class:`ParallelExecutor` — a generic ordered task fan-out on
  :class:`concurrent.futures.ProcessPoolExecutor` with a serial
  fallback (``jobs=1`` never touches multiprocessing), bounded retries
  for watchdog stalls, and per-completion progress logging.  Workers
  are invoked through a catch-all shim, so one diverging point is
  recorded as a failure instead of killing the sweep.  Results are
  collected *by task index*, which is what makes ``--jobs 4`` output
  byte-identical to ``--jobs 1``.
* :func:`run_sweep` — the sweep driver: expands a
  :class:`~repro.sweep.spec.SweepSpec`, answers points from the
  :class:`~repro.sweep.cache.ResultCache` where possible, fans the
  misses out, and stores fresh results back.  Fresh results round-trip
  through the same JSON encoding the cache uses before they are
  reported, so a cached and an uncached run of the same spec render
  identically down to float formatting.

Per-point timeouts reuse the simulation watchdog: the wall-clock budget
is enforced *inside* the point by
:class:`repro.des.engine.SimulationStalled`, which carries a stall
diagnosis — strictly more useful than an executor-side kill.
"""

from __future__ import annotations

import contextlib
import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import extrapolate, measure
from repro.perf import SweepCounters
from repro.sweep.cache import ResultCache, result_key
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.trace.trace import Trace
from repro.util.log import get_logger

log = get_logger("sweep")

#: Exception type names the executor retries (bounded by ``retries``).
RETRYABLE = ("SimulationStalled",)


@dataclass
class TaskOutcome:
    """What happened to one task: a value or a recorded failure."""

    index: int
    ok: bool
    value: Any = None
    error_type: str = ""
    error: str = ""
    attempts: int = 1


def _invoke(worker: Callable[[Any], Any], task: Any) -> tuple:
    """Run one task, trapping worker exceptions into plain data.

    Exceptions are flattened to ``(type name, message)`` so nothing
    unpicklable ever has to cross the process boundary.
    """
    try:
        return ("ok", worker(task))
    except Exception as exc:
        return ("error", type(exc).__name__, str(exc))


class ParallelExecutor:
    """Ordered task fan-out with a serial fallback and stall retries.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` runs everything in-process (no
        multiprocessing import, no pickling) and is the reference
        ordering the parallel path must reproduce.
    retries:
        How many times a task whose failure type is in ``retry_on``
        is re-run before being recorded as failed.
    retry_on:
        Exception type *names* that qualify for retry.  Defaults to the
        watchdog's ``SimulationStalled``.
    initializer / initargs:
        Forwarded to the process pool (and called once, in-process, for
        the serial path) — used to ship shared read-only state such as
        traces to workers once instead of per task.
    progress_label:
        Noun for progress log lines, e.g. ``"point"``.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        retries: int = 0,
        retry_on: Sequence[str] = RETRYABLE,
        initializer: Optional[Callable[..., None]] = None,
        initargs: tuple = (),
        progress_label: str = "task",
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.retries = retries
        self.retry_on = tuple(retry_on)
        self.initializer = initializer
        self.initargs = initargs
        self.progress_label = progress_label
        #: retries actually performed by the last :meth:`map` call
        self.retried = 0

    def map(self, worker: Callable[[Any], Any], tasks: Sequence[Any]) -> List[TaskOutcome]:
        """Run ``worker`` over ``tasks``; outcomes ordered like ``tasks``."""
        self.retried = 0
        if not tasks:
            return []
        if self.jobs == 1:
            return self._map_serial(worker, tasks)
        return self._map_parallel(worker, tasks)

    # -- serial reference path ----------------------------------------------

    def _map_serial(self, worker, tasks) -> List[TaskOutcome]:
        if self.initializer is not None:
            self.initializer(*self.initargs)
        outcomes = []
        for index, task in enumerate(tasks):
            attempts = 0
            while True:
                attempts += 1
                res = _invoke(worker, task)
                if res[0] == "ok":
                    outcome = TaskOutcome(index, True, res[1], attempts=attempts)
                    break
                if res[1] in self.retry_on and attempts <= self.retries:
                    self.retried += 1
                    log.info(
                        "%s %d stalled (%s), retry %d/%d",
                        self.progress_label, index, res[2], attempts, self.retries,
                    )
                    continue
                outcome = TaskOutcome(
                    index, False, error_type=res[1], error=res[2], attempts=attempts
                )
                break
            outcomes.append(outcome)
            self._progress(len(outcomes), len(tasks), outcome)
        return outcomes

    # -- process-pool path ---------------------------------------------------

    def _map_parallel(self, worker, tasks) -> List[TaskOutcome]:
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
        attempts: Dict[int, int] = {i: 0 for i in range(len(tasks))}
        done_count = 0
        pool = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(tasks)),
            initializer=self.initializer,
            initargs=self.initargs,
        )
        pending: Dict[Any, int] = {}
        try:
            for index, task in enumerate(tasks):
                attempts[index] += 1
                pending[pool.submit(_invoke, worker, task)] = index
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    index = pending.pop(fut)
                    try:
                        res = fut.result()
                    except Exception as exc:  # pool breakage, unpicklable value
                        res = ("error", type(exc).__name__, str(exc))
                    if res[0] == "ok":
                        outcome = TaskOutcome(
                            index, True, res[1], attempts=attempts[index]
                        )
                    elif res[1] in self.retry_on and attempts[index] <= self.retries:
                        self.retried += 1
                        log.info(
                            "%s %d stalled (%s), retry %d/%d",
                            self.progress_label, index, res[2],
                            attempts[index], self.retries,
                        )
                        attempts[index] += 1
                        pending[pool.submit(_invoke, worker, tasks[index])] = index
                        continue
                    else:
                        outcome = TaskOutcome(
                            index, False,
                            error_type=res[1], error=res[2],
                            attempts=attempts[index],
                        )
                    outcomes[index] = outcome
                    done_count += 1
                    self._progress(done_count, len(tasks), outcome)
        except BaseException as exc:
            # Ctrl-C (or any other escape) must not strand worker
            # processes mid-sweep: queued tasks would otherwise keep
            # executing through the pool's shutdown(wait=True).
            self._abort_pool(
                pool, pending, kill=isinstance(exc, (KeyboardInterrupt, SystemExit))
            )
            raise
        pool.shutdown(wait=True)
        return [o for o in outcomes if o is not None]

    @staticmethod
    def _abort_pool(pool, pending, *, kill: bool) -> None:
        """Cancel queued work and reap workers after an interrupt/error.

        ``kill=True`` (interrupt) additionally terminates worker
        processes so an in-flight point cannot keep the interpreter
        alive; results are discarded either way, so losing the points is
        the intended outcome.
        """
        for fut in pending:
            fut.cancel()
        pool.shutdown(wait=False, cancel_futures=True)
        if not kill:
            return
        procs = list((getattr(pool, "_processes", None) or {}).values())
        for proc in procs:
            with contextlib.suppress(Exception):
                proc.terminate()
        for proc in procs:
            with contextlib.suppress(Exception):
                proc.join(5)

    def _progress(self, done: int, total: int, outcome: TaskOutcome) -> None:
        if outcome.ok:
            log.info("%s %d/%d done", self.progress_label, done, total)
        else:
            log.warning(
                "%s %d/%d FAILED (%s: %s)",
                self.progress_label, done, total, outcome.error_type, outcome.error,
            )


# -- sweep point workers -----------------------------------------------------

#: Traces shared with worker processes via the pool initializer, keyed
#: by an opaque ref; avoids re-pickling the (potentially large) trace
#: into every task.
_WORKER_TRACES: Dict[str, Trace] = {}


def _init_worker_traces(traces: Dict[str, Trace]) -> None:
    _WORKER_TRACES.clear()
    _WORKER_TRACES.update(traces)


@dataclass(frozen=True)
class _PointTask:
    """Everything one worker needs to run one sweep point."""

    trace_ref: str
    point: SweepPoint
    base_preset: str
    wall_budget: Optional[float] = None
    #: when set, the point is answered by a SimPoint-style sampled
    #: estimate (:func:`repro.sampling.estimate_sampled`) instead of a
    #: full simulation
    sample: Optional[Any] = None


def result_record(outcome) -> Dict[str, Any]:
    """The JSON-safe extrapolation metrics payload.

    Shared vocabulary between the sweep cache, sweep artifacts and the
    serve API's ``metrics`` object — one schema, one place.  Sampled
    estimates additionally carry ``estimated: true`` plus a ``sampling``
    summary (config, chosen k, events simulated, error bars), so an
    estimate can never be mistaken for an exact result downstream.
    """
    r = outcome.result
    record = {
        "predicted_time_us": r.execution_time,
        "ideal_time_us": outcome.ideal_time,
        "utilization": r.utilization(),
        "compute_time_us": r.total_compute_time(),
        "comm_time_us": r.total_comm_time(),
        "barrier_time_us": r.total_barrier_time(),
        "message_count": r.network.messages,
        "message_bytes": r.network.bytes,
        "barrier_count": r.barrier_count,
        "n_threads": r.meta.n_threads,
    }
    if getattr(r, "estimated", False):
        info = r.sampling or {}
        plan = info.get("plan", {})
        record["estimated"] = True
        record["sampling"] = {
            "config": info.get("config"),
            "mode": plan.get("mode"),
            "k": plan.get("k"),
            "n_intervals": plan.get("n_intervals"),
            "events_total": info.get("events_total"),
            "events_simulated": info.get("events_simulated"),
            "error_bars": info.get("error_bars"),
        }
    return record


def _sweep_point_worker(task: _PointTask) -> Dict[str, Any]:
    trace = _WORKER_TRACES[task.trace_ref]
    params = task.point.params(task.base_preset)
    if task.sample is not None:
        from repro.sampling import estimate_sampled

        outcome = estimate_sampled(
            trace, params, task.sample, wall_clock_budget=task.wall_budget
        )
    else:
        outcome = extrapolate(
            trace, params, wall_clock_budget=task.wall_budget
        )
    return result_record(outcome)


def _json_roundtrip(record: Dict[str, Any]) -> Dict[str, Any]:
    """Normalise a fresh record exactly the way the cache will.

    JSON float text is exact for round-tripping, but ``-0.0`` and int
    floats could in principle render differently from their Python
    originals; one round-trip guarantees a cached second run formats
    byte-identically to the first.
    """
    return json.loads(json.dumps(record))


# -- sweep driver ------------------------------------------------------------


@dataclass
class PointRecord:
    """One sweep point plus its (possibly cached) result or failure."""

    point: SweepPoint
    result: Optional[Dict[str, Any]] = None
    error_type: str = ""
    error: str = ""
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class SweepRun:
    """Everything one sweep produced, in spec point order."""

    spec: SweepSpec
    records: List[PointRecord]
    counters: SweepCounters = field(default_factory=SweepCounters)

    def to_json(self) -> str:
        """Deterministic result artifact.

        Depends only on the spec and the simulation results — never on
        job count, cache state, or wall time — so repeated runs of one
        spec produce byte-identical files.
        """
        points = []
        for rec in self.records:
            entry: Dict[str, Any] = {
                "index": rec.point.index,
                "label": rec.point.label(),
                "overrides": rec.point.as_dict(),
            }
            if rec.ok:
                entry["result"] = rec.result
            else:
                entry["error"] = {"type": rec.error_type, "message": rec.error}
            points.append(entry)
        doc = {
            "schema": 1,
            "name": self.spec.name,
            "preset": self.spec.preset,
            "points": points,
        }
        if self.spec.sample is not None:
            doc["sample"] = self.spec.sample.canonical_dict()
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def _measure_benchmark_trace(spec: SweepSpec, n_threads: int) -> Trace:
    from repro.bench.suite import get_benchmark

    info = get_benchmark(spec.benchmark)
    maker = info.make_program()
    log.info("measuring %s with %d threads", spec.benchmark, n_threads)
    return measure(
        maker(n_threads), n_threads, name=spec.benchmark, size_mode=spec.size_mode
    )


def run_sweep(
    spec: SweepSpec,
    *,
    trace: Optional[Trace] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    wall_budget: Optional[float] = None,
    retries: int = 1,
) -> SweepRun:
    """Execute every point of ``spec`` and collect results in spec order.

    Parameters
    ----------
    trace:
        Pre-measured trace to extrapolate (trace mode).  When ``None``
        the spec must name a ``benchmark``, which is measured once per
        distinct thread count (benchmark mode; the only mode where an
        ``n_threads`` axis is allowed).
    jobs:
        Point-level parallelism; ``1`` is the serial reference path and
        any other value must produce identical results.
    cache:
        Optional :class:`~repro.sweep.cache.ResultCache`; hits skip
        execution entirely, misses are stored back after execution.
    wall_budget:
        Per-point wall-clock watchdog budget (seconds); a stalled point
        raises ``SimulationStalled`` in its worker and is retried up to
        ``retries`` times before being recorded as failed.
    """
    t0 = time.perf_counter()
    points = spec.expand()
    counters = SweepCounters(points_total=len(points))
    # The cache instance may be shared across runs; count only this
    # run's lookups.
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0

    traces: Dict[str, Trace] = {}
    digests: Dict[str, str] = {}

    def trace_for(point: SweepPoint) -> str:
        """Ref of the trace this point runs against (measuring lazily)."""
        if trace is not None:
            if point.n_threads is not None:
                raise ValueError(
                    "spec uses an 'n_threads' axis, which re-measures the "
                    "program; drop the axis or sweep a benchmark instead of "
                    "a fixed trace"
                )
            ref = "trace"
            if ref not in traces:
                traces[ref] = trace
        else:
            if spec.benchmark is None:
                raise ValueError(
                    "no trace given and the spec names no 'benchmark'; "
                    "set one of the two"
                )
            n = point.n_threads or spec.n_threads
            ref = f"bench:{n}"
            if ref not in traces:
                traces[ref] = _measure_benchmark_trace(spec, n)
        if ref not in digests:
            digests[ref] = traces[ref].digest()
        return ref

    # Resolve each point against the cache first; only misses execute.
    records: List[PointRecord] = [PointRecord(p) for p in points]
    keys: List[Optional[str]] = [None] * len(points)
    tasks: List[_PointTask] = []
    task_indices: List[int] = []
    # Sampled points cache under sampling-aware keys, so a sampled and
    # a full run of the same point can never answer each other.
    key_extra = (
        {"sampling": spec.sample.canonical_dict()}
        if spec.sample is not None
        else None
    )
    for i, point in enumerate(points):
        ref = trace_for(point)
        if cache is not None:
            key = result_key(
                digests[ref], point.params(spec.preset), extra=key_extra
            )
            keys[i] = key
            hit = cache.get(key)
            if hit is not None:
                records[i].result = hit
                records[i].cached = True
                continue
        tasks.append(
            _PointTask(ref, point, spec.preset, wall_budget, spec.sample)
        )
        task_indices.append(i)
    if cache is not None:
        counters.cache_hits = cache.hits - hits0
        counters.cache_misses = cache.misses - misses0

    if tasks:
        executor = ParallelExecutor(
            jobs,
            retries=retries,
            initializer=_init_worker_traces,
            initargs=(traces,),
            progress_label="point",
        )
        outcomes = executor.map(_sweep_point_worker, tasks)
        counters.retried = executor.retried
        for task_pos, outcome in enumerate(outcomes):
            i = task_indices[task_pos]
            counters.executed += outcome.attempts
            if outcome.ok:
                records[i].result = _json_roundtrip(outcome.value)
                if cache is not None and keys[i] is not None:
                    cache.put(keys[i], records[i].result)
            else:
                records[i].error_type = outcome.error_type
                records[i].error = outcome.error
                counters.failed += 1

    counters.wall_s = time.perf_counter() - t0
    log.info(
        "sweep %s: %d points, %d executed, %d cached, %d failed in %.2fs "
        "(%.1f points/s)",
        spec.name, counters.points_total, counters.executed,
        counters.cache_hits, counters.failed, counters.wall_s,
        counters.points_per_s,
    )
    return SweepRun(spec=spec, records=records, counters=counters)


# -- shared extrapolation fan-out (experiments / ablations) ------------------


def _extrapolate_task_worker(task: Tuple[Trace, Any]) -> float:
    trace_, params = task
    return extrapolate(trace_, params).predicted_time


def extrapolate_many(
    tasks: Sequence[Tuple[Trace, Any]], *, jobs: int = 1
) -> List[float]:
    """Predicted times for ``(trace, params)`` pairs, in input order.

    The shared fan-out for experiment/ablation grids: serial with
    ``jobs=1`` (bit-identical to a plain loop), a process pool
    otherwise.  Failures propagate — an ablation with a diverging point
    is a bug, not a result.
    """
    executor = ParallelExecutor(jobs, progress_label="extrapolation")
    outcomes = executor.map(_extrapolate_task_worker, tasks)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        first = failed[0]
        raise RuntimeError(
            f"{len(failed)} of {len(tasks)} extrapolations failed; first: "
            f"{first.error_type}: {first.error}"
        )
    return [o.value for o in outcomes]
