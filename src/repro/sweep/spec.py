"""Declarative sweep specifications.

A :class:`SweepSpec` describes a design-space exploration: a *grid*
(cartesian product over named axes) or an explicit *list of points*,
each point a set of overrides applied on top of a base preset.  Specs
are pure data — JSON/dict-loadable, validated eagerly, and expanded
into a deterministic point sequence — so the same spec always
enumerates the same points in the same order, which is what makes
parallel execution (:mod:`repro.sweep.executor`) and content-addressed
caching (:mod:`repro.sweep.cache`) reproducible.

Axis / override keys:

* ``processor.<field>`` / ``network.<field>`` / ``barrier.<field>`` —
  any field of the corresponding :mod:`repro.core.parameters` group;
* ``faults.<field>`` — any field of
  :class:`repro.faults.plan.FaultPlan` (merged into the plan);
* ``faults`` — a whole fault-plan dict (or ``null`` for none);
* ``preset`` — swap the base preset for this point;
* ``n_threads`` — thread/processor count (benchmark mode only: it
  re-measures the program, so it is rejected when sweeping a fixed
  trace).

A spec may also carry a top-level ``"sample"`` object (a
:class:`repro.sampling.SamplingConfig`): every point is then answered
with a SimPoint-style sampled estimate instead of a full simulation,
and cache keys include the sampling config so sampled and full results
never collide.

Example spec (JSON)::

    {
      "name": "hop-vs-bandwidth",
      "preset": "distributed_memory",
      "grid": {
        "network.hop_time": [0.1, 0.5, 2.0],
        "network.byte_transfer_time": [0.05, 0.118]
      }
    }
"""

from __future__ import annotations

import difflib
import itertools
import json
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core import presets
from repro.core.parameters import (
    BarrierParams,
    NetworkParams,
    ProcessorParams,
    SimulationParameters,
)
from repro.faults.plan import FaultPlan

#: Parameter groups a ``group.field`` key may name, with their field sets.
_GROUP_FIELDS: Dict[str, frozenset] = {
    "processor": frozenset(f.name for f in dataclass_fields(ProcessorParams)),
    "network": frozenset(f.name for f in dataclass_fields(NetworkParams)),
    "barrier": frozenset(f.name for f in dataclass_fields(BarrierParams)),
    "faults": frozenset(f.name for f in dataclass_fields(FaultPlan)),
}

#: Keys with special (non-``group.field``) meaning.
SPECIAL_KEYS = ("preset", "n_threads", "faults")


def suggest(bad: str, candidates: Sequence[str]) -> str:
    """A ``; did you mean ...?`` suffix for an unrecognised name.

    Shared by sweep-spec validation, CLI ``--set`` parsing and the serve
    API so every layer gives the same spelling help.  Empty when nothing
    is close.
    """
    close = difflib.get_close_matches(bad, list(candidates), n=3, cutoff=0.5)
    return f"; did you mean {', '.join(repr(c) for c in close)}?" if close else ""


_suggest = suggest  # historical internal name


def validate_param_key(key: str, *, what: str = "parameter key") -> None:
    """Raise :class:`ValueError` unless ``key`` is a valid ``group.field``.

    The strict form used by CLI ``--set`` overrides and serve-API
    ``overrides`` objects, where the sweep-only special keys (``preset``,
    ``n_threads``, bare ``faults``) are not meaningful.
    """
    group, _, field_ = key.partition(".")
    if not field_:
        raise ValueError(
            f"bad {what} {key!r}: expected group.field "
            f"(e.g. processor.mips_ratio)"
            f"{suggest(key, list(_GROUP_FIELDS))}"
        )
    if group not in _GROUP_FIELDS:
        raise ValueError(
            f"bad {what} {key!r}: unknown parameter group {group!r}"
            f"{suggest(group, list(_GROUP_FIELDS))}"
        )
    if field_ not in _GROUP_FIELDS[group]:
        raise ValueError(
            f"bad {what} {key!r}: {group!r} has no field {field_!r}"
            f"{suggest(field_, sorted(_GROUP_FIELDS[group]))}"
        )


def apply_param_overrides(
    params: SimulationParameters, overrides: Mapping[str, Any]
) -> SimulationParameters:
    """Apply flat ``{"group.field": value}`` overrides to ``params``.

    Keys are validated with did-you-mean suggestions; value errors from
    the parameter model surface as :class:`ValueError`.
    """
    groups: Dict[str, Dict[str, Any]] = {}
    for key, value in overrides.items():
        validate_param_key(key)
        group, field_ = key.split(".", 1)
        groups.setdefault(group, {})[field_] = value
    if not groups:
        return params
    try:
        return params.with_(**groups)
    except TypeError as exc:
        raise ValueError(f"bad parameter override: {exc}") from None


def _validate_key(key: str) -> None:
    """Raise :class:`ValueError` for a key no point may use."""
    if key in ("preset", "n_threads", "faults"):
        return
    group, _, field_ = key.partition(".")
    if not field_:
        valid = list(SPECIAL_KEYS) + [f"{g}.<field>" for g in _GROUP_FIELDS]
        raise ValueError(
            f"bad sweep key {key!r}: expected group.field or one of "
            f"{valid}{suggest(key, list(_GROUP_FIELDS) + list(SPECIAL_KEYS))}"
        )
    validate_param_key(key, what="sweep key")


def _validate_value(key: str, value: Any) -> None:
    if key == "preset":
        if value not in presets.PRESETS:
            raise ValueError(
                f"unknown preset {value!r} in sweep"
                f"{_suggest(str(value), sorted(presets.PRESETS))}; "
                f"available: {sorted(presets.PRESETS)}"
            )
    elif key == "n_threads":
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ValueError(f"n_threads values must be ints >= 1, got {value!r}")
    elif key == "faults":
        if value is None:
            return
        if not isinstance(value, Mapping):
            raise ValueError(
                f"'faults' values must be fault-plan objects or null, "
                f"got {type(value).__name__}"
            )
        FaultPlan.from_dict(value)  # raises ValueError on bad fields


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of the sweep: an index plus flat overrides.

    ``overrides`` is an ordered tuple of ``(key, value)`` pairs; the
    order follows the spec's axis order, which keeps labels and cache
    keys deterministic.
    """

    index: int
    overrides: Tuple[Tuple[str, Any], ...]

    def label(self) -> str:
        """Human-readable point identity, e.g. ``network.hop_time=0.5``."""
        if not self.overrides:
            return "baseline"
        return " ".join(f"{k}={_fmt_value(v)}" for k, v in self.overrides)

    def as_dict(self) -> Dict[str, Any]:
        return {k: v for k, v in self.overrides}

    @property
    def n_threads(self) -> Optional[int]:
        """The point's ``n_threads`` override, if any."""
        for k, v in self.overrides:
            if k == "n_threads":
                return v
        return None

    def params(self, base_preset: str) -> SimulationParameters:
        """Resolve this point to concrete simulation parameters."""
        preset_name = base_preset
        groups: Dict[str, Dict[str, Any]] = {}
        fault_plan: Any = _UNSET
        for key, value in self.overrides:
            if key == "preset":
                preset_name = value
            elif key == "n_threads":
                continue
            elif key == "faults":
                fault_plan = None if value is None else FaultPlan.from_dict(value)
            else:
                group, field_ = key.split(".", 1)
                groups.setdefault(group, {})[field_] = value
        params = presets.by_name(preset_name)
        fault_fields = groups.pop("faults", None)
        if groups:
            params = params.with_(**groups)
        if fault_plan is not _UNSET:
            params = params.with_faults(fault_plan)
        if fault_fields:
            params = params.with_(faults=fault_fields)
        return params


_UNSET = object()


def _fmt_value(v: Any) -> str:
    if isinstance(v, Mapping):
        return json.dumps(v, sort_keys=True, separators=(",", ":"))
    return f"{v}"


class SweepSpec:
    """A validated, expandable sweep description.

    Exactly one of ``grid`` (``{key: [values...]}``) and ``points``
    (``[{key: value, ...}, ...]``) must be given.  ``benchmark`` /
    ``n_threads`` / ``size_mode`` describe the program to measure when
    the sweep is not driven by a pre-recorded trace.
    """

    def __init__(
        self,
        *,
        name: str = "sweep",
        preset: str = "distributed_memory",
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        points: Optional[Sequence[Mapping[str, Any]]] = None,
        benchmark: Optional[str] = None,
        n_threads: int = 8,
        size_mode: str = "compiler",
        sample: Optional[Mapping[str, Any]] = None,
    ):
        if (grid is None) == (points is None):
            raise ValueError("a sweep spec needs exactly one of 'grid' or 'points'")
        if preset not in presets.PRESETS:
            raise ValueError(
                f"unknown base preset {preset!r}"
                f"{_suggest(preset, sorted(presets.PRESETS))}; "
                f"available: {sorted(presets.PRESETS)}"
            )
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        if size_mode not in ("compiler", "actual"):
            raise ValueError(
                f"size_mode must be 'compiler' or 'actual', got {size_mode!r}"
            )
        self.name = str(name)
        self.preset = preset
        self.benchmark = benchmark
        self.n_threads = int(n_threads)
        self.size_mode = size_mode
        self.sample = None
        if sample is not None:
            from repro.sampling import SamplingConfig

            if isinstance(sample, SamplingConfig):
                self.sample = sample
            else:
                try:
                    self.sample = SamplingConfig.from_dict(sample)
                except ValueError as exc:
                    raise ValueError(f"bad 'sample' config: {exc}") from None
        self.grid: Optional[Dict[str, List[Any]]] = None
        self.points_raw: Optional[List[Dict[str, Any]]] = None
        if grid is not None:
            if not isinstance(grid, Mapping) or not grid:
                raise ValueError("'grid' must be a non-empty object of key -> values")
            self.grid = {}
            for key, values in grid.items():
                _validate_key(key)
                if not isinstance(values, (list, tuple)) or not values:
                    raise ValueError(
                        f"grid axis {key!r} must be a non-empty list of values"
                    )
                for v in values:
                    _validate_value(key, v)
                self.grid[key] = list(values)
        else:
            if not isinstance(points, Sequence) or not points:
                raise ValueError("'points' must be a non-empty list of objects")
            self.points_raw = []
            for i, pt in enumerate(points):
                if not isinstance(pt, Mapping):
                    raise ValueError(
                        f"point #{i} must be an object, got {type(pt).__name__}"
                    )
                for key, value in pt.items():
                    _validate_key(key)
                    _validate_value(key, value)
                self.points_raw.append(dict(pt))
        # Eagerly resolve every point once so a bad field value (e.g. a
        # negative time) fails at load time, not mid-sweep in a worker.
        for point in self.expand():
            point.params(self.preset)

    # -- expansion -----------------------------------------------------------

    def expand(self) -> List[SweepPoint]:
        """Deterministic point enumeration.

        Grid mode walks the cartesian product with the *last* axis
        fastest (``itertools.product`` order), axes in spec order;
        points mode preserves the listed order.
        """
        out: List[SweepPoint] = []
        if self.grid is not None:
            keys = list(self.grid)
            for index, combo in enumerate(
                itertools.product(*(self.grid[k] for k in keys))
            ):
                out.append(SweepPoint(index, tuple(zip(keys, combo))))
        else:
            for index, pt in enumerate(self.points_raw or []):
                out.append(SweepPoint(index, tuple(pt.items())))
        return out

    def __len__(self) -> int:
        if self.grid is not None:
            n = 1
            for values in self.grid.values():
                n *= len(values)
            return n
        return len(self.points_raw or [])

    def uses_n_threads_axis(self) -> bool:
        """True when any point re-measures at a different thread count."""
        return any(p.n_threads is not None for p in self.expand())

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"name": self.name, "preset": self.preset}
        if self.grid is not None:
            d["grid"] = {k: list(v) for k, v in self.grid.items()}
        else:
            d["points"] = [dict(p) for p in self.points_raw or []]
        if self.benchmark is not None:
            d["benchmark"] = self.benchmark
        d["n_threads"] = self.n_threads
        d["size_mode"] = self.size_mode
        if self.sample is not None:
            d["sample"] = self.sample.canonical_dict()
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"sweep spec must be a JSON object, got {type(data).__name__}"
            )
        known = {
            "name",
            "preset",
            "grid",
            "points",
            "benchmark",
            "n_threads",
            "size_mode",
            "sample",
        }
        unknown = set(data) - known
        if unknown:
            first = sorted(unknown)[0]
            raise ValueError(
                f"unknown sweep spec fields: {sorted(unknown)}"
                f"{_suggest(first, sorted(known))}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(
            name=data.get("name", "sweep"),
            preset=data.get("preset", "distributed_memory"),
            grid=data.get("grid"),
            points=data.get("points"),
            benchmark=data.get("benchmark"),
            n_threads=data.get("n_threads", 8),
            size_mode=data.get("size_mode", "compiler"),
            sample=data.get("sample"),
        )

    @classmethod
    def from_file(cls, path: "str | Path") -> "SweepSpec":
        """Load a spec from a JSON file; errors always name the file."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from None
        try:
            return cls.from_dict(data)
        except ValueError as exc:
            raise ValueError(f"{path}: bad sweep spec: {exc}") from None


def params_canonical_dict(params: SimulationParameters) -> Dict[str, Any]:
    """Canonical JSON-safe dict of resolved simulation parameters.

    The cache key material: every model field, enums by value, the fault
    plan expanded, and the cosmetic ``name`` excluded — two presets that
    resolve to identical physics share cache entries.
    """
    return {
        "processor": {
            f.name: _jsonify(getattr(params.processor, f.name))
            for f in dataclass_fields(ProcessorParams)
        },
        "network": {
            f.name: _jsonify(getattr(params.network, f.name))
            for f in dataclass_fields(NetworkParams)
        },
        "barrier": {
            f.name: _jsonify(getattr(params.barrier, f.name))
            for f in dataclass_fields(BarrierParams)
        },
        "faults": None if params.faults is None else params.faults.to_dict(),
    }


def _jsonify(value: Any) -> Any:
    if hasattr(value, "value") and not isinstance(value, (int, float, str, bool)):
        return value.value  # enum members
    if isinstance(value, tuple):
        return list(value)
    return value
