"""Non-preemptive cooperative threads on a single virtual processor.

This is the analog of the AWESIME threads package the paper uses for the
n-thread, 1-processor measurement run: all threads share one processor
and one global clock, and a thread runs *uninterrupted* until it reaches a
scheduling point (barrier entry/exit in the pC++ runtime).  That
run-to-barrier property is exactly what the trace translation algorithm
relies on (§3.2).
"""

from repro.threads.scheduler import (
    Block,
    DeadlockError,
    Scheduler,
    ThreadState,
    VirtualThread,
    YieldProcessor,
)

__all__ = [
    "Block",
    "DeadlockError",
    "Scheduler",
    "ThreadState",
    "VirtualThread",
    "YieldProcessor",
]
