"""Cooperative scheduler with a global virtual clock.

Threads are generators that yield scheduling directives:

* :class:`YieldProcessor` — put me at the back of the ready queue;
* :class:`Block` — deschedule me until someone calls
  :meth:`Scheduler.unblock`.

The scheduler is strictly non-preemptive: between directives a thread
owns the processor, and the only way time passes is the running thread
calling :meth:`Scheduler.advance`.  This mirrors the paper's measurement
setup where thread switches happen only at barrier entry and exit.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional


class YieldProcessor:
    """Directive: reschedule me behind the other ready threads."""

    __slots__ = ()


class Block:
    """Directive: deschedule me until :meth:`Scheduler.unblock` is called."""

    __slots__ = ()


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"


class DeadlockError(RuntimeError):
    """All live threads are blocked and nothing can unblock them."""


class VirtualThread:
    """One cooperative thread: a generator plus scheduling state."""

    def __init__(self, tid: int, body: Generator[Any, Any, Any]):
        if not hasattr(body, "send"):
            raise TypeError(f"thread body must be a generator, got {body!r}")
        self.tid = tid
        self.body = body
        self.state = ThreadState.READY
        self.result: Any = None

    def __repr__(self) -> str:
        return f"<VirtualThread {self.tid} {self.state.value}>"


class Scheduler:
    """Round-robin non-preemptive scheduler over a shared virtual clock.

    Parameters
    ----------
    start_time:
        Initial virtual clock value (microseconds).
    switch_overhead:
        Virtual time charged at every thread switch — models the threads
        package's context-switch cost.  The paper notes the translation
        algorithm can compensate for this overhead; keeping it explicit
        here lets tests exercise that compensation.
    """

    def __init__(self, start_time: float = 0.0, switch_overhead: float = 0.0):
        if switch_overhead < 0:
            raise ValueError(f"negative switch overhead {switch_overhead}")
        self.clock = float(start_time)
        self.switch_overhead = float(switch_overhead)
        self.threads: List[VirtualThread] = []
        self._ready: Deque[VirtualThread] = deque()
        self._current: Optional[VirtualThread] = None
        self.switch_count = 0

    # -- setup ------------------------------------------------------------

    def spawn(self, body: Generator[Any, Any, Any]) -> VirtualThread:
        """Register a new thread; tids are assigned in spawn order."""
        vt = VirtualThread(len(self.threads), body)
        self.threads.append(vt)
        self._ready.append(vt)
        return vt

    # -- services used by the running thread ---------------------------------

    @property
    def current(self) -> VirtualThread:
        """The thread currently holding the processor."""
        if self._current is None:
            raise RuntimeError("no thread is running")
        return self._current

    def advance(self, dt: float) -> None:
        """Advance the global clock by ``dt`` (the running thread computes)."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by {dt}")
        self.clock += dt

    def unblock(self, tid: int) -> None:
        """Move a blocked thread back to the ready queue."""
        vt = self.threads[tid]
        if vt.state is not ThreadState.BLOCKED:
            raise RuntimeError(f"thread {tid} is {vt.state.value}, not blocked")
        vt.state = ThreadState.READY
        self._ready.append(vt)

    def unblock_all(self, tids: List[int]) -> None:
        """Unblock several threads, preserving the given order."""
        for tid in tids:
            self.unblock(tid)

    # -- run loop ----------------------------------------------------------

    def run(self) -> None:
        """Run until every thread finishes.

        Raises
        ------
        DeadlockError
            If live threads remain but none is ready.
        """
        while True:
            if not self._ready:
                live = [t for t in self.threads if t.state is not ThreadState.FINISHED]
                if not live:
                    return
                raise DeadlockError(
                    "all live threads are blocked: "
                    + ", ".join(repr(t) for t in live)
                )
            vt = self._ready.popleft()
            if vt.state is not ThreadState.READY:  # pragma: no cover - defensive
                raise RuntimeError(f"{vt!r} in ready queue but not READY")
            self._run_thread(vt)

    def _run_thread(self, vt: VirtualThread) -> None:
        """Give the processor to ``vt`` until its next directive."""
        if self._current is not vt:
            self.switch_count += 1
            self.clock += self.switch_overhead
        vt.state = ThreadState.RUNNING
        self._current = vt
        try:
            directive = vt.body.send(None)
        except StopIteration as stop:
            vt.state = ThreadState.FINISHED
            vt.result = stop.value
            self._current = None
            return
        finally:
            if self._current is vt and vt.state is ThreadState.RUNNING:
                pass  # state updated below based on the directive
        if isinstance(directive, Block):
            # The runtime (e.g. the barrier) may already have re-unblocked
            # this thread from within its own code path; Block always means
            # "someone else will wake me".
            vt.state = ThreadState.BLOCKED
        elif isinstance(directive, YieldProcessor):
            vt.state = ThreadState.READY
            self._ready.append(vt)
        else:
            raise TypeError(
                f"thread {vt.tid} yielded {directive!r}; expected a "
                "scheduling directive (Block or YieldProcessor)"
            )
        self._current = None
