"""Event traces: the performance information (PI) of the paper.

A 1-processor n-thread run of a pC++-style program produces a merged
:class:`Trace` of high-level events (barrier entry/exit, remote element
accesses, thread begin/end).  The trace is the *only* thing the
extrapolation pipeline consumes from the measured environment: inter-event
times encode thread computation; the event sequence encodes all
inter-thread interaction.

Submodules:

* :mod:`repro.trace.events`   — event kinds and the event record
* :mod:`repro.trace.trace`    — merged and per-thread trace containers
* :mod:`repro.trace.io`       — JSONL and binary trace files
* :mod:`repro.trace.stats`    — trace statistics (as used in §4.1)
* :mod:`repro.trace.validate` — structural well-formedness checks
"""

from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import ThreadTrace, Trace, TraceMeta, digest_events
from repro.trace.io import (
    TraceReadError,
    iter_trace_events,
    read_trace,
    read_trace_meta,
    stream_trace,
    streaming_digest,
    write_trace,
)
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.validate import TraceValidationError, validate_trace

__all__ = [
    "EventKind",
    "TraceEvent",
    "ThreadTrace",
    "Trace",
    "TraceMeta",
    "digest_events",
    "TraceReadError",
    "iter_trace_events",
    "read_trace",
    "read_trace_meta",
    "stream_trace",
    "streaming_digest",
    "write_trace",
    "TraceStats",
    "compute_stats",
    "TraceValidationError",
    "validate_trace",
]
