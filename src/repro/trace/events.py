"""Trace event kinds and records.

The paper's instrumentation records three interaction types — barrier
entry, barrier exit, and remote element access — because those are the
only points where pC++ threads interact.  We add thread begin/end
delimiters (so per-thread lifetimes are explicit), remote *writes* (the
paper's §5 "trivial extension"), and user phase markers (for richer
metrics; ignored by the simulator's timing models).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Mapping


class EventKind(enum.IntEnum):
    """High-level trace event types."""

    #: First event of every thread.
    THREAD_BEGIN = 0
    #: Last event of every thread.
    THREAD_END = 1
    #: Thread arrives at a global barrier.
    BARRIER_ENTER = 2
    #: Thread leaves a global barrier.
    BARRIER_EXIT = 3
    #: Thread reads an element it does not own.
    REMOTE_READ = 4
    #: Thread writes an element it does not own (§5 extension).
    REMOTE_WRITE = 5
    #: User phase marker; carries a label, has no timing-model effect.
    MARK = 6


#: Kinds that participate in barrier synchronisation semantics.
BARRIER_KINDS = frozenset({EventKind.BARRIER_ENTER, EventKind.BARRIER_EXIT})

#: Kinds that generate remote-access message traffic.
REMOTE_KINDS = frozenset({EventKind.REMOTE_READ, EventKind.REMOTE_WRITE})


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One high-level event.

    Attributes
    ----------
    time:
        Timestamp in microseconds (virtual time of the measured run, or
        translated/extrapolated time downstream).
    thread:
        Id of the thread that generated the event.
    kind:
        Event type.
    barrier_id:
        Sequence number of the barrier episode (BARRIER_* only, else -1).
    owner:
        Owning thread of the accessed element (REMOTE_* only, else -1).
    nbytes:
        Payload size of the remote transfer in bytes (REMOTE_* only).
    collection:
        Name of the accessed collection (REMOTE_* only, informational).
    tag:
        Label for MARK events.
    """

    time: float
    thread: int
    kind: EventKind
    barrier_id: int = -1
    owner: int = -1
    nbytes: int = 0
    collection: str = ""
    tag: str = ""

    def shifted(self, new_time: float) -> "TraceEvent":
        """Copy of this event at a different timestamp."""
        return replace(self, time=new_time)

    @property
    def is_barrier(self) -> bool:
        return self.kind in BARRIER_KINDS

    @property
    def is_remote(self) -> bool:
        return self.kind in REMOTE_KINDS

    @property
    def is_sync(self) -> bool:
        """Synchronisation events get special timestamp treatment in
        translation (barrier exits snap to the last entry)."""
        return self.kind in BARRIER_KINDS

    def to_dict(self) -> Mapping[str, Any]:
        """Compact dict for JSONL serialisation (defaults elided)."""
        d: dict[str, Any] = {"t": self.time, "th": self.thread, "k": int(self.kind)}
        if self.barrier_id != -1:
            d["b"] = self.barrier_id
        if self.owner != -1:
            d["o"] = self.owner
        if self.nbytes:
            d["n"] = self.nbytes
        if self.collection:
            d["c"] = self.collection
        if self.tag:
            d["g"] = self.tag
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            time=float(d["t"]),
            thread=int(d["th"]),
            kind=EventKind(int(d["k"])),
            barrier_id=int(d.get("b", -1)),
            owner=int(d.get("o", -1)),
            nbytes=int(d.get("n", 0)),
            collection=str(d.get("c", "")),
            tag=str(d.get("g", "")),
        )
