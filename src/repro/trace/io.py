"""Trace file formats.

Two on-disk encodings:

* **JSONL** (``.jsonl``): a metadata header line then one compact JSON
  object per event.  Human-inspectable; the default.
* **Binary** (``.bin``): the same header as a JSON line, then
  fixed-layout little-endian records (struct format ``<dii i i q``  plus
  interned strings).  ~5x smaller and faster for big traces.

Both formats round-trip exactly (modulo float64 representation, which is
exact for our timestamps).

Either format may additionally be compressed with gzip, bzip2 or xz —
the compression is picked from the *outer* suffix (``prog.jsonl.gz``,
``PROG.BIN.XZ``; case-insensitive) and is transparent to every reader
and writer here.  Compressed JSONL writes are deterministic (gzip is
written with a zeroed mtime), so byte-identity guarantees survive
compression.

For traces too large to materialize, :func:`stream_trace` yields events
one at a time straight off the (possibly compressed) file, and
:func:`streaming_digest` computes :meth:`repro.trace.trace.Trace.digest`
in the same single pass.
"""

from __future__ import annotations

import bz2
import gzip
import io as _io
import json
import lzma
import struct
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import Trace, TraceMeta, digest_events
from repro.util.atomic import atomic_write


class TraceReadError(ValueError):
    """A trace file is malformed (truncated, corrupt, or not a trace).

    The message always names the file, and for line-oriented formats the
    1-based line number and the offending text, so a corrupted artifact
    is diagnosable without opening it in an editor.
    """


def _snippet(text: str, limit: int = 60) -> str:
    text = text.rstrip("\n")
    return text[:limit] + "..." if len(text) > limit else text


_MAGIC = b"XTRP"
_VERSION = 1
# time, thread, kind, barrier_id, owner, nbytes, collection idx, tag idx
_REC = struct.Struct("<diiiiqii")


#: Supported on-disk trace formats, by (case-insensitive) suffix.
SUPPORTED_SUFFIXES = (".jsonl", ".bin")

#: Transparent compression wrappers, by (case-insensitive) outer suffix.
COMPRESSION_SUFFIXES = (".gz", ".bz2", ".xz")


def trace_format(path: Path) -> Tuple[str, Optional[str]]:
    """``(format suffix, compression suffix or None)`` for ``path``.

    Sees through one compression extension, case-insensitively:
    ``prog.jsonl.gz`` dispatches as gzip-compressed JSONL.  Anything
    else raises a :class:`ValueError` naming the unrecognized suffix
    chain.
    """
    path = Path(path)
    suffixes = [s.lower() for s in path.suffixes[-2:]]
    compression = None
    if suffixes and suffixes[-1] in COMPRESSION_SUFFIXES:
        compression = suffixes[-1]
        suffixes = suffixes[:-1]
    fmt = suffixes[-1] if suffixes else ""
    if fmt not in SUPPORTED_SUFFIXES:
        chain = "".join(path.suffixes[-2:]) or "(none)"
        supported = ", ".join(SUPPORTED_SUFFIXES)
        compressions = "/".join(COMPRESSION_SUFFIXES)
        raise ValueError(
            f"unknown trace suffix chain {chain!r} for {path.name!r}; "
            f"supported formats: {supported} "
            f"(optionally compressed: {compressions})"
        )
    return fmt, compression


def _format_for(path: Path) -> str:
    """Normalized format suffix for ``path``, or a helpful error."""
    return trace_format(path)[0]


def _open_stream(path: Path, compression: Optional[str]):
    """Binary read handle, transparently decompressing."""
    if compression == ".gz":
        return gzip.open(path, "rb")
    if compression == ".bz2":
        return bz2.open(path, "rb")
    if compression == ".xz":
        return lzma.open(path, "rb")
    return path.open("rb")


def _compress_bytes(data: bytes, compression: Optional[str]) -> bytes:
    """Deterministically compress ``data`` (gzip with zeroed mtime)."""
    if compression is None:
        return data
    if compression == ".gz":
        buf = _io.BytesIO()
        with gzip.GzipFile(fileobj=buf, mode="wb", mtime=0) as gz:
            gz.write(data)
        return buf.getvalue()
    if compression == ".bz2":
        return bz2.compress(data)
    return lzma.compress(data)


def write_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` to ``path``; format chosen by suffix (.jsonl/.bin,
    case-insensitive, optionally compressed: .gz/.bz2/.xz)."""
    path = Path(path)
    fmt, compression = trace_format(path)
    if fmt == ".bin":
        payload = _binary_bytes(trace)
    else:
        payload = _jsonl_text(trace).encode("utf-8")
    with atomic_write(path, mode="wb") as fh:
        fh.write(_compress_bytes(payload, compression))
    return path


class TraceFileWriter:
    """Incremental JSONL trace writer.

    Real tracing runtimes stream events to disk instead of holding them
    in memory (that is where the event-buffer flush overhead of §3.2
    comes from).  Pass :meth:`append` as the tracing runtime's event
    sink to write as you measure::

        with TraceFileWriter("run.jsonl", meta) as w:
            rt = TracingRuntime(8, "grid", sink=w.append)
            rt.run(bodies)

    Only the JSONL format supports appending (the binary format needs
    the event count up front); a compression suffix (``run.jsonl.gz``)
    streams through the matching compressor.
    """

    def __init__(self, path: str | Path, meta: TraceMeta):
        path = Path(path)
        try:
            fmt, compression = trace_format(path)
        except ValueError:
            raise ValueError(
                f"streaming writer supports .jsonl only, got {path.suffix!r} "
                "(for .bin, collect events and use write_trace())"
            ) from None
        if fmt == ".bin":
            raise ValueError(
                f"{path}: TraceFileWriter streams .jsonl and cannot produce "
                "a binary trace (the .bin format needs the event count up "
                "front); buffer events and use write_trace() instead"
            )
        self.path = path
        self._closers: list = []
        if compression == ".gz":
            # gzip.open() would stamp the header with mtime and
            # filename; zero/omit both so streamed output is
            # byte-deterministic, matching write_trace().
            raw = path.open("wb")
            gz = gzip.GzipFile(fileobj=raw, filename="", mode="wb", mtime=0)
            self._fh = _io.TextIOWrapper(gz, encoding="utf-8")
            self._closers = [gz, raw]
        elif compression == ".bz2":
            self._fh = bz2.open(path, "wt", encoding="utf-8")
        elif compression == ".xz":
            self._fh = lzma.open(path, "wt", encoding="utf-8")
        else:
            self._fh = path.open("w", encoding="utf-8")
        self._fh.write(json.dumps({"meta": dict(meta.to_dict())}) + "\n")
        self.count = 0

    def append(self, event: TraceEvent) -> None:
        """Write one event."""
        if self._fh is None:
            raise ValueError(f"{self.path}: writer already closed")
        self._fh.write(json.dumps(dict(event.to_dict())) + "\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            for handle in self._closers:
                handle.close()
            self._closers = []

    def __enter__(self) -> "TraceFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace` (suffix chosen
    case-insensitively; compressed files are decompressed transparently)."""
    path = Path(path)
    meta, events = stream_trace(path)
    return Trace(meta, events)


# -- streaming reads ---------------------------------------------------------


def stream_trace(path: str | Path) -> Tuple[TraceMeta, Iterator[TraceEvent]]:
    """``(meta, lazy event iterator)`` for a trace file of any format.

    The metadata header is parsed eagerly (so callers can size buffers
    and validate thread counts up front); events are yielded one at a
    time off the (possibly compressed) file, so a million-event trace
    is never materialized.  The underlying handle closes when the
    iterator is exhausted, closed, or garbage-collected.
    """
    path = Path(path)
    fmt, compression = trace_format(path)
    if fmt == ".bin":
        return _stream_binary(path, compression)
    return _stream_jsonl(path, compression)


def read_trace_meta(path: str | Path) -> TraceMeta:
    """Just the metadata header of a trace file (any format)."""
    meta, events = stream_trace(path)
    close = getattr(events, "close", None)
    if close is not None:
        close()
    return meta


def iter_trace_events(path: str | Path) -> Iterator[TraceEvent]:
    """Lazily yield every event of a trace file (any format)."""
    return stream_trace(path)[1]


def streaming_digest(path: str | Path) -> str:
    """:meth:`Trace.digest` of a trace file, computed in one pass.

    Equals ``read_trace(path).digest()`` for every supported format and
    compression — the digest is over trace *content*, so compressing a
    file never changes it.
    """
    meta, events = stream_trace(path)
    return digest_events(meta, events)


# -- JSONL ---------------------------------------------------------------


def _jsonl_text(trace: Trace) -> str:
    lines = [json.dumps({"meta": dict(trace.meta.to_dict())})]
    lines.extend(json.dumps(dict(ev.to_dict())) for ev in trace.events)
    return "\n".join(lines) + "\n"


def _decompress_error(path: Path, exc: Exception) -> TraceReadError:
    return TraceReadError(f"{path}: corrupt compressed trace ({exc})")


def _stream_jsonl(
    path: Path, compression: Optional[str]
) -> Tuple[TraceMeta, Iterator[TraceEvent]]:
    fh = _io.TextIOWrapper(_open_stream(path, compression), encoding="utf-8")
    try:
        try:
            header_line = fh.readline()
        except (OSError, EOFError, lzma.LZMAError) as exc:
            raise _decompress_error(path, exc) from None
        if not header_line.strip():
            raise TraceReadError(
                f"{path}:1: empty file, expected a metadata header line"
            )
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceReadError(
                f"{path}:1: malformed header line ({exc.msg}): "
                f"{_snippet(header_line)!r}"
            ) from None
        if not isinstance(header, dict) or "meta" not in header:
            raise TraceReadError(
                f"{path}:1: missing metadata header line: {_snippet(header_line)!r}"
            )
        try:
            meta = TraceMeta.from_dict(header["meta"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceReadError(f"{path}:1: bad trace metadata: {exc}") from None
    except BaseException:
        fh.close()
        raise

    def events() -> Iterator[TraceEvent]:
        with fh:
            lineno = 1
            while True:
                try:
                    line = fh.readline()
                except (OSError, EOFError, lzma.LZMAError) as exc:
                    raise _decompress_error(path, exc) from None
                if not line:
                    return
                lineno += 1
                if not line.strip():
                    continue
                try:
                    yield TraceEvent.from_dict(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise TraceReadError(
                        f"{path}:{lineno}: malformed event line ({exc.msg}): "
                        f"{_snippet(line)!r}"
                    ) from None
                except (KeyError, TypeError, ValueError) as exc:
                    raise TraceReadError(
                        f"{path}:{lineno}: bad trace event ({exc}): "
                        f"{_snippet(line)!r}"
                    ) from None

    return meta, events()


# -- binary ----------------------------------------------------------------


def _binary_bytes(trace: Trace) -> bytes:
    # Intern collection names and tags into a string table.
    strings: List[str] = [""]
    index = {"": 0}

    def intern(s: str) -> int:
        if s not in index:
            index[s] = len(strings)
            strings.append(s)
        return index[s]

    records = bytearray()
    for ev in trace.events:
        records += _REC.pack(
            ev.time,
            ev.thread,
            int(ev.kind),
            ev.barrier_id,
            ev.owner,
            ev.nbytes,
            intern(ev.collection),
            intern(ev.tag),
        )

    meta_blob = json.dumps(dict(trace.meta.to_dict())).encode("utf-8")
    strings_blob = json.dumps(strings).encode("utf-8")
    out = bytearray()
    out += _MAGIC
    out += struct.pack("<III", _VERSION, len(meta_blob), len(strings_blob))
    out += meta_blob
    out += strings_blob
    out += struct.pack("<Q", len(trace.events))
    out += records
    return bytes(out)


def _stream_binary(
    path: Path, compression: Optional[str]
) -> Tuple[TraceMeta, Iterator[TraceEvent]]:
    fh = _open_stream(path, compression)
    try:
        try:
            magic = fh.read(4)
            if magic != _MAGIC:
                raise TraceReadError(
                    f"{path}: not an ExtraP binary trace (magic={magic!r})"
                )
            fixed = fh.read(12)
            if len(fixed) != 12:
                raise TraceReadError(f"{path}: truncated trace (incomplete header)")
            version, meta_len, str_len = struct.unpack("<III", fixed)
            if version != _VERSION:
                raise TraceReadError(f"{path}: unsupported trace version {version}")
            meta_blob = fh.read(meta_len)
            strings_blob = fh.read(str_len)
            if len(meta_blob) != meta_len or len(strings_blob) != str_len:
                raise TraceReadError(
                    f"{path}: truncated trace (incomplete metadata/string table)"
                )
            try:
                meta = TraceMeta.from_dict(json.loads(meta_blob))
                strings: List[str] = json.loads(strings_blob)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise TraceReadError(
                    f"{path}: corrupt trace metadata: {exc}"
                ) from None
            count_blob = fh.read(8)
            if len(count_blob) != 8:
                raise TraceReadError(f"{path}: truncated trace (missing event count)")
            (count,) = struct.unpack("<Q", count_blob)
        except (OSError, EOFError, lzma.LZMAError) as exc:
            raise _decompress_error(path, exc) from None
    except BaseException:
        fh.close()
        raise

    def events() -> Iterator[TraceEvent]:
        with fh:
            for rec_index in range(count):
                try:
                    blob = fh.read(_REC.size)
                except (OSError, EOFError, lzma.LZMAError) as exc:
                    raise _decompress_error(path, exc) from None
                if len(blob) != _REC.size:
                    raise TraceReadError(
                        f"{path}: truncated trace (expected {count} records, "
                        f"got {rec_index})"
                    )
                t, th, k, b, o, n, ci, gi = _REC.unpack(blob)
                try:
                    kind = EventKind(k)
                    collection = strings[ci]
                    tag = strings[gi]
                except (ValueError, IndexError) as exc:
                    raise TraceReadError(
                        f"{path}: corrupt record #{rec_index}: {exc}"
                    ) from None
                yield TraceEvent(
                    time=t,
                    thread=th,
                    kind=kind,
                    barrier_id=b,
                    owner=o,
                    nbytes=n,
                    collection=collection,
                    tag=tag,
                )

    return meta, events()
