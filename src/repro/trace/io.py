"""Trace file formats.

Two on-disk encodings:

* **JSONL** (``.jsonl``): a metadata header line then one compact JSON
  object per event.  Human-inspectable; the default.
* **Binary** (``.bin``): the same header as a JSON line, then
  fixed-layout little-endian records (struct format ``<dii i i q``  plus
  interned strings).  ~5x smaller and faster for big traces.

Both formats round-trip exactly (modulo float64 representation, which is
exact for our timestamps).
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import BinaryIO, List

from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import Trace, TraceMeta
from repro.util.atomic import atomic_write


class TraceReadError(ValueError):
    """A trace file is malformed (truncated, corrupt, or not a trace).

    The message always names the file, and for line-oriented formats the
    1-based line number and the offending text, so a corrupted artifact
    is diagnosable without opening it in an editor.
    """


def _snippet(text: str, limit: int = 60) -> str:
    text = text.rstrip("\n")
    return text[:limit] + "..." if len(text) > limit else text


_MAGIC = b"XTRP"
_VERSION = 1
# time, thread, kind, barrier_id, owner, nbytes, collection idx, tag idx
_REC = struct.Struct("<diiiiqii")


#: Supported on-disk trace formats, by (case-insensitive) suffix.
SUPPORTED_SUFFIXES = (".jsonl", ".bin")


def _format_for(path: Path) -> str:
    """Normalized suffix for ``path``, or a helpful error."""
    suffix = path.suffix.lower()
    if suffix not in SUPPORTED_SUFFIXES:
        supported = ", ".join(SUPPORTED_SUFFIXES)
        raise ValueError(
            f"unknown trace suffix {path.suffix!r} for {path.name!r}; "
            f"supported formats: {supported}"
        )
    return suffix


def write_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` to ``path``; format chosen by suffix (.jsonl/.bin,
    case-insensitive)."""
    path = Path(path)
    if _format_for(path) == ".bin":
        _write_binary(trace, path)
    else:
        _write_jsonl(trace, path)
    return path


class TraceFileWriter:
    """Incremental JSONL trace writer.

    Real tracing runtimes stream events to disk instead of holding them
    in memory (that is where the event-buffer flush overhead of §3.2
    comes from).  Pass :meth:`append` as the tracing runtime's event
    sink to write as you measure::

        with TraceFileWriter("run.jsonl", meta) as w:
            rt = TracingRuntime(8, "grid", sink=w.append)
            rt.run(bodies)

    Only the JSONL format supports appending (the binary format needs
    the event count up front).
    """

    def __init__(self, path: str | Path, meta: TraceMeta):
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".bin":
            raise ValueError(
                f"{path}: TraceFileWriter streams .jsonl and cannot produce "
                "a binary trace (the .bin format needs the event count up "
                "front); buffer events and use write_trace() instead"
            )
        if suffix != ".jsonl":
            raise ValueError(
                f"streaming writer supports .jsonl only, got {path.suffix!r} "
                "(for .bin, collect events and use write_trace())"
            )
        self.path = path
        self._fh = path.open("w", encoding="utf-8")
        self._fh.write(json.dumps({"meta": dict(meta.to_dict())}) + "\n")
        self.count = 0

    def append(self, event: TraceEvent) -> None:
        """Write one event."""
        if self._fh is None:
            raise ValueError(f"{self.path}: writer already closed")
        self._fh.write(json.dumps(dict(event.to_dict())) + "\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace` (suffix chosen
    case-insensitively)."""
    path = Path(path)
    if _format_for(path) == ".bin":
        return _read_binary(path)
    return _read_jsonl(path)


# -- JSONL ---------------------------------------------------------------


def _write_jsonl(trace: Trace, path: Path) -> None:
    with atomic_write(path) as fh:
        fh.write(json.dumps({"meta": dict(trace.meta.to_dict())}) + "\n")
        for ev in trace.events:
            fh.write(json.dumps(dict(ev.to_dict())) + "\n")


def _read_jsonl(path: Path) -> Trace:
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line.strip():
            raise TraceReadError(f"{path}:1: empty file, expected a metadata header line")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceReadError(
                f"{path}:1: malformed header line ({exc.msg}): "
                f"{_snippet(header_line)!r}"
            ) from None
        if not isinstance(header, dict) or "meta" not in header:
            raise TraceReadError(
                f"{path}:1: missing metadata header line: {_snippet(header_line)!r}"
            )
        try:
            meta = TraceMeta.from_dict(header["meta"])
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceReadError(f"{path}:1: bad trace metadata: {exc}") from None
        events = []
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                events.append(TraceEvent.from_dict(json.loads(line)))
            except json.JSONDecodeError as exc:
                raise TraceReadError(
                    f"{path}:{lineno}: malformed event line ({exc.msg}): "
                    f"{_snippet(line)!r}"
                ) from None
            except (KeyError, TypeError, ValueError) as exc:
                raise TraceReadError(
                    f"{path}:{lineno}: bad trace event ({exc}): "
                    f"{_snippet(line)!r}"
                ) from None
    return Trace(meta, events)


# -- binary ----------------------------------------------------------------


def _write_binary(trace: Trace, path: Path) -> None:
    # Intern collection names and tags into a string table.
    strings: List[str] = [""]
    index = {"": 0}

    def intern(s: str) -> int:
        if s not in index:
            index[s] = len(strings)
            strings.append(s)
        return index[s]

    records = bytearray()
    for ev in trace.events:
        records += _REC.pack(
            ev.time,
            ev.thread,
            int(ev.kind),
            ev.barrier_id,
            ev.owner,
            ev.nbytes,
            intern(ev.collection),
            intern(ev.tag),
        )

    meta_blob = json.dumps(dict(trace.meta.to_dict())).encode("utf-8")
    strings_blob = json.dumps(strings).encode("utf-8")
    with atomic_write(path, mode="wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<III", _VERSION, len(meta_blob), len(strings_blob)))
        fh.write(meta_blob)
        fh.write(strings_blob)
        fh.write(struct.pack("<Q", len(trace.events)))
        fh.write(bytes(records))


def _read_binary(path: Path) -> Trace:
    with path.open("rb") as fh:
        magic = fh.read(4)
        if magic != _MAGIC:
            raise TraceReadError(
                f"{path}: not an ExtraP binary trace (magic={magic!r})"
            )
        fixed = fh.read(12)
        if len(fixed) != 12:
            raise TraceReadError(f"{path}: truncated trace (incomplete header)")
        version, meta_len, str_len = struct.unpack("<III", fixed)
        if version != _VERSION:
            raise TraceReadError(f"{path}: unsupported trace version {version}")
        meta_blob = fh.read(meta_len)
        strings_blob = fh.read(str_len)
        if len(meta_blob) != meta_len or len(strings_blob) != str_len:
            raise TraceReadError(
                f"{path}: truncated trace (incomplete metadata/string table)"
            )
        try:
            meta = TraceMeta.from_dict(json.loads(meta_blob))
            strings: List[str] = json.loads(strings_blob)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise TraceReadError(f"{path}: corrupt trace metadata: {exc}") from None
        count_blob = fh.read(8)
        if len(count_blob) != 8:
            raise TraceReadError(f"{path}: truncated trace (missing event count)")
        (count,) = struct.unpack("<Q", count_blob)
        data = fh.read(count * _REC.size)
        if len(data) != count * _REC.size:
            raise TraceReadError(
                f"{path}: truncated trace (expected {count} records, "
                f"got {len(data) // _REC.size})"
            )
    events = []
    for off in range(0, len(data), _REC.size):
        t, th, k, b, o, n, ci, gi = _REC.unpack_from(data, off)
        try:
            kind = EventKind(k)
            collection = strings[ci]
            tag = strings[gi]
        except (ValueError, IndexError) as exc:
            raise TraceReadError(
                f"{path}: corrupt record #{off // _REC.size}: {exc}"
            ) from None
        events.append(
            TraceEvent(
                time=t,
                thread=th,
                kind=kind,
                barrier_id=b,
                owner=o,
                nbytes=n,
                collection=collection,
                tag=tag,
            )
        )
    return Trace(meta, events)
