"""Trace statistics.

Section 4.1 of the paper uses "trace statistics" to reason about
bottlenecks (e.g. noticing Grid has only 650 barriers, or that remote
transfers were recorded at the whole-element size).  This module computes
those statistics from a merged or translated trace.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import ThreadTrace, Trace


@dataclass
class TraceStats:
    """Summary statistics of a trace.

    All times in microseconds.
    """

    n_threads: int = 0
    n_events: int = 0
    n_barriers: int = 0
    n_remote_reads: int = 0
    n_remote_writes: int = 0
    remote_bytes_total: int = 0
    remote_bytes_min: int = 0
    remote_bytes_max: int = 0
    duration: float = 0.0
    compute_time_per_thread: List[float] = field(default_factory=list)
    remote_reads_per_thread: List[int] = field(default_factory=list)
    remote_by_collection: Dict[str, int] = field(default_factory=dict)

    @property
    def total_compute_time(self) -> float:
        return sum(self.compute_time_per_thread)

    @property
    def mean_remote_bytes(self) -> float:
        n = self.n_remote_reads + self.n_remote_writes
        return self.remote_bytes_total / n if n else 0.0

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"{self.n_threads} threads, {self.n_events} events, "
            f"{self.n_barriers} barriers, "
            f"{self.n_remote_reads} remote reads / {self.n_remote_writes} writes "
            f"({self.remote_bytes_total} bytes, "
            f"min {self.remote_bytes_min} / max {self.remote_bytes_max}), "
            f"span {self.duration:.1f} us, "
            f"compute {self.total_compute_time:.1f} us"
        )


def compute_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for a merged trace."""
    s = TraceStats(n_threads=trace.meta.n_threads, n_events=len(trace.events))
    if not trace.events:
        return s
    s.duration = trace.duration
    s.n_barriers = trace.barrier_count()

    sizes: List[int] = []
    by_coll: Counter = Counter()
    reads_per_thread = [0] * trace.meta.n_threads
    for ev in trace.events:
        if ev.kind == EventKind.REMOTE_READ:
            s.n_remote_reads += 1
            sizes.append(ev.nbytes)
            by_coll[ev.collection] += 1
            reads_per_thread[ev.thread] += 1
        elif ev.kind == EventKind.REMOTE_WRITE:
            s.n_remote_writes += 1
            sizes.append(ev.nbytes)
            by_coll[ev.collection] += 1
    s.remote_bytes_total = sum(sizes)
    s.remote_bytes_min = min(sizes) if sizes else 0
    s.remote_bytes_max = max(sizes) if sizes else 0
    s.remote_by_collection = dict(by_coll)
    s.remote_reads_per_thread = reads_per_thread

    # Per-thread compute time: sum of inter-event gaps excluding barrier wait.
    s.compute_time_per_thread = [
        sum(tt.compute_deltas()) for tt in trace.split_by_thread()
    ]
    return s


def compute_stats_per_thread(traces: Sequence[ThreadTrace]) -> TraceStats:
    """Compute stats for a set of per-thread (translated) traces."""
    merged_events: List[TraceEvent] = []
    for tt in traces:
        merged_events.extend(tt.events)
    merged_events.sort(key=lambda e: (e.time, e.thread))
    from repro.trace.trace import TraceMeta  # local import to avoid cycle noise

    t = Trace(TraceMeta(n_threads=len(traces)), merged_events)
    return compute_stats(t)
