"""Trace containers.

:class:`Trace` holds the merged event stream of an n-thread run plus
metadata about the execution environment it was measured in (E1 in the
paper's terminology).  :class:`ThreadTrace` is one thread's event list —
the unit the translation algorithm emits and the simulator replays.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence

from repro.trace.events import EventKind, TraceEvent


@dataclass
class TraceMeta:
    """Metadata identifying the measured execution environment.

    Attributes
    ----------
    program:
        Benchmark/program name.
    n_threads:
        Number of pC++ threads in the run.
    trace_mflops:
        Scalar MFLOPS rating of the machine the trace was measured on
        (the Sun4 in the paper: 1.1360).  The simulator's ``MipsRatio``
        rescales relative to this.
    size_mode:
        How remote transfer sizes were recorded: ``"compiler"`` (whole
        collection element, the paper's original abstraction) or
        ``"actual"`` (exact bytes requested, the §4.1 fix).
    problem:
        Free-form problem parameters (problem size, seeds, distribution).
    """

    program: str = ""
    n_threads: int = 0
    trace_mflops: float = 1.1360
    size_mode: str = "compiler"
    problem: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Mapping[str, Any]:
        return {
            "program": self.program,
            "n_threads": self.n_threads,
            "trace_mflops": self.trace_mflops,
            "size_mode": self.size_mode,
            "problem": dict(self.problem),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TraceMeta":
        return cls(
            program=str(d.get("program", "")),
            n_threads=int(d.get("n_threads", 0)),
            trace_mflops=float(d.get("trace_mflops", 1.1360)),
            size_mode=str(d.get("size_mode", "compiler")),
            problem=dict(d.get("problem", {})),
        )


def digest_events(meta: TraceMeta, events: Iterable[TraceEvent]) -> str:
    """SHA-256 over trace metadata + an event stream (hex).

    The single source of trace content addressing: :meth:`Trace.digest`
    calls it with the in-memory event list, and the streaming readers
    (:func:`repro.trace.io.streaming_digest`) call it with a generator,
    so a million-event compressed file hashes without materializing —
    and always equals the digest of the fully-loaded trace.
    """
    h = hashlib.sha256()
    h.update(json.dumps(dict(meta.to_dict()), sort_keys=True).encode("utf-8"))
    for ev in events:
        # repr() of a float is exact round-trip text, so equal
        # timestamps always hash equally.
        h.update(
            (
                f"\n{ev.time!r}|{ev.thread}|{int(ev.kind)}|{ev.barrier_id}"
                f"|{ev.owner}|{ev.nbytes}|{ev.collection}|{ev.tag}"
            ).encode("utf-8")
        )
    return h.hexdigest()


class Trace:
    """Merged event stream of one n-thread, 1-processor run."""

    def __init__(self, meta: TraceMeta, events: Iterable[TraceEvent] = ()):
        self.meta = meta
        self.events: List[TraceEvent] = list(events)
        #: §5 extrapolation-safety findings attached by the tracing
        #: runtime (in-memory diagnostic; not serialised to trace files).
        self.race_findings: List[Any] = []

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    @property
    def n_threads(self) -> int:
        return self.meta.n_threads

    @property
    def duration(self) -> float:
        """Virtual time span of the merged trace."""
        if not self.events:
            return 0.0
        return self.events[-1].time - self.events[0].time

    def events_for_thread(self, thread: int) -> List[TraceEvent]:
        """All events of one thread, in trace order."""
        return [e for e in self.events if e.thread == thread]

    def split_by_thread(self) -> List["ThreadTrace"]:
        """Partition the merged stream into per-thread traces.

        Events keep their original (merged-run) timestamps; translation
        (:mod:`repro.core.translation`) is what rebases them.
        """
        per: List[List[TraceEvent]] = [[] for _ in range(self.meta.n_threads)]
        for ev in self.events:
            if not 0 <= ev.thread < self.meta.n_threads:
                raise ValueError(
                    f"event thread {ev.thread} out of range 0..{self.meta.n_threads - 1}"
                )
            per[ev.thread].append(ev)
        return [ThreadTrace(t, evs) for t, evs in enumerate(per)]

    def barrier_count(self) -> int:
        """Number of distinct barrier episodes in the trace."""
        return len({e.barrier_id for e in self.events if e.kind == EventKind.BARRIER_ENTER})

    def digest(self) -> str:
        """Stable SHA-256 of the trace content (hex).

        Hashes the metadata (canonical sorted-key JSON) and every event
        field through an encoding independent of the on-disk format, so
        a trace has the same digest whether it was just measured, read
        from ``.jsonl``, or read from ``.bin`` (compressed or not; see
        :func:`repro.trace.io.streaming_digest` for the one-pass file
        form).  Used as the trace part of sweep cache keys
        (:mod:`repro.sweep.cache`) and reported by ``extrap validate``.
        ``race_findings`` are in-memory diagnostics and do not
        participate.
        """
        return digest_events(self.meta, self.events)

    @classmethod
    def from_thread_traces(
        cls, meta: TraceMeta, threads: Sequence["ThreadTrace"]
    ) -> "Trace":
        """Merge per-thread traces back into one time-ordered trace.

        The inverse of :meth:`split_by_thread` for translated or
        extrapolated traces (ties broken by thread id, so the result is
        deterministic).
        """
        events = [e for tt in threads for e in tt.events]
        events.sort(key=lambda e: (e.time, e.thread))
        merged = cls(meta, events)
        if meta.n_threads and meta.n_threads != len(threads):
            raise ValueError(
                f"metadata says {meta.n_threads} threads, got {len(threads)}"
            )
        return merged


@dataclass
class ThreadTrace:
    """One thread's event list (translated traces are lists of these)."""

    thread: int
    events: List[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def start_time(self) -> float:
        if not self.events:
            return 0.0
        return self.events[0].time

    @property
    def end_time(self) -> float:
        if not self.events:
            return 0.0
        return self.events[-1].time

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def compute_deltas(self) -> List[float]:
        """Inter-event gaps — the thread's compute phases.

        The gap *before* each event (first gap measured from the thread's
        begin event).  Barrier-exit-to-next-event gaps are compute; the
        enter-to-exit gap is synchronisation wait, not compute, and is
        excluded.
        """
        gaps: List[float] = []
        prev: TraceEvent | None = None
        for ev in self.events:
            if prev is not None:
                gap = ev.time - prev.time
                if ev.kind == EventKind.BARRIER_EXIT:
                    gap = 0.0  # waiting at the barrier, not computing
                gaps.append(gap)
            prev = ev
        return gaps
