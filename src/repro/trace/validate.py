"""Structural validation of traces.

The translation algorithm and the simulator both assume well-formed
traces: monotone per-thread timestamps, begin/end delimiters, matched
barrier entry/exit pairs, and every thread participating in every global
barrier.  Validation failures point at instrumentation bugs (or corrupted
trace files) early, with a precise message.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import Trace


class TraceValidationError(ValueError):
    """A trace violates a structural invariant."""


def validate_trace(trace: Trace, *, require_global_barriers: bool = True) -> None:
    """Check structural invariants; raise :class:`TraceValidationError`.

    Invariants:

    1. every event's thread id is in range;
    2. per-thread timestamps are non-decreasing;
    3. each thread's first event is THREAD_BEGIN and last is THREAD_END,
       with no others in between;
    4. per thread, BARRIER_ENTER / BARRIER_EXIT strictly alternate and
       carry matching ids;
    5. (if ``require_global_barriers``) every barrier id is entered by
       every thread exactly once — pC++ barriers are global;
    6. remote events carry a valid owner != requesting thread and a
       positive size.
    """
    n = trace.meta.n_threads
    if n <= 0:
        raise TraceValidationError(f"trace metadata has n_threads={n}")

    last_time: Dict[int, float] = {}
    begun: Set[int] = set()
    ended: Set[int] = set()
    open_barrier: Dict[int, int] = {}  # thread -> barrier id it is inside
    barrier_entries: Dict[int, Set[int]] = {}  # barrier id -> set of threads

    for i, ev in enumerate(trace.events):
        where = f"event #{i} ({ev.kind.name} @ {ev.time} thread {ev.thread})"
        if not 0 <= ev.thread < n:
            raise TraceValidationError(f"{where}: thread id out of range 0..{n - 1}")
        if ev.thread in last_time and ev.time < last_time[ev.thread]:
            raise TraceValidationError(
                f"{where}: time goes backwards for thread {ev.thread} "
                f"({last_time[ev.thread]} -> {ev.time})"
            )
        last_time[ev.thread] = ev.time

        if ev.thread in ended:
            raise TraceValidationError(f"{where}: event after THREAD_END")

        if ev.kind == EventKind.THREAD_BEGIN:
            if ev.thread in begun:
                raise TraceValidationError(f"{where}: duplicate THREAD_BEGIN")
            begun.add(ev.thread)
            continue
        if ev.thread not in begun:
            raise TraceValidationError(f"{where}: event before THREAD_BEGIN")

        if ev.kind == EventKind.THREAD_END:
            if ev.thread in open_barrier:
                raise TraceValidationError(
                    f"{where}: thread ends inside barrier {open_barrier[ev.thread]}"
                )
            ended.add(ev.thread)
        elif ev.kind == EventKind.BARRIER_ENTER:
            if ev.thread in open_barrier:
                raise TraceValidationError(
                    f"{where}: nested barrier (already in {open_barrier[ev.thread]})"
                )
            if ev.barrier_id < 0:
                raise TraceValidationError(f"{where}: barrier id missing")
            entries = barrier_entries.setdefault(ev.barrier_id, set())
            if ev.thread in entries:
                raise TraceValidationError(
                    f"{where}: thread enters barrier {ev.barrier_id} twice"
                )
            entries.add(ev.thread)
            open_barrier[ev.thread] = ev.barrier_id
        elif ev.kind == EventKind.BARRIER_EXIT:
            if open_barrier.get(ev.thread) != ev.barrier_id:
                raise TraceValidationError(
                    f"{where}: exit from barrier {ev.barrier_id} the thread "
                    f"is not in (open: {open_barrier.get(ev.thread)})"
                )
            del open_barrier[ev.thread]
        elif ev.kind in (EventKind.REMOTE_READ, EventKind.REMOTE_WRITE):
            if not 0 <= ev.owner < n:
                raise TraceValidationError(f"{where}: owner {ev.owner} out of range")
            if ev.owner == ev.thread:
                raise TraceValidationError(
                    f"{where}: remote access to the thread's own element"
                )
            if ev.nbytes <= 0:
                raise TraceValidationError(f"{where}: non-positive size {ev.nbytes}")

    missing_begin = set(range(n)) - begun
    if missing_begin:
        raise TraceValidationError(f"threads missing THREAD_BEGIN: {sorted(missing_begin)}")
    missing_end = set(range(n)) - ended
    if missing_end:
        raise TraceValidationError(f"threads missing THREAD_END: {sorted(missing_end)}")
    if open_barrier:
        raise TraceValidationError(f"unclosed barriers at end of trace: {open_barrier}")

    if require_global_barriers:
        for bid, entries in barrier_entries.items():
            if entries != set(range(n)):
                raise TraceValidationError(
                    f"barrier {bid} entered by {sorted(entries)}, "
                    f"expected all {n} threads"
                )
