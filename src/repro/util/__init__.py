"""Shared utilities: units, deterministic RNG, ASCII tables and plots.

These helpers are deliberately dependency-light; everything in the rest of
the package that needs unit conversion, formatted reporting, or seeded
randomness goes through this module so behaviour stays consistent.
"""

from repro.util.units import (
    MICROSECONDS_PER_SECOND,
    bytes_per_us_to_mbytes_per_s,
    mbytes_per_s_to_us_per_byte,
    mflops_to_us_per_flop,
    us_per_byte_to_mbytes_per_s,
    us_to_ms,
    us_to_s,
)
from repro.util.atomic import atomic_write, atomic_write_bytes, atomic_write_text
from repro.util.log import get_logger, setup_logging
from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import format_table
from repro.util.asciiplot import ascii_lanes, ascii_series_plot

__all__ = [
    "ascii_lanes",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "get_logger",
    "setup_logging",
    "MICROSECONDS_PER_SECOND",
    "bytes_per_us_to_mbytes_per_s",
    "mbytes_per_s_to_us_per_byte",
    "mflops_to_us_per_flop",
    "us_per_byte_to_mbytes_per_s",
    "us_to_ms",
    "us_to_s",
    "make_rng",
    "spawn_rngs",
    "format_table",
    "ascii_series_plot",
]
