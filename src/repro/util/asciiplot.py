"""Minimal ASCII line plots for experiment figures.

The paper's evaluation is mostly figures (speedup and execution-time
curves).  The harness regenerates each figure's series numerically and
also renders a rough terminal plot so the *shape* (who wins, where curves
cross, where they level off) is visible without matplotlib, which is not
available offline.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence, Tuple

_MARKS = "ox+*#@%&"


def ascii_lanes(
    lanes: Sequence[Tuple[str, str]],
    *,
    title: str | None = None,
    legend: Mapping[str, str] | None = None,
    footer: str | None = None,
) -> str:
    """Frame pre-rendered character lanes into a labelled chart.

    ``lanes`` is a sequence of ``(label, cells)`` pairs; every ``cells``
    string must have the same width.  This is the shared chassis for
    Gantt-style charts (one lane per processor/thread): callers paint
    the cells, this function adds labels, borders, an optional legend
    (``mark -> meaning``) and footer line.
    """
    if not lanes:
        raise ValueError("no lanes to render")
    width = len(lanes[0][1])
    if any(len(cells) != width for _, cells in lanes):
        raise ValueError("all lanes must have the same width")
    label_w = max(len(label) for label, _ in lanes)
    lines = []
    if title:
        lines.append(title)
    for label, cells in lanes:
        lines.append(f"  {label:<{label_w}} |{cells}|")
    if footer:
        lines.append(" " * (label_w + 3) + footer)
    if legend:
        lines.append(
            "  legend: "
            + "  ".join(f"{mark}={name}" for mark, name in legend.items())
        )
    return "\n".join(lines)


def ascii_series_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 18,
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
    logx: bool = False,
) -> str:
    """Render named (x, y) series onto a character grid.

    Each series gets a distinct mark; a legend maps marks back to names.
    Points that collide on the grid keep the mark of the first series
    plotted (series order is the caller's priority order).
    """
    if not series:
        raise ValueError("no series to plot")
    pts = [(x, y) for s in series.values() for (x, y) in s]
    if not pts:
        raise ValueError("all series are empty")

    def tx(x: float) -> float:
        if logx:
            if x <= 0:
                raise ValueError("logx plot requires positive x values")
            return math.log2(x)
        return x

    xs = [tx(x) for x, _ in pts]
    ys = [y for _, y in pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, data) in enumerate(series.items()):
        mark = _MARKS[si % len(_MARKS)]
        for x, y in data:
            col = int(round((tx(x) - xmin) / xspan * (width - 1)))
            row = int(round((y - ymin) / yspan * (height - 1)))
            r, c = height - 1 - row, col
            if grid[r][c] == " ":
                grid[r][c] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ymax:10.3g} +" + "-" * width + "+")
    for r in range(height):
        lines.append(" " * 11 + "|" + "".join(grid[r]) + "|")
    lines.append(f"{ymin:10.3g} +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{xlabel}: {min(x for x, _ in pts):g} .. "
        f"{max(x for x, _ in pts):g}   ({ylabel})"
    )
    for si, name in enumerate(series):
        lines.append(f"    {_MARKS[si % len(_MARKS)]} = {name}")
    return "\n".join(lines)
