"""Crash-safe file writes.

Every artifact the pipeline produces — traces, result JSON, benchmark
baselines, exported timelines — is written through :func:`atomic_write`:
the content goes to a temporary file in the destination directory and is
moved into place with ``os.replace`` only once fully written and
flushed.  A crash (or a fault-injection run killed mid-write) leaves
either the old file or the new file, never a truncated hybrid.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import IO, Iterator


@contextlib.contextmanager
def atomic_write(
    path: str | Path, *, mode: str = "w", encoding: str | None = None
) -> Iterator[IO]:
    """Context manager yielding a file handle that atomically replaces
    ``path`` on successful exit.

    The temporary file lives in the same directory as the destination so
    ``os.replace`` stays a same-filesystem rename.  On an exception the
    temporary file is removed and the destination is left untouched.
    """
    path = Path(path)
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_write is write-only, got mode {mode!r}")
    if encoding is None and "b" not in mode:
        encoding = "utf-8"
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=f".{path.name}.", suffix=".tmp"
    )
    fh = os.fdopen(fd, mode, encoding=encoding)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            fh.close()
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    path = Path(path)
    with atomic_write(path) as fh:
        fh.write(text)
    return path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``."""
    path = Path(path)
    with atomic_write(path, mode="wb") as fh:
        fh.write(data)
    return path
