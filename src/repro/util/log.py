"""Structured logging for the ``repro`` package.

One-line setup, one logger hierarchy: every module that wants to emit
status chatter (progress, warnings, diagnostics) calls
:func:`get_logger` and logs; the CLI (or an embedding application)
calls :func:`setup_logging` once to choose the threshold and sink.

The convention this package follows: ``print`` is reserved for primary
stdout artifacts — tables, reports, "wrote <file>" confirmations —
while everything a user might want to silence or crank up (per-step
progress, skipped-baseline warnings, timing chatter) goes through
logging, to stderr.  ``extrap -v`` / ``extrap --log-level debug`` set
the level globally.

Libraries embedding :mod:`repro` that configure logging themselves can
skip :func:`setup_logging` entirely; the ``repro`` logger propagates to
the root logger until it is explicitly configured here.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

#: root of the package's logger hierarchy
ROOT_LOGGER = "repro"

#: default message format: terse, grep-able, stderr-friendly
LOG_FORMAT = "%(levelname)s %(name)s: %(message)s"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The package logger, or a child of it.

    ``get_logger()`` returns the ``repro`` root; ``get_logger("obs")``
    returns ``repro.obs``; a name already under ``repro`` (e.g.
    ``__name__`` inside this package) is used as-is.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def level_from_verbosity(verbosity: int) -> int:
    """Map ``-v`` counts to logging levels (0 -> WARNING, 1 -> INFO,
    2+ -> DEBUG)."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def setup_logging(
    level: Union[int, str] = logging.WARNING,
    *,
    stream: Optional[IO[str]] = None,
    force: bool = False,
) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy and return its root.

    Parameters
    ----------
    level:
        A :mod:`logging` level number or name (``"debug"``, ``"info"``,
        ``"warning"``, ``"error"``).
    stream:
        Sink for the handler; defaults to ``sys.stderr``.
    force:
        Replace an existing handler instead of keeping it (used by
        tests and repeated CLI invocations in one process).

    Idempotent: calling twice without ``force`` only updates the level.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(level)
    if force:
        for handler in list(root.handlers):
            root.removeHandler(handler)
    if not root.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(LOG_FORMAT))
        root.addHandler(handler)
        # Once configured, messages stop propagating to the (possibly
        # application-owned) root logger: no double printing.
        root.propagate = False
    return root
