"""Deterministic random number generation.

Every stochastic choice in the library flows through a seeded
:class:`numpy.random.Generator` created here, so that a fixed seed yields
byte-identical traces, simulations, and benchmark inputs across runs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Default seed used when callers do not supply one.
DEFAULT_SEED: int = 19950501  # ICPP'95 tech-report month


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a seeded PCG64 generator.

    ``None`` maps to :data:`DEFAULT_SEED` (never to OS entropy) so that the
    library is reproducible by default; callers that genuinely want
    nondeterminism must construct their own generator.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rngs(seed: int | None, n: int) -> Sequence[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used to give each simulated thread its own stream so that per-thread
    results do not depend on thread interleaving.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    root = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]
