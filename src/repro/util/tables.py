"""Plain-text table formatting for experiment reports.

The experiment harness prints the same rows/series the paper's tables and
figures report; this formatter produces aligned, pipe-delimited tables that
read well in a terminal and in Markdown.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _fmt_cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    float_fmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Format rows into an aligned pipe table.

    >>> print(format_table(["P", "time"], [[1, 2.0], [2, 1.25]]))
    | P | time  |
    |---|-------|
    | 1 | 2.000 |
    | 2 | 1.250 |
    """
    str_rows = [[_fmt_cell(c, float_fmt) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in str_rows:
        lines.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    return "\n".join(lines)
