"""Unit conventions and conversions.

The whole library measures *time in microseconds* (float), matching the
units the paper quotes for every model parameter (Table 1, Table 3).
Bandwidths in the paper are quoted both as MB/s and as a per-byte transfer
time; these helpers convert between the two representations so parameter
sets can be written either way without ad-hoc arithmetic.

A "MByte" here is 10**6 bytes, which is how the paper's numbers work out:
0.118 us/byte == 8.5 MB/s and 0.05 us/byte == 20 MB/s.
"""

from __future__ import annotations

#: Number of microseconds in one second.
MICROSECONDS_PER_SECOND: float = 1_000_000.0

#: Bytes per megabyte for bandwidth arithmetic (decimal, as in the paper).
BYTES_PER_MBYTE: float = 1_000_000.0


def mbytes_per_s_to_us_per_byte(mbytes_per_s: float) -> float:
    """Convert a link bandwidth in MB/s to a per-byte transfer time in us.

    >>> round(mbytes_per_s_to_us_per_byte(20.0), 6)
    0.05
    >>> round(mbytes_per_s_to_us_per_byte(8.5), 3)
    0.118
    """
    if mbytes_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {mbytes_per_s}")
    return MICROSECONDS_PER_SECOND / (mbytes_per_s * BYTES_PER_MBYTE)


def us_per_byte_to_mbytes_per_s(us_per_byte: float) -> float:
    """Convert a per-byte transfer time in us to a bandwidth in MB/s.

    >>> round(us_per_byte_to_mbytes_per_s(0.05), 6)
    20.0
    """
    if us_per_byte <= 0:
        raise ValueError(f"per-byte time must be positive, got {us_per_byte}")
    return MICROSECONDS_PER_SECOND / (us_per_byte * BYTES_PER_MBYTE)


def bytes_per_us_to_mbytes_per_s(bytes_per_us: float) -> float:
    """Convert a rate in bytes/us to MB/s."""
    return bytes_per_us * MICROSECONDS_PER_SECOND / BYTES_PER_MBYTE


def mflops_to_us_per_flop(mflops: float) -> float:
    """Convert a MFLOPS rating to the virtual cost of one flop in us.

    The paper rates the Sun4 trace machine at 1.1360 scalar MFLOPS and the
    CM-5 node at 2.7645 MFLOPS; the work model charges compute phases at
    the trace machine's rate and the simulator rescales by ``MipsRatio``.

    >>> round(mflops_to_us_per_flop(1.0), 6)
    1.0
    """
    if mflops <= 0:
        raise ValueError(f"MFLOPS rating must be positive, got {mflops}")
    return 1.0 / mflops


def us_to_s(us: float) -> float:
    """Microseconds to seconds."""
    return us / MICROSECONDS_PER_SECOND


def us_to_ms(us: float) -> float:
    """Microseconds to milliseconds."""
    return us / 1000.0
