"""Cyclic benchmark (thread-level parallel cyclic reduction)."""

import numpy as np
import pytest

from repro.bench.cyclic import (
    CyclicConfig,
    make_program,
    reference_solution,
    _reduced_system,
)
from repro.core.pipeline import measure
from repro.trace.stats import compute_stats
from repro.trace.validate import validate_trace

CFG = CyclicConfig(system_size=1 << 10)


@pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
def test_solves_correctly(n):
    # PCR solution vs direct solve is asserted inside every thread.
    trace = measure(make_program(CFG)(n), n, name="cyclic")
    validate_trace(trace)


def test_rejects_non_power_of_two():
    with pytest.raises(ValueError, match="power of two"):
        make_program(CFG)(6)


def test_reduced_system_is_diagonally_dominant():
    eq = _reduced_system(CFG, 16)
    a, b, c, _ = eq.T
    assert np.all(np.abs(b) > np.abs(a) + np.abs(c))


def test_reference_matches_numpy():
    n = 8
    x = reference_solution(CFG, n)
    eq = _reduced_system(CFG, n)
    a, b, c, d = eq.T
    # Residual check of the dense reference itself.
    res = b * x
    res[1:] += a[1:] * x[:-1]
    res[:-1] += c[:-1] * x[1:]
    assert np.allclose(res, d)


def test_pcr_step_and_barrier_counts():
    n = 8
    trace = measure(make_program(CFG)(n), n, name="cyclic")
    # One barrier after elimination, one per PCR step, one at the end.
    assert trace.barrier_count() == 1 + 3 + 1
    st = compute_stats(trace)
    # Each step: <=2 remote reads per thread (boundary threads fewer).
    assert 0 < st.n_remote_reads <= 2 * n * 3


def test_block_shares_sum_to_system_size():
    cfg = CyclicConfig(system_size=1000, imbalance=0.4)
    for n in (1, 2, 8, 32):
        shares = cfg.block_shares(n)
        assert shares.sum() == pytest.approx(1000)
        assert np.all(shares > 0)


def test_zero_imbalance_is_even():
    cfg = CyclicConfig(system_size=1024, imbalance=0.0)
    shares = cfg.block_shares(4)
    assert np.allclose(shares, 256.0)


def test_config_validation():
    with pytest.raises(ValueError):
        CyclicConfig(system_size=0)
    with pytest.raises(ValueError):
        CyclicConfig(imbalance=1.5)
