"""Embar benchmark."""

import numpy as np
import pytest

from repro.bench.embar import EmbarConfig, make_program, reference_tallies
from repro.core.pipeline import measure
from repro.trace.stats import compute_stats
from repro.trace.validate import validate_trace

CFG = EmbarConfig(total_pairs=1 << 10, chunks=16)


@pytest.mark.parametrize("n", [1, 2, 4, 8])
def test_verifies_at_any_thread_count(n):
    # Internal verification compares the reduced tallies against the
    # serial reference; a trace in hand means it passed.
    trace = measure(make_program(CFG)(n), n, name="embar")
    validate_trace(trace)


def test_tallies_independent_of_thread_count():
    ref = reference_tallies(CFG)
    assert ref[: CFG.bins].sum() > 0  # some gaussians landed
    # Chunks are seeded independently of n, so the reference IS the
    # result at every thread count (asserted inside the program).


def test_communication_is_only_the_reduction():
    n = 8
    trace = measure(make_program(CFG)(n), n, name="embar")
    st = compute_stats(trace)
    # Tree reduction: at most n-1 combining reads plus the local gets.
    assert st.n_remote_reads <= 2 * n
    assert st.n_barriers <= 2 * (np.log2(n) + 1)


def test_compute_scales_down_with_threads():
    t1 = measure(make_program(CFG)(1), 1, name="embar")
    t8 = measure(make_program(CFG)(8), 8, name="embar")
    s1, s8 = compute_stats(t1), compute_stats(t8)
    assert max(s8.compute_time_per_thread) < s1.compute_time_per_thread[0] / 4


def test_config_validation():
    with pytest.raises(ValueError):
        EmbarConfig(total_pairs=0)
    with pytest.raises(ValueError):
        EmbarConfig(chunks=0)
    with pytest.raises(ValueError):
        EmbarConfig(bins=0)


def test_verification_catches_corruption():
    cfg = EmbarConfig(total_pairs=1 << 8, chunks=8)
    import repro.bench.embar as embar_mod

    maker = make_program(cfg)
    orig = embar_mod.reference_tallies
    embar_mod.reference_tallies = lambda c: orig(c) + 1.0
    try:
        with pytest.raises(AssertionError, match="disagree"):
            measure(maker(2), 2, name="embar")
    finally:
        embar_mod.reference_tallies = orig
