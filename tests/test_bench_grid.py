"""Grid benchmark (2-D Jacobi on distributed patches)."""

import pytest

from repro.bench.grid import PAPER_ELEMENT_NBYTES, GridConfig, make_program
from repro.bench.stencil import FLAG_NBYTES
from repro.core.pipeline import measure
from repro.trace.stats import compute_stats
from repro.trace.validate import validate_trace

CFG = GridConfig(patch_rows=4, patch_cols=4, m=4, iterations=3, residual_every=2)


@pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 32])
def test_matches_serial_jacobi(n):
    # Thread 0 asserts the assembled grid equals the serial reference.
    trace = measure(make_program(CFG)(n), n, name="grid")
    validate_trace(trace)


def test_actual_transfer_sizes_are_flag_and_boundary():
    """The §4.1 trace statistic: actual sizes are 2 and m*8 bytes."""
    trace = measure(make_program(CFG)(4), 4, name="grid", size_mode="actual")
    st = compute_stats(trace)
    assert st.remote_bytes_min == FLAG_NBYTES == 2
    assert st.remote_bytes_max == CFG.m * 8


def test_compiler_size_mode_records_element_size():
    cfg = GridConfig(
        patch_rows=4, patch_cols=4, m=4, iterations=2,
        element_nbytes=PAPER_ELEMENT_NBYTES,
    )
    trace = measure(make_program(cfg)(4), 4, name="grid", size_mode="compiler")
    st = compute_stats(trace)
    assert st.remote_bytes_min == PAPER_ELEMENT_NBYTES
    assert st.remote_bytes_max == PAPER_ELEMENT_NBYTES


def test_idle_threads_at_eight_processors():
    """The 4->8 processor plateau: at n=8 only isqrt(8)^2 = 4 threads own
    patches, but all 8 participate in every barrier."""
    trace8 = measure(make_program(CFG)(8), 8, name="grid")
    st8 = compute_stats(trace8)
    workers = sum(1 for c in st8.compute_time_per_thread if c > 0)
    assert workers == 4
    trace4 = measure(make_program(CFG)(4), 4, name="grid")
    st4 = compute_stats(trace4)
    assert st8.total_compute_time == pytest.approx(st4.total_compute_time)


def test_barrier_count():
    n = 4
    trace = measure(make_program(CFG)(n), n, name="grid")
    # 1 per sweep + reduction barriers (log2(4)+1 per reduction episode).
    reductions = CFG.iterations // CFG.residual_every
    assert trace.barrier_count() == CFG.iterations + reductions * 3


def test_no_remote_reads_on_one_thread():
    trace = measure(make_program(CFG)(1), 1, name="grid")
    assert compute_stats(trace).n_remote_reads == 0


def test_effective_element_nbytes():
    assert CFG.effective_element_nbytes() == 3 * 4 * 4 * 8 + 32
    assert GridConfig.paper_like().effective_element_nbytes() == PAPER_ELEMENT_NBYTES


def test_paper_like_has_many_barriers():
    cfg = GridConfig.paper_like()
    assert cfg.iterations >= 300  # ~650 barriers with reductions
    assert cfg.m == 16  # 128-byte boundaries


def test_config_validation():
    with pytest.raises(ValueError):
        GridConfig(patch_rows=0)
    with pytest.raises(ValueError):
        GridConfig(m=0)
    with pytest.raises(ValueError):
        GridConfig(iterations=0)
