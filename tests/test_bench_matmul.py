"""Matmul benchmark (the §4.2 validation program)."""

import pytest

from repro.bench.matmul import ALL_DISTRIBUTIONS, MatmulConfig, make_program, _row_segments
from repro.core.pipeline import measure
from repro.pcxx.distribution import Distribution2D, Dist
from repro.trace.stats import compute_stats
from repro.trace.validate import validate_trace


def test_nine_distributions():
    assert len(ALL_DISTRIBUTIONS) == 9
    assert ("block", "cyclic") in ALL_DISTRIBUTIONS


@pytest.mark.parametrize("rd,cd", ALL_DISTRIBUTIONS)
def test_product_correct_all_distributions(rd, cd):
    cfg = MatmulConfig(size=6, row_dist=rd, col_dist=cd)
    # Thread 0 asserts the product equals A @ B.
    trace = measure(make_program(cfg)(4), 4, name="matmul")
    validate_trace(trace)


@pytest.mark.parametrize("n", [1, 2, 4, 8, 9, 16])
def test_thread_counts(n):
    cfg = MatmulConfig(size=6)
    validate_trace(measure(make_program(cfg)(n), n, name="matmul"))


def test_row_segments():
    d = Distribution2D(4, 4, 4, Dist.BLOCK, Dist.BLOCK)
    segs = _row_segments(d, 0)
    assert [owner for owner, _ in segs] == [0, 1]
    assert [cols for _, cols in segs] == [[0, 1], [2, 3]]
    d_cyc = Distribution2D(4, 4, 4, Dist.BLOCK, Dist.CYCLIC)
    segs_cyc = _row_segments(d_cyc, 0)
    assert [owner for owner, _ in segs_cyc] == [0, 1, 0, 1]


def test_whole_whole_has_no_communication():
    cfg = MatmulConfig(size=6, row_dist="whole", col_dist="whole")
    trace = measure(make_program(cfg)(4), 4, name="matmul")
    st = compute_stats(trace)
    assert st.n_remote_reads == 0
    assert st.n_remote_writes == 0


def test_no_remote_writes_ever():
    """The benchmarks keep the deterministic-replay guarantee (§5):
    reads and barriers only."""
    for rd, cd in (("block", "block"), ("cyclic", "whole")):
        cfg = MatmulConfig(size=6, row_dist=rd, col_dist=cd)
        trace = measure(make_program(cfg)(4), 4, name="matmul")
        assert compute_stats(trace).n_remote_writes == 0


def test_distribution_changes_communication_volume():
    traces = {}
    for rd, cd in (("block", "block"), ("whole", "block")):
        cfg = MatmulConfig(size=8, row_dist=rd, col_dist=cd)
        traces[(rd, cd)] = compute_stats(
            measure(make_program(cfg)(4), 4, name="matmul")
        ).n_remote_reads
    assert traces[("block", "block")] != traces[("whole", "block")]


def test_config_validation():
    with pytest.raises(ValueError):
        MatmulConfig(size=1)
    with pytest.raises(ValueError):
        MatmulConfig(row_dist="diag")
