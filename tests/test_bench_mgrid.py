"""Mgrid benchmark (2-D multigrid V-cycles)."""

import numpy as np
import pytest

from repro.bench.mgrid import (
    MgridConfig,
    make_program,
    prolong_patch,
    restrict_patch,
    serial_jacobi,
    serial_solve,
    serial_vcycle,
)
from repro.bench.stencil import serial_residual
from repro.core.pipeline import measure
from repro.trace.validate import validate_trace

CFG = MgridConfig(patch_rows=2, patch_cols=2, m=4, cycles=1)


@pytest.mark.parametrize("n", [1, 2, 4, 8])
def test_matches_serial_vcycle(n):
    # Thread 0 asserts distributed == serial and residual reduction.
    trace = measure(make_program(CFG)(n), n, name="mgrid")
    validate_trace(trace)


def test_restriction_prolongation_adjoint_scale():
    rng = np.random.default_rng(1)
    fine = rng.random((8, 8))
    coarse = rng.random((4, 4))
    # <R f, c> == <f, P c> / 4 for averaging restriction and constant
    # prolongation (P = 4 R^T).
    lhs = float(np.sum(restrict_patch(fine) * coarse))
    rhs = float(np.sum(fine * prolong_patch(coarse))) / 4.0
    assert lhs == pytest.approx(rhs)


def test_restrict_shapes():
    assert restrict_patch(np.ones((8, 8))).shape == (4, 4)
    assert prolong_patch(np.ones((4, 4))).shape == (8, 8)
    assert np.allclose(restrict_patch(np.ones((8, 8))), 1.0)


def test_vcycle_beats_jacobi():
    """Multigrid must reduce the residual far faster than plain Jacobi
    with the same number of fine-grid sweeps."""
    rng = np.random.default_rng(7)
    cfg = MgridConfig(patch_rows=2, patch_cols=2, m=8, cycles=1)
    shape = (cfg.patch_rows * cfg.m, cfg.patch_cols * cfg.m)
    f = rng.uniform(-1, 1, shape)
    u0 = np.zeros(shape)
    r0 = np.linalg.norm(serial_residual(u0, f))
    mg = serial_vcycle(u0, f, cfg)
    r_mg = np.linalg.norm(serial_residual(mg, f))
    jac = serial_jacobi(u0, f, cfg.nu1 + cfg.nu2, omega=0.8)
    r_jac = np.linalg.norm(serial_residual(jac, f))
    assert r_mg < r_jac
    assert r_mg < 0.7 * r0


def test_multiple_cycles_keep_converging():
    rng = np.random.default_rng(3)
    cfg1 = MgridConfig(patch_rows=2, patch_cols=2, m=8, cycles=1)
    cfg3 = MgridConfig(patch_rows=2, patch_cols=2, m=8, cycles=3)
    shape = (16, 16)
    f = rng.uniform(-1, 1, shape)
    u0 = np.zeros(shape)
    r1 = np.linalg.norm(serial_residual(serial_solve(cfg1, u0, f), f))
    r3 = np.linalg.norm(serial_residual(serial_solve(cfg3, u0, f), f))
    assert r3 < r1


def test_levels():
    assert MgridConfig(m=8).levels == 4  # 8, 4, 2, 1
    assert MgridConfig(m=8).level_m(3) == 1


def test_config_validation():
    with pytest.raises(ValueError):
        MgridConfig(m=6)  # not a power of two
    with pytest.raises(ValueError):
        MgridConfig(cycles=0)
