"""Poisson benchmark (DST fast solver with transposes)."""

import numpy as np
import pytest

from repro.bench.poisson import (
    PoissonConfig,
    dst1,
    idst1,
    make_program,
    reference_solve,
    residual_norm,
)
from repro.core.pipeline import measure
from repro.trace.stats import compute_stats
from repro.trace.validate import validate_trace

CFG = PoissonConfig(size=16)


@pytest.mark.parametrize("n", [1, 2, 4, 8])
def test_matches_serial_fast_solver(n):
    # Thread 0 asserts agreement with the serial solve and a small
    # discrete residual.
    trace = measure(make_program(CFG)(n), n, name="poisson")
    validate_trace(trace)


def test_dst_inverse():
    rng = np.random.default_rng(2)
    x = rng.random((5, 8))
    assert np.allclose(idst1(dst1(x, axis=1), axis=1), x)
    assert np.allclose(idst1(dst1(x, axis=0), axis=0), x)


def test_reference_solves_poisson():
    rng = np.random.default_rng(4)
    f = rng.uniform(-1, 1, (CFG.size, CFG.size))
    u = reference_solve(CFG, f)
    assert residual_norm(u, f) < 1e-8 * np.linalg.norm(f)


def test_all_to_all_transposes():
    n = 4
    trace = measure(make_program(CFG)(n), n, name="poisson", size_mode="actual")
    st = compute_stats(trace)
    # Two transposes, each reading n-1 remote panels per thread.
    assert st.n_remote_reads == 2 * n * (n - 1)
    block = (CFG.size // n) ** 2 * 8
    assert st.remote_bytes_min == block
    assert st.remote_bytes_max == block


def test_uneven_rows():
    cfg = PoissonConfig(size=10)
    trace = measure(make_program(cfg)(4), 4, name="poisson")
    validate_trace(trace)


def test_config_validation():
    with pytest.raises(ValueError):
        PoissonConfig(size=1)
