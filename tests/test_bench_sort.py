"""Sort benchmark (block bitonic sort)."""

import pytest

from repro.bench.sort import SortConfig, make_program
from repro.core.pipeline import measure
from repro.trace.stats import compute_stats
from repro.trace.validate import validate_trace

CFG = SortConfig(total_keys=1 << 8)


@pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
def test_sorts_correctly(n):
    # Each thread asserts its final block equals numpy.sort's slice.
    trace = measure(make_program(CFG)(n), n, name="sort")
    validate_trace(trace)


def test_rejects_non_power_of_two_threads():
    with pytest.raises(ValueError, match="power of two"):
        make_program(CFG)(3)


def test_rejects_indivisible_keys():
    with pytest.raises(ValueError, match="power of two"):
        SortConfig(total_keys=1000)


def test_network_step_count():
    n = 8
    trace = measure(make_program(CFG)(n), n, name="sort")
    st = compute_stats(trace)
    steps = 3 * 4 // 2  # log n * (log n + 1) / 2 = 6
    # One whole-block partner read per thread per step.
    assert st.n_remote_reads == n * steps
    # Transfers are whole blocks.
    assert st.remote_bytes_min == (CFG.total_keys // n) * 8


def test_communication_volume_is_whole_blocks():
    n = 4
    trace = measure(make_program(CFG)(n), n, name="sort")
    st = compute_stats(trace)
    block_bytes = (CFG.total_keys // n) * 8
    assert st.remote_bytes_total == st.n_remote_reads * block_bytes
