"""Sparse benchmark (distributed CG)."""

import numpy as np
import pytest

from repro.bench.sparse import SparseConfig, build_matrix, build_rhs, make_program, serial_cg
from repro.core.pipeline import measure
from repro.trace.stats import compute_stats
from repro.trace.validate import validate_trace

CFG = SparseConfig(size=48, density=0.1, iterations=3)


@pytest.mark.parametrize("n", [1, 2, 4, 8])
def test_matches_serial_cg(n):
    # Thread 0 asserts the residual history and iterate match serial CG.
    trace = measure(make_program(CFG)(n), n, name="sparse")
    validate_trace(trace)


def test_matrix_is_spd():
    a = build_matrix(CFG)
    assert np.allclose(a, a.T)
    eigvals = np.linalg.eigvalsh(a)
    assert eigvals.min() > 0


def test_cg_converges():
    a, b = build_matrix(CFG), build_rhs(CFG)
    x, hist = serial_cg(a, b, 20)
    assert hist[-1] < 1e-6 * hist[0]
    assert np.allclose(a @ x, b, atol=1e-5)


def test_gather_sizes_are_needed_entries_only():
    n = 4
    trace = measure(make_program(CFG)(n), n, name="sparse", size_mode="actual")
    st = compute_stats(trace)
    seg_bytes = (CFG.size // n) * 8
    # Actual gathers carry at most a whole segment (usually less).
    gathers = [
        e.nbytes
        for e in trace.events
        if e.kind.name == "REMOTE_READ" and e.collection == "p_seg"
    ]
    assert gathers and max(gathers) <= seg_bytes
    assert min(gathers) >= 8


def test_irregular_communication():
    """Different thread pairs exchange different amounts (random pattern)."""
    n = 4
    trace = measure(make_program(CFG)(n), n, name="sparse", size_mode="actual")
    sizes = {
        (e.thread, e.owner): e.nbytes
        for e in trace.events
        if e.kind.name == "REMOTE_READ" and e.collection == "p_seg"
    }
    assert len(set(sizes.values())) > 1


def test_config_validation():
    with pytest.raises(ValueError):
        SparseConfig(size=1)
    with pytest.raises(ValueError):
        SparseConfig(density=0.0)
    with pytest.raises(ValueError):
        SparseConfig(iterations=0)
