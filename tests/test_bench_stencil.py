"""Shared stencil machinery (ghost exchange, Jacobi, assembly)."""

import numpy as np
import pytest

from repro.bench.stencil import (
    FLAG_NBYTES,
    assemble_global,
    fetch_ghosts,
    jacobi_update,
    patch_residual,
    serial_jacobi,
    serial_residual,
    split_into_patches,
)
from repro.pcxx import Collection, TracingRuntime, make_distribution
from repro.trace.events import EventKind


def test_split_assemble_roundtrip():
    rng = np.random.default_rng(0)
    grid = rng.random((8, 12))
    patches = split_into_patches(grid, 2, 3, 4)
    assert len(patches) == 6
    coll = Collection(
        "g", make_distribution((2, 3), 4, ("block", "block")), element_nbytes=8
    )
    coll.fill(patches)
    assert np.array_equal(assemble_global(coll, 2, 3, 4), grid)


def test_split_shape_mismatch():
    with pytest.raises(ValueError):
        split_into_patches(np.zeros((8, 8)), 2, 2, 3)


def test_jacobi_update_matches_global_sweep():
    """Patch-wise Jacobi with correct ghosts == global-array Jacobi."""
    rng = np.random.default_rng(1)
    m, pr, pc = 4, 2, 2
    grid = rng.random((pr * m, pc * m))
    h2f = rng.random((pr * m, pc * m))
    want = serial_jacobi(grid, h2f, 1)

    patches = split_into_patches(grid, pr, pc, m)
    f_patches = split_into_patches(h2f, pr, pc, m)
    out = np.zeros_like(grid)
    for (r, c), patch in patches.items():
        ghosts = {
            "north": patches[(r - 1, c)][-1, :] if r > 0 else np.zeros(m),
            "south": patches[(r + 1, c)][0, :] if r < pr - 1 else np.zeros(m),
            "west": patches[(r, c - 1)][:, -1] if c > 0 else np.zeros(m),
            "east": patches[(r, c + 1)][:, 0] if c < pc - 1 else np.zeros(m),
        }
        out[r * m : (r + 1) * m, c * m : (c + 1) * m] = jacobi_update(
            patch, ghosts, f_patches[(r, c)]
        )
    assert np.allclose(out, want)


def test_patch_residual_matches_global():
    rng = np.random.default_rng(2)
    m = 4
    u = rng.random((m, m))
    h2f = rng.random((m, m))
    ghosts = {k: np.zeros(m) for k in ("north", "south", "west", "east")}
    assert np.allclose(patch_residual(u, ghosts, h2f), serial_residual(u, h2f))


def test_weighted_jacobi():
    rng = np.random.default_rng(3)
    m = 4
    u = rng.random((m, m))
    h2f = rng.random((m, m))
    ghosts = {k: np.zeros(m) for k in ("north", "south", "west", "east")}
    full = jacobi_update(u, ghosts, h2f, omega=1.0)
    damped = jacobi_update(u, ghosts, h2f, omega=0.5)
    assert np.allclose(damped, u + 0.5 * (full - u))


def test_fetch_ghosts_event_pattern():
    """Remote neighbours cost a 2-byte flag read plus a boundary read;
    domain edges cost nothing and give zero ghosts."""
    n = 4
    rt = TracingRuntime(n, "s", size_mode="actual")
    m = 4
    dist = make_distribution((2, 2), n, ("block", "block"))
    coll = Collection("g", dist, element_nbytes=999)
    for r in range(2):
        for c in range(2):
            coll.poke((r, c), np.full((m, m), r * 2 + c, dtype=float))
    captured = {}

    def body(ctx):
        if ctx.tid == 0:
            captured["ghosts"] = yield from fetch_ghosts(ctx, coll, (0, 0), m, 2, 2)
        yield from ctx.barrier()

    trace = rt.run(body)
    ghosts = captured["ghosts"]
    assert np.all(ghosts["north"] == 0)  # domain edge
    assert np.all(ghosts["west"] == 0)
    assert np.all(ghosts["south"] == 2.0)  # patch (1,0) owned by thread 2
    assert np.all(ghosts["east"] == 1.0)
    reads = [e for e in trace.events if e.kind == EventKind.REMOTE_READ]
    # Two remote neighbours x (flag + boundary).
    assert len(reads) == 4
    assert sorted({e.nbytes for e in reads}) == [FLAG_NBYTES, m * 8]
