"""The benchmark registry (Table 2)."""

import pytest

from repro.bench import BENCHMARKS, get_benchmark


def test_all_table2_benchmarks_present():
    for name in ("embar", "cyclic", "sparse", "grid", "mgrid", "poisson", "sort"):
        assert name in BENCHMARKS
    assert "matmul" in BENCHMARKS  # §4.2


def test_descriptions_match_table2():
    assert "embarrassingly parallel" in BENCHMARKS["embar"].description
    assert "Cyclic reduction" in BENCHMARKS["cyclic"].description
    assert "conjugate gradient" in BENCHMARKS["sparse"].description
    assert "two dimensional grid" in BENCHMARKS["grid"].description
    assert "multigrid" in BENCHMARKS["mgrid"].description
    assert "Poisson solver" in BENCHMARKS["poisson"].description
    assert "Bitonic sort" in BENCHMARKS["sort"].description


def test_power_of_two_flags():
    assert BENCHMARKS["cyclic"].power_of_two_only
    assert BENCHMARKS["sort"].power_of_two_only
    assert not BENCHMARKS["grid"].power_of_two_only


def test_lookup():
    assert get_benchmark(" GRID ").name == "grid"
    with pytest.raises(ValueError):
        get_benchmark("missing")


def test_make_config_and_program():
    info = get_benchmark("embar")
    cfg = info.make_config(total_pairs=128, chunks=4)
    assert cfg.total_pairs == 128
    maker = info.make_program(cfg)
    assert callable(maker(2))
    with pytest.raises(ValueError):
        info.make_program(cfg, total_pairs=1)
