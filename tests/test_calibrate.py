"""Parameter calibration from reference-machine microbenchmarks."""

import pytest

from repro.bench.micro import (
    BarrierProbeConfig,
    ComputeProbeConfig,
    PingPongConfig,
    barrier_program,
    compute_program,
    pingpong_program,
)
from repro.calibrate import (
    calibrate,
    measure_barrier,
    measure_mflops,
    measure_roundtrip,
)
from repro.core.pipeline import measure
from repro.machine import CM5_SPEC, MachineSpec
from repro.pcxx.runtime import CM5_MFLOPS, SUN4_MFLOPS
from repro.trace.validate import validate_trace


def test_micro_configs_validate():
    with pytest.raises(ValueError):
        PingPongConfig(nbytes=0)
    with pytest.raises(ValueError):
        BarrierProbeConfig(episodes=0)
    with pytest.raises(ValueError):
        ComputeProbeConfig(flops=0)


def test_pingpong_needs_two_threads():
    with pytest.raises(ValueError):
        pingpong_program(PingPongConfig())(3)


def test_micro_programs_trace_cleanly():
    """The probes are ordinary programs: they run on the tracing runtime."""
    validate_trace(
        measure(pingpong_program(PingPongConfig(rounds=4))(2), 2, name="pp")
    )
    validate_trace(
        measure(barrier_program(BarrierProbeConfig(episodes=3))(4), 4, name="b")
    )
    validate_trace(
        measure(compute_program(ComputeProbeConfig(flops=100))(2), 2, name="c")
    )


def test_roundtrip_scales_with_payload():
    small = measure_roundtrip(CM5_SPEC, 64, rounds=8)
    large = measure_roundtrip(CM5_SPEC, 4096, rounds=8)
    assert large > small > 0


def test_barrier_scales_mildly_with_nodes():
    b2 = measure_barrier(CM5_SPEC, 2, episodes=4)
    b16 = measure_barrier(CM5_SPEC, 16, episodes=4)
    # Hardware barrier: per-episode cost is node-count independent.
    assert b16 == pytest.approx(b2)
    assert b2 == pytest.approx(
        CM5_SPEC.barrier_entry_time
        + CM5_SPEC.barrier_latency
        + CM5_SPEC.barrier_exit_time
    )


def test_mflops_recovered():
    assert measure_mflops(CM5_SPEC) == pytest.approx(CM5_MFLOPS, rel=0.02)


def test_calibration_recovers_spec_values():
    params, report = calibrate()
    # Per-byte rate: the fit isolates it exactly (linear in payload).
    assert report.byte_transfer_time == pytest.approx(
        CM5_SPEC.byte_time, rel=0.02
    )
    # Start-up absorbs service and headers: same order as the spec's.
    assert CM5_SPEC.msg_startup * 0.8 < report.comm_startup_time < 3 * CM5_SPEC.msg_startup
    assert params.processor.mips_ratio == pytest.approx(
        SUN4_MFLOPS / CM5_MFLOPS, rel=0.02
    )
    assert "calibrated" in params.name
    assert "ByteTransferTime" in report.summary()


def test_calibration_bad_sizes():
    with pytest.raises(ValueError):
        calibrate(small_nbytes=64, large_nbytes=64)


def test_calibrated_prediction_tracks_machine():
    """The paper's workflow end to end: probe the target, fit, predict,
    compare against the target's measurement of a real program."""
    from repro.bench.matmul import MatmulConfig, make_program
    from repro.core.pipeline import measure_and_extrapolate
    from repro.machine import run_on_machine

    params, _ = calibrate()
    maker = make_program(MatmulConfig(size=8))
    pred = measure_and_extrapolate(maker(8), 8, params, name="matmul").predicted_time
    meas = run_on_machine(maker(8), 8, name="matmul").execution_time
    assert 0.5 < pred / meas < 2.0


def test_calibrating_a_different_machine():
    slow = MachineSpec(
        name="slownet",
        byte_time=1.0,
        msg_startup=50.0,
        barrier_latency=20.0,
    )
    params, report = calibrate(slow)
    assert report.byte_transfer_time == pytest.approx(1.0, rel=0.02)
    assert report.barrier_time > 20.0
    assert params.name == "calibrated-slownet"
