"""The extrap command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "grid" in out and "cm5" in out and "fig4" in out


def test_trace_and_predict(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    assert main(["trace", "embar", "-n", "4", "-o", str(trace_path)]) == 0
    assert trace_path.exists()
    out = capsys.readouterr().out
    assert "4 threads" in out

    assert main(["predict", str(trace_path), "--preset", "cm5"]) == 0
    out = capsys.readouterr().out
    assert "predicted execution time" in out
    assert "0.41" in out  # MipsRatio from Table 3


def test_predict_with_overrides(tmp_path, capsys):
    trace_path = tmp_path / "t.bin"
    main(["trace", "embar", "-n", "2", "-o", str(trace_path)])
    capsys.readouterr()
    assert (
        main(
            [
                "predict",
                str(trace_path),
                "--preset",
                "ideal",
                "--set",
                "processor.mips_ratio=0.5",
                "--set",
                "network.contention=false",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "MipsRatio=0.5" in out


def test_bad_override(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    main(["trace", "embar", "-n", "2", "-o", str(trace_path)])
    assert main(["predict", str(trace_path), "--set", "nonsense"]) == 2
    err = capsys.readouterr().err
    assert "extrap: error:" in err and "Traceback" not in err


def test_report(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    main(["trace", "embar", "-n", "4", "-o", str(trace_path)])
    capsys.readouterr()
    assert main(["report", str(trace_path), "--preset", "cm5"]) == 0
    out = capsys.readouterr().out
    assert "extrapolation report" in out
    assert "timeline" in out
    assert "bottleneck summary" in out


def test_machine(capsys):
    assert main(["machine", "embar", "-n", "4"]) == 0
    out = capsys.readouterr().out
    assert "4-node cm5" in out
    assert "node 0" in out


def test_compare(tmp_path, capsys):
    trace_path = tmp_path / "t.jsonl"
    main(["trace", "embar", "-n", "4", "-o", str(trace_path)])
    capsys.readouterr()
    assert main(["compare", str(trace_path), "ideal", "cm5", "distributed_memory"]) == 0
    out = capsys.readouterr().out
    assert "vs first" in out
    assert "distributed_memory" in out
    # The ideal baseline row compares to itself as 1.0.
    assert "| 1.000" in out


def test_calibrate(capsys):
    assert main(["calibrate"]) == 0
    out = capsys.readouterr().out
    assert "ByteTransferTime" in out
    assert "calibrated-cm5" in out


def test_study(capsys):
    assert (
        main(
            [
                "study",
                "cyclic",
                "--preset",
                "distributed_memory",
                "-p",
                "1,2,4",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "speedup" in out


def test_study_with_overrides(capsys):
    assert (
        main(
            [
                "study",
                "embar",
                "--preset",
                "ideal",
                "-p",
                "1,2",
                "--set",
                "processor.mips_ratio=2.0",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "embar" in out


def test_study_filters_pow2(capsys):
    assert main(["study", "sort", "-p", "1,2,3,4"]) == 0
    out = capsys.readouterr().out
    # P=3 is dropped for power-of-two-only benchmarks (check the first
    # column only; later integer columns may legitimately contain 3).
    first_cells = [
        line.split("|")[1].strip()
        for line in out.splitlines()
        if line.startswith("|")
    ]
    assert "3" not in first_cells
    assert "4" in first_cells


def test_bad_processor_list(capsys):
    assert main(["study", "grid", "-p", "1,two"]) == 2
    err = capsys.readouterr().err
    assert "extrap: error:" in err and "Traceback" not in err


def test_experiment_tiny(capsys, monkeypatch):
    # Shrink fig4 to one benchmark to keep the CLI test fast.
    from repro.experiments import fig4 as fig4_mod
    from repro.experiments import runner

    def tiny(quick=True, **kw):
        return fig4_mod.run(
            quick=True, benchmarks=("embar",), processor_counts=(1, 2)
        )

    monkeypatch.setitem(runner.EXPERIMENTS, "fig4", tiny)
    assert main(["experiment", "fig4"]) == 0
    out = capsys.readouterr().out
    assert "embar" in out
