"""CLI robustness: validate subcommand, --faults, malformed-trace exits."""

import json

import pytest

from repro.cli import main
from repro.trace.events import EventKind, TraceEvent
from repro.trace.io import write_trace
from repro.trace.trace import Trace, TraceMeta


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "t.jsonl"
    assert main(["trace", "embar", "-n", "4", "-o", str(path)]) == 0
    return path


def plan_file(tmp_path, **fields):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(fields))
    return str(path)


# -- extrap validate ---------------------------------------------------------


def test_validate_ok(trace_path, capsys):
    assert main(["validate", str(trace_path)]) == 0
    assert "ok" in capsys.readouterr().out


def test_validate_invalid_structure(tmp_path, capsys):
    tr = Trace(
        TraceMeta(program="bad", n_threads=2),
        [
            TraceEvent(0.0, 0, EventKind.THREAD_BEGIN),
            TraceEvent(1.0, 0, EventKind.THREAD_END),
            TraceEvent(0.0, 1, EventKind.THREAD_BEGIN),
            # thread 1 never ends
        ],
    )
    path = write_trace(tr, tmp_path / "bad.jsonl")
    assert main(["validate", str(path)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_validate_no_global_barriers_flag(tmp_path, capsys):
    tr = Trace(
        TraceMeta(program="partial", n_threads=2),
        [
            TraceEvent(0.0, 0, EventKind.THREAD_BEGIN),
            TraceEvent(1.0, 0, EventKind.BARRIER_ENTER, barrier_id=0),
            TraceEvent(2.0, 0, EventKind.BARRIER_EXIT, barrier_id=0),
            TraceEvent(3.0, 0, EventKind.THREAD_END),
            TraceEvent(0.0, 1, EventKind.THREAD_BEGIN),
            TraceEvent(3.0, 1, EventKind.THREAD_END),
        ],
    )
    path = write_trace(tr, tmp_path / "partial.jsonl")
    assert main(["validate", str(path)]) == 1
    capsys.readouterr()
    assert main(["validate", str(path), "--no-global-barriers"]) == 0


def test_validate_missing_file(tmp_path, capsys):
    assert main(["validate", str(tmp_path / "nope.jsonl")]) == 2
    assert "not found" in capsys.readouterr().err


def test_validate_malformed_file(tmp_path, capsys):
    path = tmp_path / "garbage.jsonl"
    path.write_text('{"meta": {"program": "x", "n_threads": 1}}\nnot json\n')
    assert main(["validate", str(path)]) == 2
    err = capsys.readouterr().err
    assert "garbage.jsonl:2" in err


# -- malformed traces exit 2 everywhere -------------------------------------


@pytest.mark.parametrize("command", ["predict", "report"])
def test_malformed_trace_exits_2(tmp_path, capsys, command):
    path = tmp_path / "trunc.jsonl"
    path.write_text('{"meta": {"program": "x", "n_threads": 1}}\n{"t": 1.0,\n')
    assert main([command, str(path)]) == 2
    err = capsys.readouterr().err
    assert "extrap: error:" in err
    assert "trunc.jsonl:2" in err


# -- predict --faults --------------------------------------------------------


def test_predict_with_faults_reports_fault_model(trace_path, tmp_path, capsys):
    plan = plan_file(
        tmp_path,
        seed=7,
        msg_loss_rate=0.2,
        request_timeout=50000.0,
        max_retries=10,
    )
    assert main(["predict", str(trace_path), "--faults", plan]) == 0
    out = capsys.readouterr().out
    assert "fault model:" in out
    assert "dropped" in out


def test_predict_faults_determinism(trace_path, tmp_path, capsys):
    plan = plan_file(
        tmp_path, seed=3, msg_jitter=40.0, msg_loss_rate=0.1,
        request_timeout=50000.0,
    )
    assert main(["predict", str(trace_path), "--faults", plan]) == 0
    first = capsys.readouterr().out
    assert main(["predict", str(trace_path), "--faults", plan]) == 0
    assert capsys.readouterr().out == first


def test_predict_stall_exits_2_with_diagnosis(trace_path, tmp_path, capsys):
    plan = plan_file(
        tmp_path,
        seed=1,
        msg_loss_rate=1.0,
        loss_kinds=["reply"],
        request_timeout=1000.0,
        max_retries=2,
    )
    assert main(["predict", str(trace_path), "--faults", plan]) == 2
    err = capsys.readouterr().err
    assert "stalled" in err
    assert "proc" in err  # names at least one blocked processor
    assert err.count("\n") <= 1, "diagnosis must be one line"


def test_predict_bad_plan_file_exits_2(trace_path, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"msg_loss_rate": 2.0}')
    assert main(["predict", str(trace_path), "--faults", str(bad)]) == 2
    assert "msg_loss_rate" in capsys.readouterr().err
    capsys.readouterr()
    assert main(
        ["predict", str(trace_path), "--faults", str(tmp_path / "no.json")]
    ) == 2


def test_report_with_faults(trace_path, tmp_path, capsys):
    plan = plan_file(tmp_path, seed=2, msg_jitter=25.0)
    assert main(["report", str(trace_path), "--faults", plan]) == 0
    assert "fault model:" in capsys.readouterr().out


def test_wall_budget_flag_accepted(trace_path, capsys):
    assert main(["predict", str(trace_path), "--wall-budget", "600"]) == 0
    capsys.readouterr()


# -- exit-code contract ------------------------------------------------------
#
# Bad invocations exit 2 with a one-line `extrap: error: ...` message,
# matching argparse's own usage-error code — never a traceback.


def one_error_line(capsys):
    err = capsys.readouterr().err.strip()
    assert "Traceback" not in err
    lines = [l for l in err.splitlines() if l.startswith("extrap: error:")]
    assert len(lines) == 1, err
    return lines[0]


def test_predict_unknown_preset_exit_2(trace_path, capsys):
    assert main(["predict", str(trace_path), "--preset", "cm-5"]) == 2
    line = one_error_line(capsys)
    assert "unknown preset" in line and "cm5" in line


def test_predict_unknown_set_field_exit_2(trace_path, capsys):
    assert main(
        ["predict", str(trace_path), "--set", "processor.mips_ration=0.5"]
    ) == 2
    line = one_error_line(capsys)
    assert "mips_ration" in line


def test_predict_malformed_set_exit_2(trace_path, capsys):
    assert main(["predict", str(trace_path), "--set", "nodots"]) == 2
    assert "group.field=value" in one_error_line(capsys)


def test_predict_nonpositive_wall_budget_exit_2(trace_path, capsys):
    assert main(["predict", str(trace_path), "--wall-budget", "-1"]) == 2
    assert "--wall-budget" in one_error_line(capsys)


def test_report_unknown_preset_exit_2(trace_path, capsys):
    assert main(["report", str(trace_path), "--preset", "nope"]) == 2
    assert "unknown preset" in one_error_line(capsys)


def test_study_bad_processor_list_exit_2(capsys):
    assert main(["study", "embar", "-p", "1,two,4"]) == 2
    assert "processor-count list" in one_error_line(capsys)


def test_study_empty_processor_list_exit_2(capsys):
    assert main(["study", "embar", "-p", ","]) == 2
    assert "empty" in one_error_line(capsys)


def test_study_unknown_preset_exit_2(capsys):
    assert main(["study", "embar", "--preset", "sharedmemory"]) == 2
    line = one_error_line(capsys)
    assert "unknown preset" in line and "shared_memory" in line
