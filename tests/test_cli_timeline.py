"""CLI: timeline recording/rendering, error codes, bench --update-baseline,
and the profile export round trip."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "grid.jsonl"
    assert main(["trace", "grid", "-n", "4", "-o", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def timeline_file(tmp_path_factory, traced):
    out = tmp_path_factory.mktemp("timelines") / "run.json"
    assert (
        main(
            [
                "predict",
                str(traced),
                "--preset",
                "distributed_memory",
                "--timeline",
                str(out),
            ]
        )
        == 0
    )
    return out


def test_predict_timeline_writes_chrome_json(timeline_file, capsys):
    data = json.loads(timeline_file.read_text())
    assert data["traceEvents"]
    assert all(e["ph"] in {"X", "i", "C"} for e in data["traceEvents"])
    assert data["otherData"]["n_processors"] == 4


def test_timeline_default_summary(timeline_file, capsys):
    assert main(["timeline", str(timeline_file)]) == 0
    out = capsys.readouterr().out
    assert "4 processors" in out
    assert "compute" in out
    assert "net.in_flight" in out


def test_timeline_ascii_gantt(timeline_file, capsys):
    """Acceptance: `extrap timeline --ascii` renders a per-proc Gantt."""
    assert main(["timeline", str(timeline_file), "--ascii"]) == 0
    out = capsys.readouterr().out
    assert "timeline gantt" in out
    for proc in range(4):
        assert f"p{proc} " in out
    assert "legend:" in out


def test_timeline_counter_plot(timeline_file, capsys):
    assert (
        main(["timeline", str(timeline_file), "--counter", "net.in_flight"])
        == 0
    )
    out = capsys.readouterr().out
    assert "net.in_flight" in out
    assert main(["timeline", str(timeline_file), "--counter", "nope"]) == 2
    err = capsys.readouterr().err
    assert "no counter" in err


def test_timeline_csv_and_reexport(timeline_file, tmp_path, capsys):
    csv_path = tmp_path / "counters.csv"
    out_path = tmp_path / "normalized.json"
    assert (
        main(
            [
                "timeline",
                str(timeline_file),
                "--csv",
                str(csv_path),
                "-o",
                str(out_path),
            ]
        )
        == 0
    )
    assert csv_path.read_text().startswith("counter,t_us,value")
    # Normal form: re-export of a loaded timeline is byte-identical.
    assert out_path.read_bytes() == timeline_file.read_bytes()


def test_timeline_determinism_via_cli(traced, tmp_path):
    """Acceptance: same seed + params => byte-identical exports."""
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    base = ["predict", str(traced), "--preset", "cm5"]
    assert main(base + ["--timeline", str(a)]) == 0
    assert main(base + ["--timeline", str(b)]) == 0
    assert a.read_bytes() == b.read_bytes()


# -- missing-input error paths (one-line error, exit 2, no traceback) ------


def test_predict_missing_trace(capsys):
    assert main(["predict", "does-not-exist.jsonl"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("extrap: error:")
    assert "not found" in err


def test_report_and_compare_missing_trace(capsys):
    assert main(["report", "does-not-exist.jsonl"]) == 2
    assert "not found" in capsys.readouterr().err
    assert main(["compare", "does-not-exist.jsonl", "cm5"]) == 2
    assert "not found" in capsys.readouterr().err


def test_timeline_missing_file(capsys):
    assert main(["timeline", "does-not-exist.json"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("extrap: error:")


def test_timeline_invalid_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert main(["timeline", str(bad)]) == 2
    assert "traceEvents" in capsys.readouterr().err


def test_trace_unwritable_output(capsys):
    assert (
        main(["trace", "embar", "-n", "2", "-o", "/no/such/dir/t.jsonl"]) == 2
    )
    err = capsys.readouterr().err
    assert err.startswith("extrap: error:")


# -- bench --update-baseline ------------------------------------------------


def test_bench_update_baseline(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    baseline = tmp_path / "BENCH_small.json"
    args = [
        "bench",
        "--scale",
        "0.01",
        "--repeats",
        "1",
        "--baseline",
        str(baseline),
        "--update-baseline",
    ]
    # First run: no baseline yet — creates it.
    assert main(args) == 0
    out = capsys.readouterr().out
    assert str(baseline) in out  # "wrote <path>"
    assert baseline.exists()
    data = json.loads(baseline.read_text())
    assert data["schema"] == 1
    assert set(data["workloads"]) == {
        "timeout_chain", "pingpong", "simulator", "sweep", "serve", "diagnose",
        "sampling",
    }
    # Second run compares against it, then rewrites in place.
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "x baseline" in out
    assert json.loads(baseline.read_text())["schema"] == 1


# -- PR-1 profile export through the CLI ------------------------------------


def test_predict_profile_prints_and_roundtrips(traced, capsys):
    assert main(["predict", str(traced), "--profile"]) == 0
    out = capsys.readouterr().out
    assert "simulation profile" in out
    assert "events/s" in out


def test_profile_as_dict_roundtrips_to_json(traced):
    from repro.core import presets
    from repro.core.pipeline import extrapolate
    from repro.trace import read_trace

    trace = read_trace(traced)
    outcome = extrapolate(trace, presets.distributed_memory(), profile=True)
    profile = outcome.result.profile
    blob = json.dumps(profile.as_dict(), sort_keys=True)
    loaded = json.loads(blob)
    assert loaded["counters"]["events_total"] == (
        profile.counters.events_total
    )
    assert loaded["sim_time_us"] == outcome.result.execution_time
    assert set(loaded["phases"]) >= {"spawn", "replay", "drain", "collect"}


def test_profile_survives_report(traced, capsys):
    assert main(["report", str(traced), "--profile"]) == 0
    out = capsys.readouterr().out
    assert "extrapolation report" in out
    assert "simulation profile" in out
