"""Parameter dataclasses and presets."""

import pytest

from repro.core import presets
from repro.core.parameters import (
    BarrierAlgorithm,
    BarrierParams,
    NetworkParams,
    ProcessorParams,
    RemoteServicePolicy,
    SimulationParameters,
)


def test_table1_defaults():
    b = BarrierParams()
    assert b.entry_time == 5.0
    assert b.exit_time == 5.0
    assert b.check_time == 2.0
    assert b.exit_check_time == 2.0
    assert b.model_time == 10.0
    assert b.by_msgs is True
    assert b.msg_size == 128
    assert b.algorithm is BarrierAlgorithm.LINEAR


def test_policy_parse():
    assert RemoteServicePolicy.parse("poll") is RemoteServicePolicy.POLL
    assert (
        RemoteServicePolicy.parse(RemoteServicePolicy.INTERRUPT)
        is RemoteServicePolicy.INTERRUPT
    )
    with pytest.raises(ValueError):
        RemoteServicePolicy.parse("psychic")


def test_barrier_algorithm_parse():
    assert BarrierAlgorithm.parse("log") is BarrierAlgorithm.LOG
    with pytest.raises(ValueError):
        BarrierAlgorithm.parse("magic")


def test_string_fields_coerced_in_constructor():
    p = ProcessorParams(policy="interrupt")
    assert p.policy is RemoteServicePolicy.INTERRUPT
    b = BarrierParams(algorithm="hardware")
    assert b.algorithm is BarrierAlgorithm.HARDWARE


@pytest.mark.parametrize(
    "cls,kwargs",
    [
        (ProcessorParams, {"mips_ratio": 0}),
        (ProcessorParams, {"poll_interval": 0}),
        (ProcessorParams, {"interrupt_overhead": -1}),
        (NetworkParams, {"comm_startup_time": -1}),
        (NetworkParams, {"byte_transfer_time": -0.1}),
        (NetworkParams, {"request_nbytes": -2}),
        (BarrierParams, {"entry_time": -1}),
        (BarrierParams, {"msg_size": -1}),
    ],
)
def test_validation(cls, kwargs):
    with pytest.raises(ValueError):
        cls(**kwargs)


def test_with_updates_nested():
    p = SimulationParameters()
    p2 = p.with_(
        processor={"mips_ratio": 0.41},
        network={"comm_startup_time": 10.0},
        barrier={"model_time": 5.0},
        name="custom-cm5",
    )
    assert p2.processor.mips_ratio == 0.41
    assert p2.network.comm_startup_time == 10.0
    assert p2.barrier.model_time == 5.0
    assert p2.name == "custom-cm5"
    # Original untouched (frozen dataclasses).
    assert p.processor.mips_ratio == 1.0


def test_with_unknown_group():
    with pytest.raises(ValueError):
        SimulationParameters().with_(engine={"x": 1})


def test_describe_mentions_key_params():
    text = presets.cm5().describe()
    assert "0.41" in text
    assert "fattree" in text


def test_presets_registry():
    for name in ("distributed_memory", "shared_memory", "cm5", "ideal"):
        params = presets.by_name(name)
        assert params.name == name
    with pytest.raises(ValueError):
        presets.by_name("quantum")


def test_cm5_preset_matches_table3():
    p = presets.cm5()
    assert p.processor.mips_ratio == pytest.approx(0.41)
    assert p.network.comm_startup_time == 10.0
    assert p.network.byte_transfer_time == pytest.approx(0.118)
    assert p.barrier.model_time == 5.0


def test_ideal_preset_is_all_zero_cost():
    p = presets.ideal()
    assert p.network.comm_startup_time == 0.0
    assert p.network.byte_transfer_time == 0.0
    assert p.barrier.entry_time == 0.0
    assert not p.network.contention


def test_distributed_memory_bandwidth():
    # "modest communication link bandwidth (20 Mbytes/second)"
    assert presets.distributed_memory().network.byte_transfer_time == pytest.approx(
        0.05
    )
