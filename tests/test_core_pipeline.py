"""The end-to-end extrapolation pipeline."""

import pytest

from repro.core import presets
from repro.core.pipeline import (
    ExtrapolationOutcome,
    extrapolate,
    measure,
    measure_and_extrapolate,
)
from repro.pcxx import Collection, make_distribution
from repro.trace.validate import validate_trace


def program(rt):
    n = rt.n_threads
    coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=128)
    for i in range(n):
        coll.poke(i, i)

    def body(ctx):
        yield from ctx.compute(1136)  # 1000us on the default trace machine
        if n > 1:
            yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=16)
        yield from ctx.barrier()

    return body


def test_measure_produces_valid_trace():
    trace = measure(program, 4, name="demo", problem={"k": 3})
    validate_trace(trace)
    assert trace.meta.program == "demo"
    assert trace.meta.n_threads == 4
    assert trace.meta.problem == {"k": 3}


def test_measure_respects_trace_mflops():
    t1 = measure(program, 1, trace_mflops=1.136)
    t2 = measure(program, 1, trace_mflops=2.272)
    assert t2.duration == pytest.approx(t1.duration / 2)


def test_extrapolate_outcome_fields():
    trace = measure(program, 4, name="demo")
    out = extrapolate(trace, presets.distributed_memory())
    assert isinstance(out, ExtrapolationOutcome)
    assert out.trace is trace
    assert out.trace_stats.n_threads == 4
    assert out.translated.n_threads == 4
    assert out.predicted_time >= out.ideal_time
    assert out.result.execution_time == out.predicted_time


def test_measure_and_extrapolate_equivalent():
    out1 = measure_and_extrapolate(program, 4, presets.cm5(), name="demo")
    trace = measure(program, 4, name="demo")
    out2 = extrapolate(trace, presets.cm5())
    assert out1.predicted_time == pytest.approx(out2.predicted_time)


def test_deterministic_across_runs():
    a = measure_and_extrapolate(program, 8, presets.distributed_memory())
    b = measure_and_extrapolate(program, 8, presets.distributed_memory())
    assert a.predicted_time == b.predicted_time
    assert a.trace.events == b.trace.events


def test_same_trace_many_environments():
    """The extrapolation promise: one measurement, many predictions."""
    trace = measure(program, 8, name="demo")
    times = {
        name: extrapolate(trace, presets.by_name(name)).predicted_time
        for name in ("ideal", "cm5", "shared_memory", "distributed_memory")
    }
    assert times["ideal"] <= times["shared_memory"] <= times["distributed_memory"]
    # CM-5 has a 2.4x faster CPU than the trace machine; with this mostly
    # compute-bound program it beats the MipsRatio=1.0 environments.
    assert times["cm5"] < times["distributed_memory"]


def test_compensation_path():
    noisy = measure(program, 4, name="demo", event_overhead=10.0)
    clean = measure(program, 4, name="demo")
    raw = extrapolate(noisy, presets.ideal()).predicted_time
    comp = extrapolate(
        noisy, presets.ideal(), compensate_overhead=10.0
    ).predicted_time
    want = extrapolate(clean, presets.ideal()).predicted_time
    assert abs(comp - want) < abs(raw - want)
