"""The trace translation algorithm — the paper's §3.2 rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.translation import translate
from repro.pcxx import Collection, TracingRuntime, make_distribution
from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import Trace, TraceMeta

E = EventKind


def hand_trace():
    """Two threads, serialised on one processor:

    thread 0: begin@0,  compute 10, enter b0 @10, exit, compute 5, end
    thread 1: begin@10 (after switch), compute 20, enter b0 @30, exit,
              compute 1, end
    """
    return Trace(
        TraceMeta(program="h", n_threads=2),
        [
            TraceEvent(0.0, 0, E.THREAD_BEGIN),
            TraceEvent(10.0, 0, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(10.0, 1, E.THREAD_BEGIN),
            TraceEvent(30.0, 1, E.BARRIER_ENTER, barrier_id=0),
            TraceEvent(30.0, 1, E.BARRIER_EXIT, barrier_id=0),
            TraceEvent(31.0, 1, E.THREAD_END),
            TraceEvent(31.0, 0, E.BARRIER_EXIT, barrier_id=0),
            TraceEvent(36.0, 0, E.THREAD_END),
        ],
    )


def test_rebase_to_zero_and_preserve_deltas():
    tp = translate(hand_trace())
    t0, t1 = tp.threads
    assert t0.events[0].time == 0.0
    assert t1.events[0].time == 0.0
    # Thread 0 computes 10 then enters the barrier.
    assert t0.events[1].time == 10.0
    # Thread 1 computes 20 then enters.
    assert t1.events[1].time == 20.0


def test_barrier_exit_is_last_entry():
    tp = translate(hand_trace())
    t0, t1 = tp.threads
    # Last translated entry is thread 1's at t=20.
    assert tp.barrier_exit_times[0] == 20.0
    assert t0.events[2].time == 20.0
    assert t1.events[2].time == 20.0
    assert tp.barrier_entry_times[0] == [10.0, 20.0]
    assert tp.barrier_imbalance(0) == 10.0


def test_post_barrier_deltas_preserved():
    tp = translate(hand_trace())
    t0, t1 = tp.threads
    # Thread 0: 5 us of compute after the barrier (31 -> 36 originally).
    assert t0.events[3].time == 25.0
    # Thread 1: 1 us after the barrier.
    assert t1.events[3].time == 21.0
    assert tp.ideal_execution_time() == 25.0


def test_total_compute_time():
    tp = translate(hand_trace())
    assert tp.total_compute_time() == pytest.approx(10 + 5 + 20 + 1)


def test_overhead_compensation():
    tp = translate(hand_trace(), event_overhead=1.0)
    t0 = tp.threads[0]
    # The 10-us gap shrinks to 9.
    assert t0.events[1].time == 9.0


def test_overhead_clamps_at_zero():
    tp = translate(hand_trace(), event_overhead=1000.0)
    for tt in tp.threads:
        times = [e.time for e in tt.events]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)


def test_negative_overhead_rejected():
    with pytest.raises(ValueError):
        translate(hand_trace(), event_overhead=-1)
    with pytest.raises(ValueError):
        translate(hand_trace(), flush_every=-1)
    with pytest.raises(ValueError):
        translate(hand_trace(), flush_overhead=-1)


def _flushy_program(rt):
    from repro.pcxx import Collection, make_distribution

    n = rt.n_threads
    coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=8)
    for i in range(n):
        coll.poke(i, i)

    def body(ctx):
        for _ in range(5):
            yield from ctx.compute_us(100.0)
            yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
        yield from ctx.barrier()

    return body


def test_flush_compensation_exact():
    """§3.2: translation handles event-buffer flush overhead — the
    compensated ideal time must equal the unperturbed measurement's,
    exactly (the merged order pinpoints every flush)."""
    from repro.core.pipeline import measure

    clean = measure(_flushy_program, 4, name="p")
    noisy = measure(
        _flushy_program, 4, name="p", flush_every=7, flush_overhead=50.0
    )
    t_clean = translate(clean).ideal_execution_time()
    t_raw = translate(noisy).ideal_execution_time()
    t_comp = translate(
        noisy, flush_every=7, flush_overhead=50.0
    ).ideal_execution_time()
    assert t_raw > t_clean  # flushes perturb the raw measurement
    assert t_comp == pytest.approx(t_clean, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 6),
    flush_every=st.integers(1, 40),
    flush_overhead=st.floats(min_value=0.1, max_value=500.0),
    barriers=st.integers(1, 4),
)
def test_flush_compensation_exact_property(n, flush_every, flush_overhead, barriers):
    """Property: flush compensation is exact for any flush configuration
    and program shape — the merged order pinpoints every flush."""
    from repro.core.pipeline import measure
    from repro.pcxx import Collection, make_distribution

    def program(rt):
        coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=8)
        for i in range(n):
            coll.poke(i, i)

        def body(ctx):
            for b in range(barriers):
                yield from ctx.compute_us(((ctx.tid + b) % 3 + 1) * 50.0)
                yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
                yield from ctx.barrier()

        return body

    clean = measure(program, n, name="p")
    noisy = measure(
        program, n, name="p", flush_every=flush_every, flush_overhead=flush_overhead
    )
    t_clean = translate(clean).ideal_execution_time()
    t_comp = translate(
        noisy, flush_every=flush_every, flush_overhead=flush_overhead
    ).ideal_execution_time()
    assert t_comp == pytest.approx(t_clean, abs=1e-6)


def test_flush_and_event_overhead_combine():
    from repro.core.pipeline import measure

    clean = measure(_flushy_program, 4, name="p")
    noisy = measure(
        _flushy_program,
        4,
        name="p",
        event_overhead=2.0,
        flush_every=5,
        flush_overhead=30.0,
    )
    t_comp = translate(
        noisy, event_overhead=2.0, flush_every=5, flush_overhead=30.0
    ).ideal_execution_time()
    t_clean = translate(clean).ideal_execution_time()
    assert t_comp == pytest.approx(t_clean, abs=1e-9)


def test_validation_runs_by_default():
    bad = Trace(TraceMeta(n_threads=1), [TraceEvent(0.0, 0, E.THREAD_END)])
    with pytest.raises(Exception):
        translate(bad)


def _measured_trace(n, barriers=3, seed_work=7):
    rt = TracingRuntime(n, "prop")
    coll = Collection("c", make_distribution(n, n, "cyclic"), element_nbytes=8)
    for i in range(n):
        coll.poke(i, i)

    def body(ctx):
        for b in range(barriers):
            work = ((ctx.tid * 31 + b * seed_work) % 11 + 1) * 10
            yield from ctx.compute_us(work)
            if n > 1:
                yield from ctx.get(coll, (ctx.tid + b + 1) % n, nbytes=8)
            yield from ctx.barrier()

    return rt.run(body)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 9), barriers=st.integers(1, 5), seed=st.integers(0, 50))
def test_translation_invariants_property(n, barriers, seed):
    """Properties over real measured traces:

    1. per-thread first event at 0;
    2. per-thread timestamps non-decreasing;
    3. non-sync inter-event deltas preserved exactly;
    4. each barrier exit equals the max translated entry;
    5. ideal time <= the serialised (measured) span.
    """
    trace = _measured_trace(n, barriers, seed)
    tp = translate(trace)
    originals = trace.split_by_thread()
    for orig, trans in zip(originals, tp.threads):
        assert trans.events[0].time == 0.0
        times = [e.time for e in trans.events]
        assert times == sorted(times)
        for i in range(1, len(orig.events)):
            if trans.events[i].kind != E.BARRIER_EXIT:
                orig_gap = orig.events[i].time - orig.events[i - 1].time
                new_gap = trans.events[i].time - trans.events[i - 1].time
                # Gap from a barrier-exit boundary changes; others exact.
                if orig.events[i - 1].kind != E.BARRIER_EXIT:
                    assert new_gap == pytest.approx(orig_gap)
    for bid, exit_time in tp.barrier_exit_times.items():
        assert exit_time == max(tp.barrier_entry_times[bid])
    assert tp.ideal_execution_time() <= trace.duration + 1e-9
