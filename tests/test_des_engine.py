"""The DES engine: clock, ordering, run modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, StopSimulation


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_initial_time():
    assert Environment(10.0).now == 10.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(5)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc(env))
    env.run(None)
    assert log == [5.0, 7.5]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10)

    env.process(proc(env))
    env.run(until=25.0)
    assert env.now == 25.0


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "answer"

    p = env.process(proc(env))
    assert env.run(p) == "answer"
    assert env.now == 3.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_deadlock_detected():
    env = Environment()

    def proc(env):
        yield env.event()  # never fires

    p = env.process(proc(env))
    with pytest.raises(RuntimeError, match="deadlock"):
        env.run(p)


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_step_empty_queue():
    with pytest.raises(StopSimulation):
        Environment().step()


def test_fifo_order_at_same_time():
    env = Environment()
    log = []

    def proc(env, tag):
        yield env.timeout(10)
        log.append(tag)

    for tag in "abcd":
        env.process(proc(env, tag))
    env.run(None)
    assert log == list("abcd")


def test_peek():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4)
    assert env.peek() == 4.0


def test_processed_event_count():
    env = Environment()
    for _ in range(5):
        env.timeout(1)
    env.run(None)
    assert env.processed_event_count == 5


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=40))
def test_events_fire_in_time_order(delays):
    """Property: regardless of scheduling order, callbacks observe a
    non-decreasing clock."""
    env = Environment()
    seen = []
    for d in delays:
        env.timeout(d).callbacks.append(lambda ev: seen.append(env.now))
    env.run(None)
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


def test_process_waits_on_process():
    env = Environment()

    def inner(env):
        yield env.timeout(7)
        return 42

    def outer(env):
        value = yield env.process(inner(env))
        return value + 1

    assert env.run(env.process(outer(env))) == 43
