"""The DES engine: clock, ordering, run modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Deadlock, Environment, StopSimulation


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_initial_time():
    assert Environment(10.0).now == 10.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(5)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc(env))
    env.run(None)
    assert log == [5.0, 7.5]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10)

    env.process(proc(env))
    env.run(until=25.0)
    assert env.now == 25.0


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "answer"

    p = env.process(proc(env))
    assert env.run(p) == "answer"
    assert env.now == 3.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_deadlock_detected():
    env = Environment()

    def proc(env):
        yield env.event()  # never fires

    p = env.process(proc(env))
    with pytest.raises(RuntimeError, match="deadlock"):
        env.run(p)


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_step_empty_queue():
    with pytest.raises(StopSimulation):
        Environment().step()


def test_fifo_order_at_same_time():
    env = Environment()
    log = []

    def proc(env, tag):
        yield env.timeout(10)
        log.append(tag)

    for tag in "abcd":
        env.process(proc(env, tag))
    env.run(None)
    assert log == list("abcd")


def test_peek():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4)
    assert env.peek() == 4.0


def test_processed_event_count():
    env = Environment()
    for _ in range(5):
        env.timeout(1)
    env.run(None)
    assert env.processed_event_count == 5


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=40))
def test_events_fire_in_time_order(delays):
    """Property: regardless of scheduling order, callbacks observe a
    non-decreasing clock."""
    env = Environment()
    seen = []
    for d in delays:
        env.timeout(d).callbacks.append(lambda ev: seen.append(env.now))
    env.run(None)
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


def test_process_waits_on_process():
    env = Environment()

    def inner(env):
        yield env.timeout(7)
        return 42

    def outer(env):
        value = yield env.process(inner(env))
        return value + 1

    assert env.run(env.process(outer(env))) == 43


# -- same-time ordering contract (pinned before/after the fast path) -----


def test_same_time_priority_beats_fifo():
    """Lower priority fires first at equal times, regardless of when it
    was scheduled (the documented tie-break below FIFO)."""
    env = Environment()
    log = []
    for tag, prio in [("late-low", 1), ("first-normal", 0), ("urgent", -1)]:
        ev = env.event()
        ev.callbacks.append(lambda _e, t=tag: log.append(t))
        env._schedule(ev, 5.0, priority=prio)
        ev._state = 1  # TRIGGERED (scheduled directly, not via succeed)
    env.run(None)
    assert log == ["urgent", "first-normal", "late-low"]


def test_same_time_fifo_within_priority():
    env = Environment()
    log = []
    for tag in "abcdef":
        ev = env.event()
        ev.callbacks.append(lambda _e, t=tag: log.append(t))
        env._schedule(ev, 1.0, priority=0)
        ev._state = 1
    env.run(None)
    assert log == list("abcdef")


def test_process_start_beats_same_time_events():
    """A freshly spawned process (priority -1) takes its first step before
    ordinary events already queued for the same instant."""
    env = Environment()
    log = []
    env.timeout(0).callbacks.append(lambda ev: log.append("timeout"))

    def body(env):
        log.append("process")
        yield env.timeout(1)

    env.process(body(env))
    env.run(None)
    assert log == ["process", "timeout"]


def test_run_batched_matches_step_ordering():
    """run_batched must process events in exactly step() order."""

    def build():
        env = Environment()
        log = []

        def worker(env, tag, delay):
            for _ in range(3):
                yield env.timeout(delay)
                log.append((env.now, tag))

        for i, d in enumerate([2.0, 1.0, 2.0, 3.0]):
            env.process(worker(env, i, d))
        return env, log

    env_a, log_a = build()
    while env_a._queue:
        env_a.step()
    env_b, log_b = build()
    env_b.run_batched()
    assert log_a == log_b
    assert env_a.processed_event_count == env_b.processed_event_count


def test_run_batched_max_events_budget():
    env = Environment()
    for _ in range(10):
        env.timeout(1)
    assert env.run_batched(max_events=4) is False
    assert env.processed_event_count == 4
    assert env.run_batched() is True
    assert env.processed_event_count == 10


def test_run_batched_until_event():
    env = Environment()
    first = env.timeout(1)
    target = env.timeout(5)
    env.timeout(9)
    assert env.run_batched(target) is True
    assert target.processed and env.now == 5.0
    assert first.processed
    assert env.processed_event_count == 2


def test_run_batched_deadlock():
    env = Environment()
    pending = env.event()  # never fires
    env.timeout(1)
    with pytest.raises(Deadlock, match="deadlock"):
        env.run_batched(pending)


def test_run_until_event_leaves_no_stale_callback():
    """run(until=event) must detach its internal waiter on every exit
    path, so the sentinel can be inspected or awaited again."""
    env = Environment()
    ev = env.timeout(3, value="v")
    assert env.run(ev) == "v"
    assert ev.callbacks == []
    # Running to the same (already processed) event again is a no-op.
    assert env.run(ev) == "v"

    # The deadlock path must also clean up after itself.
    pending = env.event()
    with pytest.raises(RuntimeError, match="deadlock"):
        env.run(pending)
    assert pending.callbacks == []
    # ... and the event is still usable afterwards.
    def trigger(env):
        yield env.timeout(2)
        pending.succeed("late")

    env.process(trigger(env))
    assert env.run(pending) == "late"


def test_run_until_failed_event_raises_once_detached():
    env = Environment()
    boom = env.event()
    boom.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run(boom)
    assert boom.callbacks == []


def test_profiling_counters():
    env = Environment()
    counters = env.enable_profiling()
    assert env.profile is counters

    def worker(env):
        for _ in range(4):
            yield env.timeout(1)

    env.process(worker(env))
    env.run(None)
    assert counters.events_total == env.processed_event_count
    assert counters.events_by_type["Timeout"] == 4
    assert counters.events_by_type["Initialize"] == 1
    assert counters.heap_peak >= 1
    assert counters.callbacks_fired >= 5
    assert env.disable_profiling() is counters
    assert env.profile is None


def test_profiled_run_identical_to_fast_path():
    def run(profiled):
        env = Environment()
        if profiled:
            env.enable_profiling()
        log = []

        def worker(env, tag):
            for _ in range(5):
                yield env.timeout(1.0)
                log.append((env.now, tag))

        for t in range(3):
            env.process(worker(env, t))
        env.run(None)
        return log, env.processed_event_count

    assert run(False) == run(True)
