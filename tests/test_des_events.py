"""Event primitives: states, composition, failure propagation."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Event


def test_event_lifecycle():
    env = Environment()
    ev = env.event()
    assert not ev.triggered
    with pytest.raises(RuntimeError):
        _ = ev.value
    ev.succeed("v")
    assert ev.triggered and not ev.processed
    env.run(None)
    assert ev.processed
    assert ev.ok
    assert ev.value == "v"


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()
    with pytest.raises(RuntimeError):
        ev.fail(RuntimeError("x"))


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_failed_event_thrown_into_waiter():
    env = Environment()

    def proc(env, ev):
        try:
            yield ev
        except ValueError as e:
            return f"caught {e}"

    ev = env.event()
    p = env.process(proc(env, ev))
    ev.fail(ValueError("boom"))
    assert env.run(p) == "caught boom"


def test_unhandled_failure_surfaces():
    env = Environment()
    env.event().fail(ValueError("lost"))
    with pytest.raises(ValueError, match="lost"):
        env.run(None)


def test_defused_failure_is_silent():
    env = Environment()
    ev = env.event()
    ev.defused = True
    ev.fail(ValueError("ignored"))
    env.run(None)  # no raise


def test_anyof_fires_on_first():
    env = Environment()
    a, b = env.timeout(5, "a"), env.timeout(10, "b")
    cond = AnyOf(env, [a, b])
    env.run(cond)
    assert env.now == 5.0
    assert a in cond.value


def test_allof_waits_for_all():
    env = Environment()
    a, b = env.timeout(5, "a"), env.timeout(10, "b")
    cond = AllOf(env, [a, b])
    env.run(cond)
    assert env.now == 10.0
    assert set(cond.value) == {a, b}


def test_empty_condition_fires_immediately():
    env = Environment()
    cond = AllOf(env, [])
    assert cond.triggered


def test_condition_with_already_processed_child():
    env = Environment()
    a = env.timeout(1)
    env.run(until=2.0)
    cond = AnyOf(env, [a, env.timeout(10)])
    assert cond.triggered


def test_condition_mixed_environments_rejected():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AnyOf(env1, [env1.event(), env2.event()])


def test_condition_propagates_failure():
    env = Environment()
    bad = env.event()
    cond = AllOf(env, [bad, env.timeout(5)])
    cond.defused = True
    bad.fail(RuntimeError("child failed"))
    env.run(until=10.0)
    assert cond.triggered and not cond.ok
