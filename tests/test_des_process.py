"""Processes: interrupts, kills, error handling."""

import pytest

from repro.des import Environment, Interrupt
from repro.des.process import ProcessKilled


def test_interrupt_resumes_with_cause():
    env = Environment()

    def worker(env):
        try:
            yield env.timeout(100)
            return "finished"
        except Interrupt as i:
            return ("interrupted", env.now, i.cause)

    def poker(env, w):
        yield env.timeout(30)
        w.interrupt("cause!")

    w = env.process(worker(env))
    env.process(poker(env, w))
    assert env.run(w) == ("interrupted", 30.0, "cause!")


def test_interrupt_detaches_old_target():
    """After an interrupt, the original timeout firing must not resume
    the process a second time."""
    env = Environment()
    resumptions = []

    def worker(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        resumptions.append(env.now)
        yield env.timeout(500)

    def poker(env, w):
        yield env.timeout(30)
        w.interrupt()

    w = env.process(worker(env))
    env.process(poker(env, w))
    env.run(until=400.0)
    assert resumptions == [30.0]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def worker(env):
        yield env.timeout(1)

    w = env.process(worker(env))
    env.run(None)
    with pytest.raises(RuntimeError):
        w.interrupt()


def test_self_interrupt_rejected():
    env = Environment()
    holder = {}

    def worker(env):
        with pytest.raises(RuntimeError):
            holder["proc"].interrupt()
        yield env.timeout(1)

    holder["proc"] = env.process(worker(env))
    env.run(None)


def test_kill():
    env = Environment()
    progress = []

    def worker(env):
        progress.append("started")
        yield env.timeout(100)
        progress.append("never")

    w = env.process(worker(env))

    def killer(env):
        yield env.timeout(10)
        w.kill()

    env.process(killer(env))
    env.run(None)
    assert progress == ["started"]
    assert not w.is_alive


def test_kill_dead_process_is_noop():
    env = Environment()

    def worker(env):
        yield env.timeout(1)

    w = env.process(worker(env))
    env.run(None)
    w.kill()  # no raise


def test_exception_in_process_fails_waiters():
    env = Environment()

    def worker(env):
        yield env.timeout(1)
        raise ValueError("inside")

    def waiter(env, w):
        try:
            yield w
        except ValueError as e:
            return f"saw {e}"

    w = env.process(worker(env))
    p = env.process(waiter(env, w))
    assert env.run(p) == "saw inside"


def test_yielding_non_event_fails_process():
    env = Environment()

    def worker(env):
        yield "not an event"

    w = env.process(worker(env))
    with pytest.raises(RuntimeError, match="expected an Event"):
        env.run(w)


def test_non_generator_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_return_value():
    env = Environment()

    def worker(env):
        yield env.timeout(2)
        return {"answer": 42}

    assert env.run(env.process(worker(env))) == {"answer": 42}


def test_waiting_on_already_processed_event():
    env = Environment()
    ev = env.timeout(1, "early")
    env.run(until=5.0)
    assert ev.processed

    def late(env):
        v = yield ev
        return v

    assert env.run(env.process(late(env))) == "early"
