"""Counted resources: capacity, FIFO grants, utilisation accounting."""

import pytest

from repro.des import Environment, Resource


def test_capacity_one_serialises():
    env = Environment()
    res = Resource(env, 1)
    log = []

    def user(env, tag, hold):
        req = res.request()
        yield req
        log.append((tag, "in", env.now))
        yield env.timeout(hold)
        res.release(req)
        log.append((tag, "out", env.now))

    env.process(user(env, "a", 10))
    env.process(user(env, "b", 5))
    env.run(None)
    assert log == [
        ("a", "in", 0.0),
        ("a", "out", 10.0),
        ("b", "in", 10.0),
        ("b", "out", 15.0),
    ]


def test_capacity_two_overlaps():
    env = Environment()
    res = Resource(env, 2)
    started = []

    def user(env):
        req = res.request()
        yield req
        started.append(env.now)
        yield env.timeout(10)
        res.release(req)

    for _ in range(3):
        env.process(user(env))
    env.run(None)
    assert started == [0.0, 0.0, 10.0]


def test_release_without_hold_rejected():
    env = Environment()
    res = Resource(env, 1)
    a = res.request()
    res.release(a)
    with pytest.raises(ValueError):
        res.release(a)


def test_queue_length_and_count():
    env = Environment()
    res = Resource(env, 1)
    a = res.request()
    res.request()
    assert res.count == 1
    assert res.queue_length == 1
    res.release(a)
    assert res.count == 1
    assert res.queue_length == 0


def test_cancel_waiting_request():
    env = Environment()
    res = Resource(env, 1)
    a = res.request()
    b = res.request()
    b.cancel()
    res.release(a)
    assert res.count == 0  # b was withdrawn, nothing granted


def test_utilization_integral():
    env = Environment()
    res = Resource(env, 1)

    def user(env):
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)
        yield env.timeout(10)

    env.process(user(env))
    env.run(None)
    assert res.utilization_integral() == pytest.approx(10.0)


def test_bad_capacity():
    with pytest.raises(ValueError):
        Resource(Environment(), 0)
