"""Stores: FIFO semantics, capacity, filtering, priorities, cancel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, FilterStore, PriorityItem, PriorityStore, Store


def run_all(env):
    env.run(None)


def test_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(consumer(env))
    for i in range(3):
        store.put(i)
    run_all(env)
    assert got == [0, 1, 2]


def test_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(10)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    run_all(env)
    assert got == [(10.0, "x")]


def test_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    done = []

    def producer(env):
        yield store.put("a")
        done.append(("a", env.now))
        yield store.put("b")
        done.append(("b", env.now))

    def consumer(env):
        yield env.timeout(5)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    run_all(env)
    assert done == [("a", 0.0), ("b", 5.0)]


def test_bad_capacity():
    with pytest.raises(ValueError):
        Store(Environment(), capacity=0)


def test_cancel_get():
    env = Environment()
    store = Store(env)
    g1 = store.get()
    g2 = store.get()
    store.cancel(g1)
    store.put("only")
    env.run(None)
    assert not g1.triggered
    assert g2.value == "only"
    store.cancel(g1)  # idempotent


def test_pending_gets_count():
    env = Environment()
    store = Store(env)
    store.get()
    store.get()
    assert store.pending_gets == 2


def test_filter_store():
    env = Environment()
    store = FilterStore(env)
    for item in ("apple", "banana", "avocado"):
        store.put(item)
    got = []

    def consumer(env):
        x = yield store.get(lambda s: s.startswith("b"))
        got.append(x)
        y = yield store.get()
        got.append(y)

    env.process(consumer(env))
    run_all(env)
    assert got == ["banana", "apple"]


def test_filter_store_waits_for_match():
    env = Environment()
    store = FilterStore(env)
    store.put(1)
    got = []

    def consumer(env):
        x = yield store.get(lambda v: v > 10)
        got.append((env.now, x))

    def producer(env):
        yield env.timeout(5)
        yield store.put(99)

    env.process(consumer(env))
    env.process(producer(env))
    run_all(env)
    assert got == [(5.0, 99)]
    assert store.items == [1]


def test_none_is_a_valid_item():
    """Regression: a stored None must not be mistaken for 'no item'."""
    env = Environment()
    store = Store(env)
    store.put(None)
    got = []

    def consumer(env):
        got.append((yield store.get()))

    env.process(consumer(env))
    env.run(None)
    assert got == [None]


def test_priority_store():
    env = Environment()
    store = PriorityStore(env)
    for p in (5, 1, 3):
        store.put(PriorityItem(p, f"item{p}"))
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item.priority)

    env.process(consumer(env))
    run_all(env)
    assert got == [1, 3, 5]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(), min_size=1, max_size=30))
def test_store_preserves_all_items(items):
    """Property: everything put is got exactly once, in order."""
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        for _ in items:
            got.append((yield store.get()))

    env.process(consumer(env))

    def producer(env):
        for it in items:
            yield env.timeout(1)
            yield store.put(it)

    env.process(producer(env))
    env.run(None)
    assert got == items
