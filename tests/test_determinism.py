"""Determinism guarantees: identical inputs -> identical outputs.

Extrapolation is only useful for comparative studies if reruns are
bit-stable; these tests pin that down for every stage.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import presets
from repro.core.pipeline import measure
from repro.core.translation import translate
from repro.machine import run_on_machine
from repro.pcxx import Collection, make_distribution
from repro.sim.multithread import simulate_multithreaded
from repro.sim.simulator import simulate


def program(rt):
    n = rt.n_threads
    coll = Collection("c", make_distribution(n, n, "block"), element_nbytes=64)
    for i in range(n):
        coll.poke(i, i)

    def body(ctx):
        for it in range(3):
            yield from ctx.compute_us(100.0 * ((ctx.tid + it) % 3 + 1))
            yield from ctx.get(coll, (ctx.tid + 1) % n, nbytes=8)
            yield from ctx.barrier()

    return body


def test_measurement_bit_stable():
    a = measure(program, 8, name="d")
    b = measure(program, 8, name="d")
    assert a.events == b.events


def test_translation_bit_stable():
    trace = measure(program, 8, name="d")
    ta, tb = translate(trace), translate(trace)
    for x, y in zip(ta.threads, tb.threads):
        assert x.events == y.events
    assert ta.barrier_exit_times == tb.barrier_exit_times


@pytest.mark.parametrize("policy", ["no_interrupt", "interrupt", "poll"])
def test_simulation_bit_stable(policy):
    tp = translate(measure(program, 8, name="d"))
    params = presets.distributed_memory().with_(processor={"policy": policy})
    ra = simulate(tp, params)
    rb = simulate(tp, params)
    assert ra.execution_time == rb.execution_time
    for x, y in zip(ra.threads, rb.threads):
        assert x.events == y.events
    assert ra.network.messages == rb.network.messages


def test_reference_run_pinned():
    """Absolute regression pin for the seeded reference run.

    The DES fast path must not change what gets simulated: the event
    count, predicted time, and message totals of this fixed workload are
    pinned to the values produced by the pre-fast-path engine.  If this
    test fails, the engine changed *behaviour*, not just speed.
    """
    from repro.sim.simulator import Simulator

    tp = translate(measure(program, 8, name="d"))
    sim = Simulator(tp, presets.distributed_memory())
    res = sim.run()
    assert sim.env.processed_event_count == 623
    assert res.execution_time == pytest.approx(1956.6999999999998, abs=1e-9)
    assert res.network.messages == 90
    assert res.network.bytes == 7296


def test_profiled_run_matches_reference():
    """profile=True must not perturb the simulation itself."""
    from repro.sim.simulator import Simulator

    tp = translate(measure(program, 8, name="d"))
    sim = Simulator(tp, presets.distributed_memory(), profile=True)
    res = sim.run()
    assert sim.env.processed_event_count == 623
    assert res.execution_time == pytest.approx(1956.6999999999998, abs=1e-9)
    assert res.profile is not None
    assert res.profile.counters.events_total == 623
    assert res.profile.counters.heap_peak >= 8
    assert set(res.profile.timers.phases) == {
        "spawn",
        "replay",
        "drain",
        "collect",
    }


def test_machine_bit_stable():
    ra = run_on_machine(program, 4, name="d")
    rb = run_on_machine(program, 4, name="d")
    assert ra.execution_time == rb.execution_time
    assert ra.messages == rb.messages


def test_multithread_bit_stable():
    tp = translate(measure(program, 8, name="d"))
    params = presets.distributed_memory()
    ra = simulate_multithreaded(tp, params, 4)
    rb = simulate_multithreaded(tp, params, 4)
    assert ra.execution_time == rb.execution_time
    assert ra.thread_end_times == rb.thread_end_times


@settings(max_examples=30, deadline=None)
@given(
    mips=st.floats(min_value=0.1, max_value=4.0),
    startup=st.floats(min_value=0.0, max_value=500.0),
    byte_time=st.floats(min_value=0.0, max_value=1.0),
    algorithm=st.sampled_from(["linear", "log", "hardware"]),
    by_msgs=st.booleans(),
    policy=st.sampled_from(["no_interrupt", "interrupt", "poll"]),
    poll_interval=st.floats(min_value=1.0, max_value=2000.0),
    topology=st.sampled_from(
        ["crossbar", "bus", "ring", "mesh2d", "torus2d", "hypercube", "fattree"]
    ),
)
def test_simulation_invariants_over_parameters(
    mips, startup, byte_time, algorithm, by_msgs, policy, poll_interval, topology
):
    """Properties that must hold for ANY parameter combination:

    * the simulation terminates;
    * predicted time >= MipsRatio-scaled ideal time;
    * all barrier episodes complete;
    * no thread exits a barrier before the last one entered it.
    """
    tp = translate(measure(program, 4, name="d"))
    params = presets.distributed_memory().with_(
        processor={
            "mips_ratio": mips,
            "policy": policy,
            "poll_interval": poll_interval,
        },
        network={
            "comm_startup_time": startup,
            "byte_transfer_time": byte_time,
            "topology": topology,
        },
        barrier={"algorithm": algorithm, "by_msgs": by_msgs},
    )
    res = simulate(tp, params)
    assert res.barrier_count == 3
    assert res.execution_time >= mips * tp.ideal_execution_time() - 1e-6
    from repro.trace.events import EventKind

    enters: dict = {}
    exits: dict = {}
    for tt in res.threads:
        for e in tt.events:
            if e.kind == EventKind.BARRIER_ENTER:
                enters.setdefault(e.barrier_id, []).append(e.time)
            elif e.kind == EventKind.BARRIER_EXIT:
                exits.setdefault(e.barrier_id, []).append(e.time)
    for bid, entry_times in enters.items():
        assert len(entry_times) == 4
        assert min(exits[bid]) >= max(entry_times) - 1e-9
