"""The anomaly-detector catalog: synthetic positives, clean-suite quiet,
fault-injected ground truth, and the byte-determinism contract."""

from dataclasses import replace

import pytest

from repro.bench.matmul import MatmulConfig
from repro.bench.matmul import make_program as make_matmul
from repro.bench.suite import BENCHMARKS
from repro.core import presets
from repro.core.pipeline import extrapolate, measure
from repro.diagnose import (
    DEFAULT_THRESHOLDS,
    KINDS,
    DiagnosisReport,
    detect_barrier_imbalance,
    detect_comm_hotspots,
    detect_idle_tail,
    detect_stragglers,
    diagnose,
    make_finding,
)
from repro.experiments.paramsets import figure4_params, suite_configs
from repro.faults import FaultPlan
from repro.obs.recorder import TimelineRecorder

# Seeded ground-truth plans.  Low rate + high factor creates the
# binomial skew a straggler detector must see (a plan slowing *every*
# processor equally is undetectable by construction — nothing is slow
# relative to the fleet).
STRAGGLER_PLAN = FaultPlan(seed=7, straggler_rate=0.08, straggler_factor=16.0)
BARRIER_PLAN = FaultPlan(seed=11, barrier_delay_rate=0.4, barrier_delay=20000.0)

FAULTY_BENCHES = ("embar", "cyclic", "sort")


# -- synthetic timelines -----------------------------------------------------


def _finalize(rec, n_procs, end_time):
    return rec.finalize(n_procs=n_procs, end_time=end_time)


def test_straggler_detected_on_slow_processor():
    rec = TimelineRecorder()
    for p in range(4):
        dur = 1000.0 if p == 3 else 100.0
        for i in range(10):
            rec.span(p, "compute", i * dur, (i + 1) * dur)
    tl = _finalize(rec, 4, 10_000.0)
    findings = detect_stragglers(tl)
    assert [f.proc for f in findings] == [3]
    f = findings[0]
    assert f.kind == "straggler"
    ev = f.evidence_dict()
    assert ev["slowdown"] == pytest.approx(10.0)
    assert ev["n_actions"] == 10


def test_straggler_ignores_heterogeneous_work():
    # Proc 3 runs 3 big actions against the fleet's 10 small ones:
    # different work, not the same work running slow.
    rec = TimelineRecorder()
    for p in range(3):
        for i in range(10):
            rec.span(p, "compute", i * 100.0, (i + 1) * 100.0)
    for i in range(3):
        rec.span(3, "compute", i * 1000.0, (i + 1) * 1000.0)
    tl = _finalize(rec, 4, 3000.0)
    assert detect_stragglers(tl) == []


def test_straggler_needs_enough_computing_procs():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 100.0)
    rec.span(1, "compute", 0.0, 1000.0)
    tl = _finalize(rec, 2, 1000.0)
    assert detect_stragglers(tl) == []


def test_barrier_imbalance_names_the_culprit():
    rec = TimelineRecorder()
    # Balanced compute, but proc 0 spends 90% of the run in one long
    # barrier-wait episode: proc 1 (least wait) arrived last.
    rec.span(0, "compute", 0.0, 100.0)
    rec.span(1, "compute", 0.0, 100.0)
    rec.span(0, "barrier_wait", 100.0, 1000.0)
    tl = _finalize(rec, 2, 1000.0)
    findings = detect_barrier_imbalance(tl)
    assert len(findings) == 1
    f = findings[0]
    assert f.kind == "barrier_imbalance"
    assert f.proc == 1  # the culprit, not the victim
    assert f.evidence_dict()["max_wait_frac"] == pytest.approx(0.9)


def test_barrier_imbalance_quiet_when_wait_is_many_short_episodes():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 100.0)
    rec.span(1, "compute", 0.0, 100.0)
    # Same 90% total wait, but split over 10 separated episodes, each
    # under the episode gate: barrier-bound, not a delayed barrier.
    for i in range(10):
        t0 = 100.0 + i * 100.0
        rec.span(0, "barrier_wait", t0, t0 + 90.0)
    tl = _finalize(rec, 2, 1100.0)
    assert detect_barrier_imbalance(tl) == []


def test_barrier_imbalance_quiet_when_compute_unbalanced():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 100.0)
    rec.span(1, "compute", 0.0, 1000.0)
    rec.span(0, "barrier_wait", 100.0, 1000.0)
    tl = _finalize(rec, 2, 1000.0)
    assert detect_barrier_imbalance(tl) == []


def test_comm_hotspot_pair_concentration():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 100.0)
    for i in range(10):
        rec.instant(1, "remote_read", float(i), owner=2, nbytes=8)
    for i, (src, owner) in enumerate([(0, 1), (0, 3), (2, 0), (3, 1)] * 3):
        rec.instant(src, "remote_read", 50.0 + i, owner=owner, nbytes=8)
    tl = _finalize(rec, 4, 100.0)
    findings = detect_comm_hotspots(tl)
    pair = [f for f in findings if "pair_src" in f.evidence_dict()]
    assert len(pair) == 1
    ev = pair[0].evidence_dict()
    assert (ev["pair_src"], ev["pair_owner"]) == (1, 2)
    assert ev["accesses"] == 10 and ev["total_accesses"] == 22


def test_comm_hotspot_receiver_concentration():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 100.0)
    # 16 of 20 accesses land on proc 3 (share 0.8 >= 6/8 and >= 0.5),
    # spread across sources so no single pair dominates.
    srcs = [0, 1, 2, 4, 5, 6, 7, 0] * 2
    for i, src in enumerate(srcs):
        rec.instant(src, "remote_read", float(i), owner=3, nbytes=8)
    for i, owner in enumerate((0, 1, 2, 4)):
        rec.instant(3, "remote_read", 50.0 + i, owner=owner, nbytes=8)
    tl = _finalize(rec, 8, 100.0)
    findings = detect_comm_hotspots(tl)
    recv = [f for f in findings if "inbound_accesses" in f.evidence_dict()]
    assert [f.proc for f in recv] == [3]
    assert recv[0].evidence_dict()["inbound_accesses"] == 16


def test_comm_hotspot_queue_backlog():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 100.0)
    rec.counter("proc2.rxq_depth", 0.0, 10)
    tl = _finalize(rec, 4, 100.0)
    findings = detect_comm_hotspots(tl)
    backlog = [f for f in findings if "mean_rxq_depth" in f.evidence_dict()]
    assert [f.proc for f in backlog] == [2]
    assert backlog[0].evidence_dict()["mean_rxq_depth"] == pytest.approx(10.0)


def test_comm_hotspot_quiet_when_backlog_is_fleet_wide():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 100.0)
    for p in range(4):
        rec.counter(f"proc{p}.rxq_depth", 0.0, 10)
    tl = _finalize(rec, 4, 100.0)
    assert detect_comm_hotspots(tl) == []


def test_idle_tail_detected():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 1000.0)
    rec.span(1, "compute", 0.0, 100.0)
    tl = _finalize(rec, 2, 1000.0)
    findings = detect_idle_tail(tl)
    assert [f.proc for f in findings] == [1]
    assert findings[0].evidence_dict()["tail_frac"] == pytest.approx(0.9)


def test_idle_tail_skips_procs_with_no_work():
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 1000.0)
    rec.span(1, "barrier_wait", 0.0, 1000.0)  # never computes
    tl = _finalize(rec, 2, 1000.0)
    assert detect_idle_tail(tl) == []


def test_empty_and_single_proc_timelines_diagnose_empty():
    assert len(diagnose(_finalize(TimelineRecorder(), 0, 0.0))) == 0
    rec = TimelineRecorder()
    rec.span(0, "compute", 0.0, 100.0)
    assert len(diagnose(_finalize(rec, 1, 100.0))) == 0


# -- report contract ---------------------------------------------------------


def test_report_ranks_by_severity_and_rounds():
    report = DiagnosisReport(
        n_procs=2,
        end_time=1.0,
        findings=[
            make_finding("idle_tail", 0.25, "low", proc=0),
            make_finding("straggler", 1.7, "clamped", proc=1, x=0.123456789),
        ],
    )
    assert [f.kind for f in report.findings] == ["straggler", "idle_tail"]
    assert report.worst().severity == 1.0
    assert report.findings[0].evidence_dict()["x"] == 0.123457
    assert report.kinds() == ["straggler", "idle_tail"]  # catalog order
    assert set(report.kinds()) <= set(KINDS)


def test_report_json_shape():
    report = DiagnosisReport(
        n_procs=4,
        end_time=10.0,
        program="toy",
        findings=[make_finding("straggler", 0.5, "s", proc=3, slowdown=5.0)],
        thresholds=DEFAULT_THRESHOLDS.to_dict(),
    )
    doc = report.to_dict()
    assert doc["schema"] == 1
    assert doc["findings"][0]["proc"] == 3
    assert doc["thresholds"]["straggler_slow_factor"] == 3.5
    assert report.to_json().endswith("\n")
    assert "no anomalies" not in report.format()
    empty = DiagnosisReport(n_procs=4, end_time=10.0)
    assert "no anomalies detected" in empty.format()


# -- clean suite runs must diagnose empty ------------------------------------


@pytest.fixture(scope="module")
def suite_timelines():
    """Observed fig4 runs (quick sizes, 8 processors) per benchmark."""
    params = figure4_params()
    configs = suite_configs(quick=True)
    out = {}
    for name, cfg in configs.items():
        maker = BENCHMARKS[name].make_program(cfg)
        trace = measure(maker(8), 8, name=name)
        out[name] = (trace, extrapolate(trace, params, observe=True))
    return out


def test_clean_suite_runs_have_zero_findings(suite_timelines):
    """Acceptance: committed fig4 configurations diagnose empty."""
    noisy = {}
    for name, (_, outcome) in suite_timelines.items():
        report = diagnose(outcome.result.timeline)
        if report.findings:
            noisy[name] = report.kinds()
    assert not noisy, f"false positives on clean runs: {noisy}"


@pytest.mark.parametrize("dists", [("whole", "block"), ("whole", "cyclic")])
def test_clean_matmul_whole_distributions_stay_quiet(dists):
    """The heterogeneous-work matmul layouts (fig9) must not be typed
    as stragglers or barrier faults."""
    rd, cd = dists
    maker = make_matmul(MatmulConfig(size=12, row_dist=rd, col_dist=cd))
    trace = measure(maker(8), 8, name="matmul")
    outcome = extrapolate(trace, presets.cm5(), observe=True)
    report = diagnose(outcome.result.timeline)
    assert not report.findings, report.kinds()


# -- fault-injected runs are ground-truth positives --------------------------


@pytest.mark.parametrize("bench", FAULTY_BENCHES)
def test_straggler_plan_yields_straggler_finding(suite_timelines, bench):
    trace, _ = suite_timelines[bench]
    params = replace(figure4_params(), faults=STRAGGLER_PLAN)
    outcome = extrapolate(trace, params, observe=True)
    report = diagnose(outcome.result.timeline)
    stragglers = report.by_kind("straggler")
    assert stragglers, f"{bench}: no straggler finding ({report.kinds()})"
    # The fault injector tags its victims; the top straggler must be one.
    assert "injected_stragglers" in stragglers[0].evidence_dict()


@pytest.mark.parametrize("bench", FAULTY_BENCHES)
def test_barrier_plan_yields_barrier_finding(suite_timelines, bench):
    trace, _ = suite_timelines[bench]
    params = replace(figure4_params(), faults=BARRIER_PLAN)
    outcome = extrapolate(trace, params, observe=True)
    report = diagnose(outcome.result.timeline)
    barrier = report.by_kind("barrier_imbalance")
    assert barrier, f"{bench}: no barrier finding ({report.kinds()})"
    assert barrier[0].evidence_dict()["injected_delays"] > 0


# -- determinism -------------------------------------------------------------


def test_diagnosis_byte_deterministic_across_runs():
    """Same trace + params => byte-identical report JSON, findings or not."""

    def run():
        cfg = suite_configs(quick=True)["embar"]
        trace = measure(BENCHMARKS["embar"].make_program(cfg)(8), 8, name="embar")
        params = replace(figure4_params(), faults=STRAGGLER_PLAN)
        outcome = extrapolate(trace, params, observe=True)
        return diagnose(outcome.result.timeline).to_json()

    first, second = run(), run()
    assert first == second
    assert '"straggler"' in first
