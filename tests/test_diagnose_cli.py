"""CLI surface of the diagnosis engine: ``extrap timeline --diagnose``
and ``extrap validate --diagnose``."""

import json

import pytest

from repro.cli import main

STRAGGLER_PLAN = {"seed": 7, "straggler_rate": 0.08, "straggler_factor": 16.0}
BARRIER_PLAN = {"seed": 2, "barrier_delay_rate": 0.15, "barrier_delay": 50000.0}


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "embar.jsonl"
    assert main(["trace", "embar", "-n", "8", "-o", str(path)]) == 0
    return path


@pytest.fixture(scope="module")
def plan_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("plans") / "straggler.json"
    path.write_text(json.dumps(STRAGGLER_PLAN))
    return path


@pytest.fixture(scope="module")
def faulty_timeline(tmp_path_factory, traced, plan_file):
    out = tmp_path_factory.mktemp("timelines") / "faulty.json"
    assert (
        main(
            [
                "predict",
                str(traced),
                "--faults",
                str(plan_file),
                "--timeline",
                str(out),
            ]
        )
        == 0
    )
    return out


# -- extrap timeline --diagnose ----------------------------------------------


def test_timeline_diagnose_human_report(faulty_timeline, capsys):
    assert main(["timeline", str(faulty_timeline), "--diagnose"]) == 0
    out = capsys.readouterr().out
    assert "diagnosis: embar on 8 processors" in out
    assert "straggler" in out
    assert "slowdown=" in out


def test_timeline_diagnose_json_byte_deterministic(faulty_timeline, capsys):
    """Acceptance: --diagnose --json output is byte-identical across runs."""

    def run():
        assert (
            main(["timeline", str(faulty_timeline), "--diagnose", "--json"])
            == 0
        )
        return capsys.readouterr().out

    first, second = run(), run()
    assert first == second
    doc = json.loads(first)
    assert doc["schema"] == 1
    assert any(f["kind"] == "straggler" for f in doc["findings"])
    assert doc["thresholds"]["straggler_slow_factor"] == 3.5


def test_timeline_json_requires_diagnose(faulty_timeline, capsys):
    assert main(["timeline", str(faulty_timeline), "--json"]) == 2
    assert "--json requires --diagnose" in capsys.readouterr().err


def test_timeline_diagnose_rejects_malformed_trace(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"name": "x", "ts": 1.0}]}))
    assert main(["timeline", str(bad), "--diagnose"]) == 2
    err = capsys.readouterr().err
    assert "missing required field 'ph'" in err
    assert len(err.strip().splitlines()) == 1  # one-line contract


# -- extrap validate --diagnose ----------------------------------------------


def test_validate_diagnose_clean_run_is_quiet(traced, capsys):
    assert main(["validate", str(traced), "--diagnose"]) == 0
    out = capsys.readouterr().out
    assert "ok (" in out
    assert "no anomalies detected" in out


def test_validate_diagnose_flags_injected_straggler(
    traced, plan_file, capsys
):
    assert (
        main(
            [
                "validate",
                str(traced),
                "--diagnose",
                "--faults",
                str(plan_file),
                "--json",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    doc = json.loads(out)
    kinds = {f["kind"] for f in doc["findings"]}
    assert "straggler" in kinds


def test_validate_diagnose_flags_injected_barrier_delay(
    traced, tmp_path, capsys
):
    plan = tmp_path / "barrier.json"
    plan.write_text(json.dumps(BARRIER_PLAN))
    assert (
        main(
            [
                "validate",
                str(traced),
                "--diagnose",
                "--faults",
                str(plan),
                "--json",
            ]
        )
        == 0
    )
    doc = json.loads(capsys.readouterr().out)
    kinds = {f["kind"] for f in doc["findings"]}
    assert "barrier_imbalance" in kinds


def test_validate_diagnose_json_is_pure(traced, plan_file, capsys):
    """--json suppresses the ok/sha256 lines: stdout is one JSON doc."""
    assert (
        main(
            [
                "validate",
                str(traced),
                "--diagnose",
                "--faults",
                str(plan_file),
                "--json",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    json.loads(out)  # the whole stream parses
    assert out.count("\n") == 1


def test_validate_json_requires_diagnose(traced, capsys):
    assert main(["validate", str(traced), "--json"]) == 2
    assert "--json requires --diagnose" in capsys.readouterr().err


def test_validate_diagnose_bad_preset_is_input_error(traced, capsys):
    assert (
        main(["validate", str(traced), "--diagnose", "--preset", "nope"]) == 2
    )
    assert "nope" in capsys.readouterr().err


def test_validate_diagnose_missing_plan_is_input_error(traced, capsys):
    assert (
        main(
            ["validate", str(traced), "--diagnose", "--faults", "/no/plan.json"]
        )
        == 2
    )
    assert "fault plan" in capsys.readouterr().err
