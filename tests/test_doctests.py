"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.core.parameters
import repro.metrics.metrics
import repro.util.tables
import repro.util.units

MODULES = [
    repro.util.units,
    repro.util.tables,
    repro.metrics.metrics,
    repro.core.parameters,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, (
        f"{module.__name__}: expected at least one doctest"
    )
    assert result.failed == 0
